"""ElemRank: XRANK's element-level PageRank (optional component).

The paper notes that "XRANK is based on ElemRank, a variation of the
PageRank algorithm that exploits the structure and containment edges of
XML documents. [...] ElemRank could be incorporated [in NS] but our CDA
documents have no ID-IDREF edges and hence ElemRank would make no
difference." We implement it anyway, as XRANK specifies, so the claim
is checkable and corpora with intra-document links benefit:

``e(v) = (1 - d1 - d2 - d3) / N
       + d1 · Σ_{u →link v} e(u) / N_link(u)
       + d2 · Σ_{u parent of v} e(u) / N_children(u)
       + d3 · Σ_{u child of v} e(u)``

with three damping factors for hyperlink edges, forward containment and
reverse containment (reverse flow aggregates rather than splits, as in
XRANK). Link edges come from CDA's own intra-document mechanism: a
``<reference value="m1"/>`` element points at the element carrying
``ID="m1"`` (Figure 1 links the Asthma observation to the Theophylline
narrative this way).

When enabled (``XOntoRankConfig(use_elemrank=True)``), Eq. 5 NodeScores
are modulated by the max-normalized ElemRank, mirroring how XRANK
combines ElemRank with decayed keyword proximity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..xmldoc.dewey import DeweyID, assign_dewey_ids
from ..xmldoc.model import Corpus, XMLDocument, XMLNode


@dataclass(frozen=True)
class ElemRankParameters:
    """Damping factors and convergence controls."""

    d1: float = 0.20  # hyperlink (ID/reference) edges
    d2: float = 0.30  # forward containment (parent -> children, split)
    d3: float = 0.25  # reverse containment (child -> parent, aggregate)
    max_iterations: int = 100
    tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if min(self.d1, self.d2, self.d3) < 0:
            raise ValueError("damping factors must be non-negative")
        if self.d1 + self.d2 + self.d3 >= 1.0:
            raise ValueError("d1 + d2 + d3 must stay below 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be positive")


def extract_link_edges(document: XMLDocument,
                       ids: dict[XMLNode, DeweyID],
                       ) -> list[tuple[DeweyID, DeweyID]]:
    """Intra-document link edges via the CDA ID/reference convention.

    An element ``<reference value="X"/>`` links (from its parent, the
    semantically meaningful element) to the element with ``ID="X"``.
    """
    targets: dict[str, DeweyID] = {}
    for node, dewey in ids.items():
        identifier = node.attributes.get("ID")
        if identifier:
            targets[identifier] = dewey
    edges: list[tuple[DeweyID, DeweyID]] = []
    for node, dewey in ids.items():
        if node.tag != "reference":
            continue
        value = node.attributes.get("value", "")
        target = targets.get(value.lstrip("#"))
        if target is None:
            continue
        source = ids[node.parent] if node.parent is not None else dewey
        edges.append((source, target))
    return edges


class ElemRankComputer:
    """Computes per-element ElemRank values for a corpus.

    Each document is an independent Markov system (no inter-document
    edges in CDA corpora), so ranks are computed per document and the
    random-jump mass is spread over the document's own elements.
    """

    def __init__(self, corpus: Corpus,
                 parameters: ElemRankParameters | None = None) -> None:
        self._parameters = parameters or ElemRankParameters()
        self._ranks: dict[DeweyID, float] = {}
        for document in corpus:
            self._ranks.update(self._rank_document(document))

    # ------------------------------------------------------------------
    def _rank_document(self, document: XMLDocument,
                       ) -> dict[DeweyID, float]:
        parameters = self._parameters
        ids = assign_dewey_ids(document)
        nodes = list(ids.values())
        count = len(nodes)
        if count == 0:
            return {}
        parent_of: dict[DeweyID, DeweyID] = {}
        children_of: dict[DeweyID, list[DeweyID]] = {d: [] for d in nodes}
        for dewey in nodes:
            if dewey.path:
                parent = dewey.parent()
                parent_of[dewey] = parent
                children_of[parent].append(dewey)
        link_edges = extract_link_edges(document, ids)
        outgoing_links: dict[DeweyID, list[DeweyID]] = {}
        for source, target in link_edges:
            outgoing_links.setdefault(source, []).append(target)

        base = (1.0 - parameters.d1 - parameters.d2 - parameters.d3) / count
        ranks = {dewey: 1.0 / count for dewey in nodes}
        for _ in range(parameters.max_iterations):
            updated: dict[DeweyID, float] = {}
            for dewey in nodes:
                value = base
                parent = parent_of.get(dewey)
                if parent is not None:
                    value += (parameters.d2 * ranks[parent]
                              / len(children_of[parent]))
                for child in children_of[dewey]:
                    value += parameters.d3 * ranks[child]
                updated[dewey] = value
            for source, targets in outgoing_links.items():
                share = parameters.d1 * ranks[source] / len(targets)
                for target in targets:
                    updated[target] += share
            delta = sum(abs(updated[dewey] - ranks[dewey])
                        for dewey in nodes)
            ranks = updated
            if delta < parameters.tolerance:
                break
        return ranks

    # ------------------------------------------------------------------
    def rank(self, dewey: DeweyID) -> float:
        """Raw ElemRank of one element (0.0 for unknown elements)."""
        return self._ranks.get(dewey, 0.0)

    def ranks(self) -> dict[DeweyID, float]:
        return dict(self._ranks)

    def normalized_weights(self) -> dict[DeweyID, float]:
        """Ranks rescaled into (0, 1] by the corpus-wide maximum, the
        form the NodeScorer consumes as multiplicative weights."""
        if not self._ranks:
            return {}
        maximum = max(self._ranks.values())
        if maximum <= 0.0:
            return {dewey: 1.0 for dewey in self._ranks}
        return {dewey: value / maximum
                for dewey, value in self._ranks.items()}
