"""Node scores and score propagation (paper Section III, Eq. 2-5).

* **NodeScore** (Eq. 5): ``NS(v, w) = max(IRS(v, w | D), OS(onto(v), w))``
  -- a node is associated with a keyword either through its textual
  description (BM25 over XML elements as documents, normalized per
  keyword) or through its ontological reference (the OntoScore of the
  referenced concept). Non-code nodes have a zero ontological term.
* **Propagation** (Eq. 2-3): scores flow up the XML tree attenuated by
  ``decay`` per containment edge, combined with ``max``.
* **Result score** (Eq. 4): the sum over query keywords of the
  propagated per-keyword scores.
"""

from __future__ import annotations

from ..ir.inverted_index import PositionalIndex
from .obs.tracer import NULL_TRACER
from .ontoscore.base import make_scorer
from ..ir.tokenizer import Keyword
from ..xmldoc.dewey import DeweyID, assign_dewey_ids
from ..xmldoc.model import Corpus, TextPolicy
from .ontoscore.base import OntoScoreComputer


class ElementIndex:
    """Full-text index of XML elements as IR documents.

    Units are :class:`DeweyID`\\ s; each element contributes its own
    textual description (not its subtree's -- subtree association is
    what propagation provides). Also records which code node resolves to
    which concept of the search ontology, the ``onto(D, v)`` map.
    """

    def __init__(self, corpus: Corpus, text_policy: TextPolicy | None = None,
                 concept_resolver=None, k1: float = 1.2,
                 b: float = 0.75, ir_function: str = "bm25") -> None:
        self._index = PositionalIndex()
        self._code_node_concepts: dict[DeweyID, str] = {}
        self._node_order: list[DeweyID] = []
        self._doc_ids: set[int] = set()
        self._text_policy = text_policy
        self._resolver = concept_resolver
        for document in corpus:
            self._ingest(document)
        self._scorer = make_scorer(self._index, ir_function, k1=k1, b=b)

    def _ingest(self, document) -> None:
        self._doc_ids.add(document.doc_id)
        dewey_ids = assign_dewey_ids(document)
        for node in document.iter():
            dewey = dewey_ids[node]
            self._index.add(dewey,
                            node.textual_description(self._text_policy))
            self._node_order.append(dewey)
            if node.reference is not None and self._resolver is not None:
                concept = self._resolver(node.reference)
                if concept is not None:
                    self._code_node_concepts[dewey] = concept.code

    def has_document(self, doc_id: int) -> bool:
        """Whether a document already contributes to the statistics."""
        return doc_id in self._doc_ids

    def add_document(self, document) -> None:
        """Grow the statistics substrate with one more document.

        The index is add-order independent (term statistics are set
        aggregates over elements), but growing it *does* shift the
        corpus-global BM25 statistics -- callers holding normalized
        score caches (:class:`NodeScorer`) must invalidate them.
        """
        if document.doc_id in self._doc_ids:
            raise ValueError(
                f"document {document.doc_id} is already indexed")
        self._ingest(document)

    # ------------------------------------------------------------------
    @property
    def index(self) -> PositionalIndex:
        return self._index

    @property
    def scorer(self):
        """The configured IR scorer (BM25 by default)."""
        return self._scorer

    def code_node_concepts(self) -> dict[DeweyID, str]:
        """Dewey ID → referenced concept code, for resolvable code nodes."""
        return dict(self._code_node_concepts)

    def concept_of(self, dewey: DeweyID) -> str | None:
        return self._code_node_concepts.get(dewey)

    def element_count(self) -> int:
        return len(self._node_order)

    def irs(self, keyword: Keyword) -> dict[DeweyID, float]:
        """Normalized per-element IR scores for a keyword."""
        return self._scorer.normalized_scores(keyword)


class NodeScorer:
    """Eq. 5 over a corpus: combines element IRS with OntoScore.

    ``node_weights`` optionally modulates NodeScores per element --
    the hook through which ElemRank (XRANK's structural prestige score,
    see :mod:`repro.core.elemrank`) enters the ranking; elements absent
    from the mapping keep weight 1.
    """

    def __init__(self, element_index: ElementIndex,
                 ontoscore: OntoScoreComputer,
                 node_weights: dict[DeweyID, float] | None = None,
                 tracer=None) -> None:
        self._elements = element_index
        self._ontoscore = ontoscore
        self._node_weights = node_weights
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._cache: dict[Keyword, dict[DeweyID, float]] = {}

    def invalidate(self) -> None:
        """Drop memoized per-keyword scores; required after the element
        index's corpus-global statistics change (document added)."""
        self._cache.clear()

    def node_scores(self, keyword: Keyword) -> dict[DeweyID, float]:
        """All nonzero ``NS(v, w)`` values for one keyword."""
        cached = self._cache.get(keyword)
        if cached is None:
            with self._tracer.span("index.node_scores",
                                   keyword=keyword.text) as span:
                cached = self._compute(keyword)
                span.annotate(scored_nodes=len(cached))
            self._cache[keyword] = cached
        return dict(cached)

    def _compute(self, keyword: Keyword) -> dict[DeweyID, float]:
        scores = self._elements.irs(keyword)
        onto = self._ontoscore.compute(keyword)
        if onto:
            for dewey, concept in \
                    self._elements.code_node_concepts().items():
                ontoscore = onto.get(concept, 0.0)
                if ontoscore > scores.get(dewey, 0.0):
                    scores[dewey] = ontoscore
        if self._node_weights is not None:
            scores = {dewey: value * self._node_weights.get(dewey, 1.0)
                      for dewey, value in scores.items()}
        return scores


def propagate_scores(node_scores: dict[DeweyID, float],
                     decay: float) -> dict[DeweyID, float]:
    """Eq. 2-3: best decayed descendant-or-self score for every node.

    ``Score(v, w) = max over u in desc-or-self(v) of
    decay^d(v,u) · NS(u, w)``. Implemented bottom-up over the Dewey IDs
    actually present: each scored node pushes its decayed score to every
    ancestor. Nodes that end with a zero score are omitted.
    """
    if not 0.0 < decay <= 1.0:
        raise ValueError("decay must lie in (0, 1]")
    propagated: dict[DeweyID, float] = {}
    for dewey, score in node_scores.items():
        if score <= 0.0:
            continue
        current = dewey
        value = score
        while True:
            if propagated.get(current, 0.0) < value:
                propagated[current] = value
            else:
                # Every ancestor already dominates through this path.
                break
            if not current.path:
                break
            current = current.parent()
            value *= decay
    return propagated


def result_score(per_keyword_scores: list[float]) -> float:
    """Eq. 4: monotonic aggregation (sum) over the query keywords."""
    return sum(per_keyword_scores)
