"""Bounded LRU cache for query-time XOnto-DILs.

The engine originally kept every DIL it ever built in a plain dict --
fine for the paper's 60-patient corpus, unbounded growth under the
heavy-traffic north star (one DIL per distinct query keyword, forever).
:class:`DILCache` replaces it with a thread-safe least-recently-used
cache whose capacity modes are:

* ``capacity=None`` -- unbounded (the historical behavior, and the
  right mode when :meth:`~repro.core.query.engine.XOntoRankEngine.build_index`
  pre-warms a whole vocabulary);
* ``capacity=N`` -- at most ``N`` entries; inserting the ``N+1``-th
  evicts the least recently *used* entry (a hit refreshes recency);
* ``capacity=0`` -- caching disabled: every lookup misses and nothing
  is ever stored (useful to measure the uncached path).

Hit/miss/eviction counters feed a :class:`~repro.core.stats.StatsRegistry`
so the CLI and benchmarks can report cache effectiveness.

The cache is value-agnostic (keys are any hashable, values any object);
the engine keys it by ``(keyword.text, keyword.is_phrase)`` so a quoted
single-word phrase and the bare term no longer collide.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Iterator, TypeVar

from .stats import CacheStats, StatsRegistry

Value = TypeVar("Value")


class DILCache:
    """A thread-safe LRU cache with hit/miss/eviction accounting."""

    def __init__(self, capacity: int | None = None,
                 stats: StatsRegistry | None = None,
                 namespace: str = "dil_cache") -> None:
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be None or >= 0")
        self._capacity = capacity
        self._lock = threading.RLock()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._stats = stats if stats is not None else StatsRegistry()
        self._namespace = namespace

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int | None:
        return self._capacity

    @property
    def registry(self) -> StatsRegistry:
        """The registry receiving this cache's counters."""
        return self._stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        """Keys from least to most recently used (a snapshot)."""
        with self._lock:
            return iter(list(self._entries))

    # ------------------------------------------------------------------
    def get(self, key: Hashable):
        """The cached value, refreshing recency; ``None`` on a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._count("hits")
                return self._entries[key]
            self._count("misses")
            return None

    def put(self, key: Hashable, value) -> None:
        """Insert/replace a value, evicting the LRU entry when full."""
        if self._capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if (self._capacity is not None
                    and len(self._entries) > self._capacity):
                self._entries.popitem(last=False)
                self._count("evictions")

    def get_or_build(self, key: Hashable,
                     factory: Callable[[], Value]) -> Value:
        """The cached value, building (and caching) it on a miss.

        The factory runs *outside* the lock so a slow DIL build never
        blocks concurrent lookups of other keywords; two threads racing
        on the same cold keyword may both build, but both record a miss
        and the first inserted value wins, so every caller shares one
        object afterwards. The insert-if-absent happens under a single
        lock acquisition -- re-checking and then inserting via
        :meth:`put` would let a losing builder *replace* the winner,
        handing concurrent callers distinct objects. Miss builds are
        timed into the registry's ``<namespace>.build`` timer (the cost
        the cache exists to avoid).
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._count("hits")
                return self._entries[key]  # type: ignore[return-value]
            self._count("misses")
        started = self._stats.clock()
        value = factory()
        self._stats.observe(f"{self._namespace}.build",
                            self._stats.clock() - started)
        if self._capacity == 0:
            return value
        with self._lock:
            if key in self._entries:  # lost the race: share the winner
                self._entries.move_to_end(key)
                return self._entries[key]  # type: ignore[return-value]
            self._entries[key] = value
            if (self._capacity is not None
                    and len(self._entries) > self._capacity):
                self._entries.popitem(last=False)
                self._count("evictions")
        return value

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """Point-in-time counters plus current size/capacity."""
        with self._lock:
            size = len(self._entries)
        return CacheStats(
            hits=self._stats.value(f"{self._namespace}.hits"),
            misses=self._stats.value(f"{self._namespace}.misses"),
            evictions=self._stats.value(f"{self._namespace}.evictions"),
            size=size, capacity=self._capacity)

    # ------------------------------------------------------------------
    def _count(self, event: str) -> None:
        self._stats.increment(f"{self._namespace}.{event}")
