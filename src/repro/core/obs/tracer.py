"""A lightweight span tracer for the query and index hot paths.

Usage at an instrumentation site::

    with tracer.span("query.dil_merge") as span:
        ...
        span.annotate(postings_read=n)

Spans nest per thread (a thread-local stack tracks the active parent),
carry arbitrary key/value attributes, and land in a bounded in-memory
buffer when they finish; the exporters in :mod:`repro.core.obs.export`
turn the buffer into a human table, JSON lines, or a Chrome-trace file.

Two tracer flavors share the interface:

* :class:`Tracer` -- the real thing. Each finished span's duration is
  also recorded into the attached registry's timer instrument of the
  same name, so one ``with tracer.span(...)`` site feeds both the trace
  view (individual spans) and the histogram view (p50/p95/p99).
* :data:`NULL_TRACER` -- the disabled singleton. ``span()`` returns one
  shared, attribute-ignoring context manager, so an instrumented hot
  path costs a method call and no allocation when profiling is off;
  sites guard genuinely expensive attribute computation behind
  ``tracer.enabled``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

from .instruments import Clock, default_clock

#: Default bound on the finished-span buffer; older spans are dropped
#: first (the tail of a run is usually the interesting part).
DEFAULT_SPAN_CAPACITY = 4096


@dataclass
class Span:
    """One finished (or in-flight) traced operation."""

    name: str
    start: float
    end: float | None = None
    depth: int = 0
    thread_id: int = 0
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0


class _ActiveSpan:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self.span = Span(name=name, start=0.0, attributes=attributes)

    def annotate(self, **attributes: Any) -> None:
        """Attach/overwrite attributes while the span is open."""
        self.span.attributes.update(attributes)

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._open(self.span)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._close(self.span)
        return False


class Tracer:
    """Collects nested spans into a bounded in-memory buffer."""

    enabled = True

    def __init__(self, clock: Clock | None = None,
                 capacity: int = DEFAULT_SPAN_CAPACITY,
                 registry: "Any | None" = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._clock = clock if clock is not None else default_clock()
        self._capacity = capacity
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._dropped = 0
        self._local = threading.local()
        #: Any object with ``observe(name, seconds)``; usually the
        #: engine's :class:`~repro.core.stats.StatsRegistry`. Settable
        #: after construction (the engine attaches its own registry).
        self.registry = registry

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """A context manager tracing one named operation."""
        return _ActiveSpan(self, name, attributes)

    def observe(self, name: str, seconds: float) -> None:
        """Record a duration measured out-of-band (e.g. shipped back
        from a worker process) into the attached registry's timer."""
        if self.registry is not None:
            self.registry.observe(name, seconds)

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        span.depth = len(stack)
        span.start = self._clock()
        stack.append(span)

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        span.thread_id = threading.get_ident()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._finished.append(span)
            if len(self._finished) > self._capacity:
                del self._finished[0]
                self._dropped += 1
        if self.registry is not None:
            self.registry.observe(span.name, span.duration)

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Finished spans evicted from the buffer (oldest first)."""
        with self._lock:
            return self._dropped

    def finished(self) -> list[Span]:
        """Finished spans, oldest first (a snapshot)."""
        with self._lock:
            return list(self._finished)

    def active_depth(self) -> int:
        """Nesting depth of the calling thread's open spans."""
        return len(self._stack())

    def clear(self) -> None:
        """Drop every buffered span and reset the drop counter."""
        with self._lock:
            self._finished.clear()
            self._dropped = 0

    def __iter__(self) -> Iterator[Span]:
        return iter(self.finished())


class _NullSpan:
    """The shared do-nothing span of the disabled tracer."""

    __slots__ = ()

    def annotate(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


class NullTracer:
    """Disabled tracer: every ``span()`` is the same no-op object."""

    enabled = False
    registry = None
    _SPAN = _NullSpan()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return self._SPAN

    def observe(self, name: str, seconds: float) -> None:
        pass

    @property
    def dropped(self) -> int:
        return 0

    def finished(self) -> list[Span]:
        return []

    def active_depth(self) -> int:
        return 0

    def clear(self) -> None:
        pass

    def __iter__(self) -> Iterator[Span]:
        return iter(())


#: The process-wide disabled tracer; instrumented components default to
#: it so uninstrumented use pays (almost) nothing.
NULL_TRACER = NullTracer()
