"""Timer/histogram instruments (the sampling half of the stats layer).

:class:`~repro.core.stats.StatsRegistry` keeps its original monotonic
counters for event *counts*; this module supplies the *duration*
instruments the query-path profiling needs: a deterministic, bounded
log-bucket histogram plus the frozen summary (:class:`TimerStats`) it
exports.

Design constraints, in order:

* **Deterministic.** No random reservoir sampling: a sample stream
  always produces the same summary. Tests drive the clock explicitly
  (see :class:`ManualClock`), so timer values themselves are exact.
* **Bounded.** A histogram holds one integer per occupied log bucket
  (base ``2**(1/8)``, ~9% relative width), never the samples
  themselves; a million observations cost the same memory as a dozen.
* **Cheap.** ``record`` is one ``log`` call and two dict updates; the
  caller (the registry) provides the locking.

Percentiles are read off the bucket boundaries and clamped into the
observed ``[min, max]`` range, so the degenerate cases are exact: a
single sample *is* its own p50/p95/p99, and an all-equal stream reports
that value at every quantile.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable

#: Seconds-returning monotonic clock, injectable for deterministic tests.
Clock = Callable[[], float]

#: Log-bucket growth factor: 8 buckets per octave, <9% relative error.
_BUCKET_BASE = 2.0 ** 0.125
_LOG_BASE = math.log(_BUCKET_BASE)


class ManualClock:
    """A hand-cranked :data:`Clock` for deterministic timer tests.

    ``clock()`` returns the current reading; :meth:`advance` moves it
    forward. Inject into :class:`~repro.core.stats.StatsRegistry` or
    :class:`~repro.core.obs.tracer.Tracer` so every measured duration
    is exactly the scripted one.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self.now += seconds
        return self.now


@dataclass(frozen=True)
class TimerStats:
    """A point-in-time summary of one timer/histogram instrument."""

    count: int
    total: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def render(self, scale: float = 1e3, unit: str = "ms") -> str:
        """One human line (default in milliseconds), for CLI output."""
        return (f"count={self.count} total={self.total * scale:.3f}{unit} "
                f"mean={self.mean * scale:.3f}{unit} "
                f"p50={self.p50 * scale:.3f}{unit} "
                f"p95={self.p95 * scale:.3f}{unit} "
                f"p99={self.p99 * scale:.3f}{unit} "
                f"max={self.maximum * scale:.3f}{unit}")


#: The summary of an instrument nobody ever recorded into.
EMPTY_TIMER = TimerStats(count=0, total=0.0, minimum=0.0, maximum=0.0,
                         p50=0.0, p95=0.0, p99=0.0)


class LogBucketHistogram:
    """Deterministic bounded histogram over non-negative samples.

    Not thread-safe by itself: the owning
    :class:`~repro.core.stats.StatsRegistry` serializes access under
    its registry lock, keeping the per-record cost to one acquisition
    exactly like the counters.
    """

    __slots__ = ("_buckets", "_zeros", "count", "total", "minimum",
                 "maximum")

    def __init__(self) -> None:
        self._buckets: dict[int, int] = {}
        self._zeros = 0
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = 0.0

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Add one sample (clamped at zero; durations are >= 0)."""
        if value < 0.0:
            value = 0.0
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value == 0.0:
            self._zeros += 1
            return
        index = math.ceil(math.log(value) / _LOG_BASE)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    # ------------------------------------------------------------------
    def percentile(self, quantile: float) -> float:
        """The sample value at ``quantile`` (0 < q <= 1), bucket-exact.

        Returns the upper bound of the bucket holding the rank-``q``
        sample, clamped into the observed range -- so the answer is
        within one bucket width (<9%) of the true order statistic, and
        exact for empty/single/all-equal streams.
        """
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must lie in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(quantile * self.count))
        if rank <= self._zeros:
            return 0.0
        cumulative = self._zeros
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                bound = _BUCKET_BASE ** index
                return min(max(bound, self.minimum), self.maximum)
        return self.maximum  # pragma: no cover - defensive

    def snapshot(self) -> TimerStats:
        if self.count == 0:
            return EMPTY_TIMER
        return TimerStats(count=self.count, total=self.total,
                          minimum=self.minimum, maximum=self.maximum,
                          p50=self.percentile(0.50),
                          p95=self.percentile(0.95),
                          p99=self.percentile(0.99))


def default_clock() -> Clock:
    """The production clock (monotonic, sub-microsecond)."""
    return time.perf_counter
