"""Exporters: registry + trace buffer -> human / JSONL / Chrome trace.

Three consumers, three formats:

* :func:`render_profile` -- the ``--profile`` table: per-phase rollup
  of every timer (parse / OntoScore / DIL merge / storage / ...), then
  the individual instruments, then the counters.
* :func:`metrics_lines` / :func:`write_metrics_jsonl` -- one JSON
  object per line per instrument (``--metrics-out``), stable field
  order, sorted by name: trivially diffable and greppable.
* :func:`chrome_trace` / :func:`write_chrome_trace` -- the Trace Event
  Format (``--trace-out``): a JSON object with a ``traceEvents`` array
  of complete (``"ph": "X"``) events, loadable in ``chrome://tracing``
  and https://ui.perfetto.dev. Timestamps are microseconds relative to
  the earliest buffered span.

Phase rollups sum *per-instrument* totals; nested spans (an OntoScore
expansion inside a DIL fetch) therefore overlap across phases by
design -- the table answers "where does time go inside each stage",
not "what fraction of wall-clock is each stage".
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable

from .instruments import EMPTY_TIMER, TimerStats
from .tracer import NULL_TRACER, Span

#: Phase rollup, in display order: label -> instrument-name prefixes
#: (a prefix ending in "." matches the namespace, otherwise exactly).
#: The first four are the query path's canonical stages and are always
#: printed, even at zero, so ``--profile`` output has a stable shape.
PHASES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("parse", ("query.parse",)),
    ("ontoscore", ("ontoscore.",)),
    ("dil_merge", ("query.dil_merge",)),
    ("storage", ("storage.",)),
    ("dil_fetch", ("query.dil_fetch", "dil_cache.")),
    ("index_build", ("index.", "parallel_build.")),
    ("query_total", ("query.search",)),
)

_ALWAYS_SHOWN = ("parse", "ontoscore", "dil_merge", "storage")


def phase_of(name: str) -> str | None:
    """The phase label an instrument name rolls up into, if any."""
    for label, prefixes in PHASES:
        for prefix in prefixes:
            if (name == prefix
                    or (prefix.endswith(".") and name.startswith(prefix))):
                return label
    return None


def _merge(stats: Iterable[TimerStats]) -> TimerStats:
    """Sum counts/totals, max of maxima, min of minima; percentiles of
    a rollup are not well-defined across instruments and report 0."""
    count, total = 0, 0.0
    minimum, maximum = 0.0, 0.0
    for item in stats:
        if item.count == 0:
            continue
        minimum = item.minimum if count == 0 else min(minimum,
                                                     item.minimum)
        count += item.count
        total += item.total
        maximum = max(maximum, item.maximum)
    if count == 0:
        return EMPTY_TIMER
    return TimerStats(count=count, total=total, minimum=minimum,
                      maximum=maximum, p50=0.0, p95=0.0, p99=0.0)


# ----------------------------------------------------------------------
# Human table
# ----------------------------------------------------------------------
def render_profile(registry: Any, tracer: Any = NULL_TRACER) -> str:
    """The ``--profile`` report over a registry (and span buffer)."""
    timers: dict[str, TimerStats] = registry.timers()
    lines = ["PROFILE -- per-phase timings (milliseconds)"]
    header = (f"{'phase':<24}{'count':>8}{'total':>12}{'mean':>10}"
              f"{'max':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    grouped: dict[str, list[TimerStats]] = {}
    for name, stats in timers.items():
        label = phase_of(name)
        if label is not None:
            grouped.setdefault(label, []).append(stats)
    for label, _ in PHASES:
        rollup = _merge(grouped.get(label, ()))
        if rollup.count == 0 and label not in _ALWAYS_SHOWN:
            continue
        lines.append(f"{label:<24}{rollup.count:>8}"
                     f"{rollup.total * 1e3:>12.3f}"
                     f"{rollup.mean * 1e3:>10.3f}"
                     f"{rollup.maximum * 1e3:>10.3f}")
    if timers:
        lines.append("")
        lines.append("instruments:")
        for name in sorted(timers):
            lines.append(f"  {name}: {timers[name].render()}")
    counters = registry.snapshot()
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name}={counters[name]}")
    if tracer.enabled:
        lines.append("")
        lines.append(f"spans: {len(tracer.finished())} buffered "
                     f"({tracer.dropped} dropped)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def metrics_lines(registry: Any) -> list[str]:
    """One compact JSON object per instrument, sorted by name."""
    lines = []
    for name, value in sorted(registry.snapshot().items()):
        lines.append(json.dumps(
            {"type": "counter", "name": name, "value": value},
            sort_keys=False))
    for name, stats in sorted(registry.timers().items()):
        lines.append(json.dumps(
            {"type": "timer", "name": name, "count": stats.count,
             "total_s": stats.total, "mean_s": stats.mean,
             "min_s": stats.minimum, "max_s": stats.maximum,
             "p50_s": stats.p50, "p95_s": stats.p95,
             "p99_s": stats.p99}))
    return lines


def write_metrics_jsonl(registry: Any, path: str) -> int:
    """Write :func:`metrics_lines` to ``path``; returns line count."""
    lines = metrics_lines(registry)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------
def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def chrome_trace(tracer: Any) -> dict[str, Any]:
    """The buffered spans in Chrome Trace Event Format."""
    spans: list[Span] = tracer.finished()
    origin = min((span.start for span in spans), default=0.0)
    pid = os.getpid()
    events = []
    for span in spans:
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": span.thread_id,
            "args": {key: _json_safe(value)
                     for key, value in span.attributes.items()},
        })
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_chrome_trace(tracer: Any, path: str) -> int:
    """Write :func:`chrome_trace` to ``path``; returns event count."""
    trace = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1)
    return len(trace["traceEvents"])
