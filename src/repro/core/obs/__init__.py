"""Observability: timer/histogram instruments, span tracing, exporters.

The counters of :mod:`repro.core.stats` say *how often*; this package
says *how long* and *in what order*:

* :mod:`~repro.core.obs.instruments` -- deterministic log-bucket
  histograms behind ``StatsRegistry.observe``/``time``, plus the
  injectable clocks that keep timer tests exact;
* :mod:`~repro.core.obs.tracer` -- nested spans with attributes and a
  bounded buffer (:class:`Tracer`), and the zero-cost disabled
  singleton :data:`NULL_TRACER`;
* :mod:`~repro.core.obs.export` -- the ``--profile`` table, JSON-lines
  metrics, and Chrome-trace output.

Every public instrument and span name is cataloged in
``docs/OBSERVABILITY.md``.
"""

from .instruments import (EMPTY_TIMER, Clock, LogBucketHistogram,
                          ManualClock, TimerStats, default_clock)
from .tracer import (DEFAULT_SPAN_CAPACITY, NULL_TRACER, NullTracer,
                     Span, Tracer)
from .export import (PHASES, chrome_trace, metrics_lines, phase_of,
                     render_profile, write_chrome_trace,
                     write_metrics_jsonl)

__all__ = [
    "Clock", "DEFAULT_SPAN_CAPACITY", "EMPTY_TIMER",
    "LogBucketHistogram", "ManualClock", "NULL_TRACER", "NullTracer",
    "PHASES", "Span", "TimerStats", "Tracer", "chrome_trace",
    "default_clock", "metrics_lines", "phase_of", "render_profile",
    "write_chrome_trace", "write_metrics_jsonl",
]
