"""XOntoRank core: the paper's primary contribution.

Result semantics and ranking (Eq. 1-5), the three OntoScore strategies
(Section IV), the XOnto-DIL index (Section V-B) and the query machinery
(Section V-A).
"""

from .cache import DILCache
from .config import (ALL_STRATEGIES, DEFAULT_CONFIG, GRAPH,
                     ONTOLOGY_STRATEGIES, RELATIONSHIPS, TAXONOMY, XRANK,
                     XOntoRankConfig)
from .elemrank import ElemRankComputer, ElemRankParameters
from .index import (DeweyInvertedList, IndexBuilder, IndexManager,
                    KeywordBuildStats, ParallelIndexBuilder, Posting,
                    XOntoDILIndex, index_key, keyword_from_key)
from .stats import CacheStats, StatsRegistry
from .ontoscore import (GraphOntoScore, MaterializedRelationshipsOntoScore,
                        NullOntoScore, OntoScoreComputer,
                        RelationshipsOntoScore, SeedScorer,
                        TaxonomyOntoScore, best_first_expansion,
                        concept_seed_scorer, level_order_expansion,
                        relationships_seed_scorer)
from .query import (DILQueryProcessor, DILQueryStatistics,
                    FederatedEngine, KeywordEvidence, NaiveEvaluator,
                    OntologyHop, QueryPipeline, QueryResult,
                    ResultExplanation, XOntoRankEngine, build_engines,
                    explain_result, merge_ranked, rank_results)
from .scoring import (ElementIndex, NodeScorer, propagate_scores,
                      result_score)

__all__ = [
    "ALL_STRATEGIES", "CacheStats", "DEFAULT_CONFIG", "DILCache",
    "DILQueryProcessor", "DILQueryStatistics", "DeweyInvertedList",
    "ElemRankComputer", "ElemRankParameters", "ElementIndex",
    "FederatedEngine", "GRAPH", "KeywordEvidence", "OntologyHop",
    "ResultExplanation", "explain_result", "GraphOntoScore",
    "IndexBuilder", "IndexManager", "KeywordBuildStats",
    "MaterializedRelationshipsOntoScore", "NaiveEvaluator",
    "NodeScorer", "NullOntoScore", "ONTOLOGY_STRATEGIES",
    "OntoScoreComputer", "ParallelIndexBuilder", "Posting",
    "QueryPipeline", "QueryResult", "RELATIONSHIPS",
    "RelationshipsOntoScore", "SeedScorer", "StatsRegistry", "TAXONOMY",
    "TaxonomyOntoScore", "XOntoDILIndex", "XOntoRankConfig",
    "XOntoRankEngine", "XRANK", "best_first_expansion", "build_engines",
    "concept_seed_scorer", "index_key", "keyword_from_key",
    "level_order_expansion", "merge_ranked", "propagate_scores",
    "rank_results", "relationships_seed_scorer", "result_score",
]
