"""The XOntoRank engine: the system facade (paper Figure 8).

A thin coordinator over the three layered services that mirror the
architecture diagram:

* the :class:`~repro.core.index.manager.IndexManager` owns the Index
  Creation Module's lifecycle -- building, persistence, validated
  loading, and the bounded DIL cache;
* the :class:`~repro.core.query.pipeline.QueryPipeline` is the Query
  Module -- an explicit parse → dil_fetch → merge → rank stage chain
  running XRANK's DIL algorithm;
* the Database Access Module methods (:meth:`fragment`,
  :meth:`snippet`) resolve result Dewey IDs back to XML fragments.

Typical use::

    engine = XOntoRankEngine(corpus, ontology, strategy=RELATIONSHIPS)
    results = engine.search('"bronchial structure" theophylline', k=5)
    fragment = engine.fragment(results[0])

For shard-parallel search over a partitioned corpus with the same
facade, see :class:`~repro.core.query.federated.FederatedEngine`.
"""

from __future__ import annotations

from ...ir.tokenizer import Keyword, KeywordQuery
from ...ontology.api import TerminologyService
from ...ontology.model import Ontology
from ...storage.interface import IndexStore
from ...xmldoc.model import Corpus, XMLNode
from ...xmldoc.serializer import serialize
from ..cache import DILCache
from ..config import (DEFAULT_CONFIG, GRAPH, ONTOLOGY_STRATEGIES,
                      RELATIONSHIPS, TAXONOMY, XRANK, XOntoRankConfig)
from ..deadline import Deadline
from ..index.builder import IndexBuilder
from ..index.dil import DeweyInvertedList, XOntoDILIndex
from ..index.manager import IndexManager
from ..obs.tracer import NULL_TRACER, Tracer
from ..ontoscore.base import SeedScorer
from ..ontoscore.factory import make_ontoscore, make_seed_scorer
from ..scoring import ElementIndex
from ..stats import CacheStats, StatsRegistry
from .dil_algorithm import DILQueryProcessor
from .naive import NaiveEvaluator
from .pipeline import QueryPipeline
from .results import QueryResult, SearchOutcome


class XOntoRankEngine:
    """Ontology-aware keyword search over one CDA corpus."""

    def __init__(self, corpus: Corpus, ontology: Ontology | None = None,
                 strategy: str = RELATIONSHIPS,
                 config: XOntoRankConfig = DEFAULT_CONFIG,
                 element_index: ElementIndex | None = None,
                 seed_scorer: SeedScorer | None = None,
                 tracer: Tracer | None = None,
                 stats: StatsRegistry | None = None,
                 builder: IndexBuilder | None = None) -> None:
        if builder is None and strategy != XRANK and ontology is None:
            raise ValueError(
                f"strategy {strategy!r} needs an ontology; "
                f"use strategy='xrank' for ontology-free search")
        self.corpus = corpus
        self.ontology = ontology
        self.strategy = strategy
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        # One tracer threads every hot path; a tracer without its own
        # registry adopts the engine's, so each span also feeds the
        # timer histogram of the same name.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None and tracer.registry is None:
            tracer.registry = self.stats
        self.terminology = None
        if builder is None:
            builder = self._make_builder(element_index, seed_scorer)
        self.element_index = builder.element_index
        self.ontoscore = builder.ontoscore
        self.ontoscore.tracer = self.tracer
        self.index_manager = IndexManager(
            corpus, builder, strategy, config, ontology=ontology,
            stats=self.stats, tracer=self.tracer)
        self.processor = DILQueryProcessor(decay=config.decay,
                                           tracer=self.tracer,
                                           stats=self.stats)
        self.pipeline = QueryPipeline.default(
            self.index_manager.dil_for, self.processor,
            tracer=self.tracer)
        self._naive_evaluator: NaiveEvaluator | None = None

    def _make_builder(self, element_index: ElementIndex | None,
                      seed_scorer: SeedScorer | None) -> IndexBuilder:
        self.terminology = (TerminologyService([self.ontology])
                            if self.ontology is not None else None)
        resolver = (self.terminology.resolve
                    if self.terminology is not None else None)
        config = self.config
        element_index = element_index or ElementIndex(
            self.corpus, text_policy=config.text_policy,
            concept_resolver=resolver, k1=config.bm25_k1,
            b=config.bm25_b, ir_function=config.ir_function)
        ontoscore = make_ontoscore(self.strategy, self.ontology, config,
                                   seed_scorer=seed_scorer)
        node_weights = None
        if config.use_elemrank:
            from ..elemrank import ElemRankComputer
            node_weights = ElemRankComputer(
                self.corpus).normalized_weights()
        return IndexBuilder(element_index, ontoscore,
                            node_weights=node_weights,
                            tracer=self.tracer)

    def attach_ontology_cache(self, store: IndexStore) -> "OntoScoreCache | None":
        """Read OntoScore expansions through a persisted cache store.

        Binds ``store`` to this engine's ontology fingerprint, strategy
        and expansion parameters (invalidating any mismatched cache
        generation it holds) and attaches it to the strategy computer.
        Returns the attached :class:`~repro.core.ontoscore.cache
        .OntoScoreCache`, or ``None`` for the ontology-free XRANK
        strategy, which has nothing to cache.
        """
        if self.ontology is None or self.strategy == XRANK:
            return None
        from ..ontoscore.cache import OntoScoreCache, expansion_params
        cache = OntoScoreCache(
            store, self.ontology.fingerprint(), self.strategy,
            expansion_params(self.config), stats=self.stats)
        self.ontoscore.attach_persistent_cache(cache)
        return cache

    # ------------------------------------------------------------------
    # Backward-compatible views into the layered services
    # ------------------------------------------------------------------
    @property
    def builder(self) -> IndexBuilder:
        """The Index Creation Module's builder (owned by the manager)."""
        return self.index_manager.builder

    @property
    def dil_cache(self) -> DILCache:
        """The query-time DIL cache (owned by the manager)."""
        return self.index_manager.dil_cache

    # ------------------------------------------------------------------
    # Query phase
    # ------------------------------------------------------------------
    def search(self, query: str | KeywordQuery, k: int | None = None,
               *, deadline: "Deadline | None" = None,
               ) -> list[QueryResult]:
        """Top-k ontology-aware keyword search.

        ``k=None`` falls back to ``config.top_k``; any given ``k`` runs
        the bounded (document-skipping) merge mode, which returns the
        byte-identical ranking of full evaluation plus truncation. A
        ``deadline`` bounds the evaluation (see :meth:`search_outcome`
        for the partial-results flag it may set).
        """
        return self.search_outcome(query, k, deadline=deadline).results

    def search_outcome(self, query: str | KeywordQuery,
                       k: int | None = None, *,
                       deadline: "Deadline | None" = None,
                       ) -> SearchOutcome:
        """:meth:`search` plus serving-quality annotations.

        With a ``deadline``, expiry between per-document merges returns
        the best-so-far prefix with ``partial=True``; expiry before any
        result could exist raises
        :class:`~repro.core.deadline.DeadlineExceeded`. This is the
        entry point the serving layer uses; ``degraded_shards`` is
        always empty here (a single engine has no shards to shed).
        """
        with self.tracer.span("query.search",
                              strategy=self.strategy) as span:
            context = self.pipeline.run(
                query, k=k if k is not None else self.config.top_k,
                deadline=deadline)
            span.annotate(keywords=len(context.dils),
                          results=len(context.results))
            if context.partial:
                span.annotate(partial=True)
            return SearchOutcome(
                results=context.results, partial=context.partial,
                narrative=context.extras.get("narrative"))

    def enable_narrative(self, mapper=None):
        """Insert the clinical-narrative mapping stage before ``parse``.

        String queries are then treated as free narrative text and
        mapped to concept keywords (see
        :mod:`repro.core.query.narrative`); pre-parsed
        :class:`KeywordQuery` objects still pass through untouched.
        Returns the active mapper. Raises ``ValueError`` without an
        ontology (or explicit ``mapper``) to map against, or when the
        stage is already installed.
        """
        from .narrative import NarrativeQueryMapper, NarrativeStage
        if mapper is None:
            if self.terminology is None:
                if self.ontology is None:
                    raise ValueError(
                        "narrative mapping needs an ontology (or an "
                        "explicit mapper built on a TerminologyService)")
                self.terminology = TerminologyService([self.ontology])
            mapper = NarrativeQueryMapper(self.terminology,
                                          tracer=self.tracer,
                                          stats=self.stats)
        self.pipeline.insert_before("parse", NarrativeStage(mapper))
        return mapper

    def disable_narrative(self) -> None:
        """Remove the narrative stage; the pipeline (and every result)
        is byte-identical to one that never had it."""
        self.pipeline.remove("narrative")

    def search_naive(self, query: str | KeywordQuery,
                     k: int | None = None) -> list[QueryResult]:
        """The same search through the naive reference evaluator
        (built lazily once, then reused)."""
        parsed = (KeywordQuery.parse(query) if isinstance(query, str)
                  else query)
        if self._naive_evaluator is None:
            self._naive_evaluator = NaiveEvaluator(
                self.builder.node_scorer, decay=self.config.decay)
        return self._naive_evaluator.execute(
            parsed, k=k if k is not None else self.config.top_k)

    def dil_for(self, keyword: Keyword) -> DeweyInvertedList:
        """The keyword's XOnto-DIL, built on first use (cached under
        ``(text, is_phrase)``)."""
        return self.index_manager.dil_for(keyword)

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the DIL cache."""
        return self.index_manager.cache_stats()

    def explain(self, result: QueryResult, query: str | KeywordQuery):
        """Per-keyword evidence for a result (see
        :mod:`repro.core.query.explain`): which element contributed each
        keyword's score, through text or through which ontology path."""
        from .explain import explain_result
        return explain_result(self, result, query)

    # ------------------------------------------------------------------
    # Database Access Module
    # ------------------------------------------------------------------
    def fragment(self, result: QueryResult) -> XMLNode:
        """The XML fragment a result addresses (Figure 4)."""
        return result.fragment(self.corpus)

    def fragment_text(self, result: QueryResult,
                      indent: str | None = "  ") -> str:
        """Serialized form of the result fragment, for display."""
        return serialize(self.fragment(result), indent=indent,
                         xml_declaration=False)

    def snippet(self, result: QueryResult,
                query: str | KeywordQuery) -> XMLNode:
        """Compact result fragment: only the paths to the elements that
        actually contributed each keyword's score (the minimal
        connecting tree, in the spirit of Figure 4)."""
        from ...xmldoc.dewey import node_at
        from ...xmldoc.navigation import copy_subtree, prune_to_paths
        explanation = self.explain(result, query)
        document = self.corpus.get(result.doc_id)
        root = node_at(document, result.dewey)
        targets = [node_at(document, item.contributor)
                   for item in explanation.evidence
                   if item.propagated_score > 0.0]
        if not targets:
            return copy_subtree(root)
        return prune_to_paths(root, targets)

    def snippet_text(self, result: QueryResult,
                     query: str | KeywordQuery,
                     indent: str | None = "  ") -> str:
        """Serialized snippet, for display."""
        return serialize(self.snippet(result, query), indent=indent,
                         xml_declaration=False)

    # ------------------------------------------------------------------
    # Pre-processing phase (delegated to the IndexManager)
    # ------------------------------------------------------------------
    def build_index(self, vocabulary: set[str] | None = None,
                    radius: int = 2,
                    store: IndexStore | None = None,
                    workers: int | None = None,
                    parallel_mode: str = "auto") -> XOntoDILIndex:
        """Pre-build DILs for a whole vocabulary (Section V-B); see
        :meth:`IndexManager.build_index
        <repro.core.index.manager.IndexManager.build_index>`."""
        return self.index_manager.build_index(
            vocabulary=vocabulary, radius=radius, store=store,
            workers=workers, parallel_mode=parallel_mode)

    def load_index(self, store: IndexStore, *, validate: bool = True,
                   fallback: bool = True) -> int:
        """Warm the DIL cache from a persisted index; see
        :meth:`IndexManager.load_index
        <repro.core.index.manager.IndexManager.load_index>`."""
        return self.index_manager.load_index(store, validate=validate,
                                             fallback=fallback)

    def attach_read_store(self, store: IndexStore, *,
                          validate: bool = True,
                          on_error=None) -> None:
        """Serve DIL-cache misses from a persisted store (read-through
        mode, for bounded-memory serving); see
        :meth:`IndexManager.attach_read_store
        <repro.core.index.manager.IndexManager.attach_read_store>`."""
        self.index_manager.attach_read_store(store, validate=validate,
                                             on_error=on_error)

    # ------------------------------------------------------------------
    # Incremental maintenance (LSM segments; delegated to the manager)
    # ------------------------------------------------------------------
    def add_documents(self, documents, store: IndexStore,
                      radius: int = 2):
        """Index new documents as one immutable appended segment; no
        existing segment is rebuilt. Returns the new segment catalog."""
        return self.index_manager.add_documents(documents, store,
                                                radius=radius)

    def remove_documents(self, doc_ids, store: IndexStore):
        """Tombstone documents: they vanish from query results with one
        catalog write; their rows are reclaimed by :meth:`compact`."""
        return self.index_manager.remove_documents(doc_ids, store)

    def compact(self, store: IndexStore):
        """Fold the store's live segments into one; the logical index
        (and every query result) is unchanged."""
        return self.index_manager.compact(store)


def build_engines(corpus: Corpus, ontology: Ontology,
                  strategies: tuple[str, ...] = (XRANK, GRAPH, TAXONOMY,
                                                 RELATIONSHIPS),
                  config: XOntoRankConfig = DEFAULT_CONFIG,
                  tracer: Tracer | None = None,
                  stats: StatsRegistry | None = None,
                  ) -> dict[str, XOntoRankEngine]:
    """One engine per strategy, sharing the expensive common stages.

    The element index (full-text stage) is strategy-independent; the
    concept seed scorer is shared between Graph and Taxonomy. This is
    how the experiments compare the four approaches on equal footing.
    A ``tracer`` and/or ``stats`` registry passed here is threaded into
    *every* engine, so cross-strategy experiments land their spans and
    counters in one unified profile.
    """
    terminology = TerminologyService([ontology])
    element_index = ElementIndex(
        corpus, text_policy=config.text_policy,
        concept_resolver=terminology.resolve, k1=config.bm25_k1,
        b=config.bm25_b, ir_function=config.ir_function)
    concept_seeds: SeedScorer | None = None
    if GRAPH in strategies or TAXONOMY in strategies:
        concept_seeds = make_seed_scorer(GRAPH, ontology, config)
    engines: dict[str, XOntoRankEngine] = {}
    for strategy in strategies:
        seeds = concept_seeds if strategy in (GRAPH, TAXONOMY) else None
        engines[strategy] = XOntoRankEngine(
            corpus, ontology if strategy in ONTOLOGY_STRATEGIES else None,
            strategy=strategy, config=config,
            element_index=element_index, seed_scorer=seeds,
            tracer=tracer, stats=stats)
    return engines
