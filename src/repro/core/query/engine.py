"""The XOntoRank engine: the system facade (paper Figure 8).

Wires the substrates together exactly as the architecture diagram does:
the Index Creation Module (full-text stage, OntoScore stage, DIL stage)
feeds XOnto-DILs to the Query Module, which runs XRANK's DIL algorithm;
the Database Access Module resolves result Dewey IDs back to XML
fragments.

Typical use::

    engine = XOntoRankEngine(corpus, ontology, strategy=RELATIONSHIPS)
    results = engine.search('"bronchial structure" theophylline', k=5)
    fragment = engine.fragment(results[0])

DILs for query keywords are built on first use and held in a bounded
:class:`~repro.core.cache.DILCache` (keyed by ``(text, is_phrase)`` so
quoted single-word phrases and bare terms stay distinct); call
:meth:`build_index` to pre-build a whole vocabulary -- serially or, with
``workers > 1``, through the
:class:`~repro.core.index.parallel.ParallelIndexBuilder` -- and
optionally persist it through an
:class:`~repro.storage.interface.IndexStore`.
"""

from __future__ import annotations

from ...ir.tokenizer import Keyword, KeywordQuery
from ...ontology.api import TerminologyService
from ...ontology.model import Ontology
from ...storage import manifest as store_manifest
from ...storage.errors import (CorruptIndexError, IncompatibleIndexError,
                               StorageError)
from ...storage.interface import IndexStore
from ...xmldoc.model import Corpus, XMLNode
from ...xmldoc.serializer import serialize
from ..cache import DILCache
from ..config import (DEFAULT_CONFIG, GRAPH, ONTOLOGY_STRATEGIES,
                      RELATIONSHIPS, TAXONOMY, XRANK, XOntoRankConfig)
from ..index.builder import IndexBuilder
from ..index.dil import (DeweyInvertedList, XOntoDILIndex,
                         keyword_from_key)
from ..index.parallel import ParallelIndexBuilder
from ..index.vocabulary import corpus_vocabulary, experiment_vocabulary
from ..obs.tracer import NULL_TRACER, Tracer
from ..stats import (FALLBACK_REBUILDS, INTEGRITY_FAILURES,
                     INTEGRITY_VALIDATIONS, CacheStats, StatsRegistry)
from ..ontoscore.base import (NullOntoScore, OntoScoreComputer, SeedScorer)
from ..ontoscore.graph import GraphOntoScore, concept_seed_scorer
from ..ontoscore.relationships import (RelationshipsOntoScore,
                                       relationships_seed_scorer)
from ..ontoscore.taxonomy import TaxonomyOntoScore
from ..scoring import ElementIndex
from .dil_algorithm import DILQueryProcessor
from .naive import NaiveEvaluator
from .results import QueryResult


class XOntoRankEngine:
    """Ontology-aware keyword search over one CDA corpus."""

    def __init__(self, corpus: Corpus, ontology: Ontology | None = None,
                 strategy: str = RELATIONSHIPS,
                 config: XOntoRankConfig = DEFAULT_CONFIG,
                 element_index: ElementIndex | None = None,
                 seed_scorer: SeedScorer | None = None,
                 tracer: Tracer | None = None) -> None:
        if strategy != XRANK and ontology is None:
            raise ValueError(
                f"strategy {strategy!r} needs an ontology; "
                f"use strategy='xrank' for ontology-free search")
        self.corpus = corpus
        self.ontology = ontology
        self.strategy = strategy
        self.config = config
        self.terminology = (TerminologyService([ontology])
                            if ontology is not None else None)
        resolver = (self.terminology.resolve
                    if self.terminology is not None else None)
        self.element_index = element_index or ElementIndex(
            corpus, text_policy=config.text_policy,
            concept_resolver=resolver, k1=config.bm25_k1,
            b=config.bm25_b, ir_function=config.ir_function)
        self.ontoscore = self._make_ontoscore(seed_scorer)
        node_weights = None
        if config.use_elemrank:
            from ..elemrank import ElemRankComputer
            node_weights = ElemRankComputer(corpus).normalized_weights()
        self.stats = StatsRegistry()
        # One tracer threads every hot path; a tracer without its own
        # registry adopts the engine's, so each span also feeds the
        # timer histogram of the same name.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None and tracer.registry is None:
            tracer.registry = self.stats
        self.ontoscore.tracer = self.tracer
        self.builder = IndexBuilder(self.element_index, self.ontoscore,
                                    node_weights=node_weights,
                                    tracer=self.tracer)
        self.processor = DILQueryProcessor(decay=config.decay,
                                           tracer=self.tracer)
        self.dil_cache = DILCache(capacity=config.dil_cache_capacity,
                                  stats=self.stats)

    # ------------------------------------------------------------------
    def _make_ontoscore(self, seed_scorer: SeedScorer | None,
                        ) -> OntoScoreComputer:
        config = self.config
        if self.strategy == XRANK:
            return NullOntoScore()
        assert self.ontology is not None
        if self.strategy == GRAPH:
            seeds = seed_scorer or concept_seed_scorer(
                self.ontology, k1=config.bm25_k1, b=config.bm25_b,
                ir_function=config.ir_function)
            return GraphOntoScore(self.ontology, seeds, decay=config.decay,
                                  threshold=config.threshold,
                                  exact=config.exact_expansion)
        if self.strategy == TAXONOMY:
            seeds = seed_scorer or concept_seed_scorer(
                self.ontology, k1=config.bm25_k1, b=config.bm25_b,
                ir_function=config.ir_function)
            return TaxonomyOntoScore(self.ontology, seeds,
                                     threshold=config.threshold,
                                     exact=config.exact_expansion)
        if self.strategy == RELATIONSHIPS:
            seeds = seed_scorer or relationships_seed_scorer(
                self.ontology, k1=config.bm25_k1, b=config.bm25_b,
                ir_function=config.ir_function)
            return RelationshipsOntoScore(self.ontology, seeds,
                                          t=config.t,
                                          threshold=config.threshold,
                                          exact=config.exact_expansion)
        raise ValueError(f"unknown strategy {self.strategy!r}")

    # ------------------------------------------------------------------
    # Query phase
    # ------------------------------------------------------------------
    def search(self, query: str | KeywordQuery,
               k: int | None = None) -> list[QueryResult]:
        """Top-k ontology-aware keyword search."""
        with self.tracer.span("query.search",
                              strategy=self.strategy) as span:
            with self.tracer.span("query.parse"):
                parsed = (KeywordQuery.parse(query)
                          if isinstance(query, str) else query)
            dils = [self.dil_for(keyword) for keyword in parsed]
            results = self.processor.execute(dils,
                                             k=k or self.config.top_k)
            span.annotate(keywords=len(dils), results=len(results))
            return results

    def search_naive(self, query: str | KeywordQuery,
                     k: int | None = None) -> list[QueryResult]:
        """The same search through the naive reference evaluator."""
        parsed = (KeywordQuery.parse(query) if isinstance(query, str)
                  else query)
        evaluator = NaiveEvaluator(self.builder.node_scorer,
                                   decay=self.config.decay)
        return evaluator.execute(parsed, k=k or self.config.top_k)

    def dil_for(self, keyword: Keyword) -> DeweyInvertedList:
        """The keyword's XOnto-DIL, built on first use.

        Cached under ``(text, is_phrase)``: a phrase keyword and a term
        keyword with identical text are distinct cache entries.
        """
        with self.tracer.span("query.dil_fetch",
                              keyword=keyword.text) as span:
            dil = self.dil_cache.get_or_build(
                (keyword.text, keyword.is_phrase),
                lambda: self.builder.build_keyword(keyword)[0])
            span.annotate(postings=len(dil))
            return dil

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the DIL cache."""
        return self.dil_cache.stats()

    def explain(self, result: QueryResult, query: str | KeywordQuery):
        """Per-keyword evidence for a result (see
        :mod:`repro.core.query.explain`): which element contributed each
        keyword's score, through text or through which ontology path."""
        from .explain import explain_result
        return explain_result(self, result, query)

    # ------------------------------------------------------------------
    # Database Access Module
    # ------------------------------------------------------------------
    def fragment(self, result: QueryResult) -> XMLNode:
        """The XML fragment a result addresses (Figure 4)."""
        return result.fragment(self.corpus)

    def fragment_text(self, result: QueryResult,
                      indent: str | None = "  ") -> str:
        """Serialized form of the result fragment, for display."""
        return serialize(self.fragment(result), indent=indent,
                         xml_declaration=False)

    def snippet(self, result: QueryResult,
                query: str | KeywordQuery) -> XMLNode:
        """Compact result fragment: only the paths to the elements that
        actually contributed each keyword's score (the minimal
        connecting tree, in the spirit of Figure 4)."""
        from ...xmldoc.dewey import node_at
        from ...xmldoc.navigation import copy_subtree, prune_to_paths
        explanation = self.explain(result, query)
        document = self.corpus.get(result.doc_id)
        root = node_at(document, result.dewey)
        targets = [node_at(document, item.contributor)
                   for item in explanation.evidence
                   if item.propagated_score > 0.0]
        if not targets:
            return copy_subtree(root)
        return prune_to_paths(root, targets)

    def snippet_text(self, result: QueryResult,
                     query: str | KeywordQuery,
                     indent: str | None = "  ") -> str:
        """Serialized snippet, for display."""
        return serialize(self.snippet(result, query), indent=indent,
                         xml_declaration=False)

    # ------------------------------------------------------------------
    # Pre-processing phase
    # ------------------------------------------------------------------
    def build_index(self, vocabulary: set[str] | None = None,
                    radius: int = 2,
                    store: IndexStore | None = None,
                    workers: int | None = None,
                    parallel_mode: str = "auto") -> XOntoDILIndex:
        """Pre-build DILs for a whole vocabulary (Section V-B).

        Without an explicit vocabulary, ontology-aware strategies use
        the paper's experimental rule (document words plus concepts
        within ``radius`` relationships of referenced concepts); the
        XRANK baseline indexes the document words.

        With ``workers > 1`` the vocabulary is built on a worker pool
        (see :class:`~repro.core.index.parallel.ParallelIndexBuilder`);
        the result is guaranteed identical to the serial build, and
        with a ``store`` the shards are streamed into it as they
        complete.
        """
        if vocabulary is None:
            if self.strategy == XRANK or self.ontology is None:
                vocabulary = corpus_vocabulary(
                    self.corpus, self.config.text_policy)
            else:
                vocabulary = experiment_vocabulary(
                    self.corpus, self.ontology, radius=radius,
                    text_policy=self.config.text_policy)
        if store is not None:
            # Crash-safety protocol: flip the store to *incomplete*
            # before the first posting lands, so a build killed at any
            # later point leaves a store that load_index rejects; the
            # completion marker is re-set only by finalize_manifest
            # after everything else has been written.
            store_manifest.mark_build_started(store)
        build_stats = StatsRegistry()
        if workers is not None and workers > 1:
            parallel = ParallelIndexBuilder(
                self.builder, workers=workers, mode=parallel_mode,
                stats=build_stats, tracer=self.tracer)
            index = parallel.build(vocabulary,
                                   strategy_name=self.strategy,
                                   store=store)
        else:
            with self.tracer.span("index.serial_build",
                                  keywords=len(vocabulary)):
                index = self.builder.build(vocabulary,
                                           strategy_name=self.strategy)
            if store is not None:
                with self.tracer.span("storage.save_index"):
                    index.save(store)
        for key, dil in index.lists.items():
            keyword = keyword_from_key(key)
            self.dil_cache.put((keyword.text, keyword.is_phrase), dil)
        if store is not None:
            document_texts = []
            for document in self.corpus:
                text = serialize(document)
                store.put_document(document.doc_id, text)
                document_texts.append((document.doc_id, text))
            store.put_metadata("strategy", self.strategy)
            store.put_metadata("decay", str(self.config.decay))
            store.put_metadata("threshold", str(self.config.threshold))
            store.put_metadata("t", str(self.config.t))
            chunks = build_stats.value("parallel_build.chunks")
            mode = next(
                (name.rsplit(".", 1)[1]
                 for name in build_stats.snapshot()
                 if name.startswith("parallel_build.mode.")), "serial")
            store.put_metadata("build_workers",
                               str(workers if workers else 1))
            store.put_metadata("build_chunks", str(chunks or 1))
            store.put_metadata("build_mode", mode)
            store_manifest.finalize_manifest(
                store, self.strategy,
                store_manifest.corpus_fingerprint(document_texts))
        return index

    def load_index(self, store: IndexStore, *, validate: bool = True,
                   fallback: bool = True) -> int:
        """Warm the DIL cache from a persisted index; returns list
        count.

        With ``validate=True`` (the default) the store's manifest is
        checked first: an interrupted build raises
        :class:`CorruptIndexError`, and a store built with a different
        strategy, decay/threshold/``t``, or corpus raises
        :class:`IncompatibleIndexError` -- silently loading such an
        index would corrupt every ranking.

        With ``fallback=True`` (the default) a posting list that fails
        to load -- a transient fault the caller's retries did not clear,
        or a corrupt/undecodable list -- is rebuilt from the corpus
        instead of failing the load (counted under
        ``engine.fallback.rebuilds``); ``fallback=False`` re-raises,
        for fail-fast operation.
        """
        if validate:
            self._validate_store(store)
        with self.tracer.span("storage.load_index",
                              strategy=self.strategy) as span:
            loaded = self._load_lists(store, fallback)
            span.annotate(lists=loaded)
        return loaded

    def _load_lists(self, store: IndexStore, fallback: bool) -> int:
        loaded = 0
        for key in sorted(store.keywords(self.strategy)):
            keyword = keyword_from_key(key)
            failure: StorageError | None = None
            dil = None
            try:
                encoded = store.get_postings(self.strategy, key)
                dil = DeweyInvertedList.from_encoded(keyword, encoded)
            except ValueError as exc:
                failure = CorruptIndexError(
                    f"stored posting list for {key!r} is corrupt: {exc}")
                failure.__cause__ = exc
            except StorageError as exc:
                failure = exc
            if failure is not None:
                if not fallback:
                    raise failure
                self.stats.increment(FALLBACK_REBUILDS)
                dil = self.builder.build_keyword(keyword)[0]
            self.dil_cache.put((keyword.text, keyword.is_phrase), dil)
            loaded += 1
        return loaded

    def _validate_store(self, store: IndexStore) -> None:
        """Reject interrupted builds and parameter/corpus mismatches."""
        try:
            store_manifest.require_complete(store)
            stored_strategy = store.get_metadata("strategy")
            if stored_strategy != self.strategy:
                raise IncompatibleIndexError(
                    f"index store was built for strategy "
                    f"{stored_strategy!r}, engine runs "
                    f"{self.strategy!r}")
            parameters = (("decay", self.config.decay),
                          ("threshold", self.config.threshold),
                          ("t", self.config.t))
            for name, expected in parameters:
                raw = store.get_metadata(name)
                try:
                    stored = None if raw is None else float(raw)
                except ValueError:
                    stored = None
                if stored != expected:
                    raise IncompatibleIndexError(
                        f"index store was built with {name}={raw}, "
                        f"engine is configured with {name}={expected}")
            stored_fingerprint = store.get_metadata(
                store_manifest.CORPUS_FINGERPRINT_KEY)
            actual_fingerprint = store_manifest.corpus_fingerprint(
                (document.doc_id, serialize(document))
                for document in self.corpus)
            if stored_fingerprint != actual_fingerprint:
                raise IncompatibleIndexError(
                    "index store was built from a different corpus "
                    "(corpus fingerprint mismatch)")
        except StorageError:
            self.stats.increment(INTEGRITY_FAILURES)
            raise
        self.stats.increment(INTEGRITY_VALIDATIONS)


def build_engines(corpus: Corpus, ontology: Ontology,
                  strategies: tuple[str, ...] = (XRANK, GRAPH, TAXONOMY,
                                                 RELATIONSHIPS),
                  config: XOntoRankConfig = DEFAULT_CONFIG,
                  ) -> dict[str, XOntoRankEngine]:
    """One engine per strategy, sharing the expensive common stages.

    The element index (full-text stage) is strategy-independent; the
    concept seed scorer is shared between Graph and Taxonomy. This is
    how the experiments compare the four approaches on equal footing.
    """
    terminology = TerminologyService([ontology])
    element_index = ElementIndex(
        corpus, text_policy=config.text_policy,
        concept_resolver=terminology.resolve, k1=config.bm25_k1,
        b=config.bm25_b, ir_function=config.ir_function)
    concept_seeds: SeedScorer | None = None
    if GRAPH in strategies or TAXONOMY in strategies:
        concept_seeds = concept_seed_scorer(
            ontology, k1=config.bm25_k1, b=config.bm25_b,
            ir_function=config.ir_function)
    engines: dict[str, XOntoRankEngine] = {}
    for strategy in strategies:
        seeds = concept_seeds if strategy in (GRAPH, TAXONOMY) else None
        engines[strategy] = XOntoRankEngine(
            corpus, ontology if strategy in ONTOLOGY_STRATEGIES else None,
            strategy=strategy, config=config,
            element_index=element_index, seed_scorer=seeds)
    return engines
