"""Result explanations: *why* a subtree matched each keyword.

The paper's semantics make every match traceable: a result covers a
keyword either through a descendant's textual description (the IRS term
of Eq. 5) or through a descendant's ontological reference whose concept
received authority flow from a seed concept (the OntoScore term). This
module reconstructs that evidence -- the contributing element, the
containment distance the score decayed over, and the ontology path the
authority travelled -- for presentation and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ...ir.tokenizer import Keyword, KeywordQuery
from ...xmldoc.dewey import DeweyID
from .results import QueryResult

if TYPE_CHECKING:  # pragma: no cover
    from .engine import XOntoRankEngine

#: How a keyword was associated with the contributing element.
TEXTUAL = "textual"
ONTOLOGICAL = "ontological"


@dataclass(frozen=True)
class OntologyHop:
    """One node of the authority-flow path, seed first."""

    node: str
    label: str
    is_existential: bool = False


@dataclass(frozen=True)
class KeywordEvidence:
    """Why one keyword is covered by the result subtree."""

    keyword: str
    source: str  # TEXTUAL or ONTOLOGICAL
    contributor: DeweyID
    node_score: float
    propagated_score: float
    containment_distance: int
    concept_code: str = ""
    concept_label: str = ""
    ontology_path: tuple[OntologyHop, ...] = ()

    def describe(self) -> str:
        base = (f"'{self.keyword}' <- element {self.contributor.encode()}"
                f" (NS={self.node_score:.3f}, propagated="
                f"{self.propagated_score:.3f}, "
                f"{self.containment_distance} containment edge(s))")
        if self.source == TEXTUAL:
            return base + " via textual description"
        hops = " -> ".join(hop.label for hop in self.ontology_path)
        return (base + f" via ontology: concept {self.concept_label!r}"
                + (f", authority path [{hops}]" if hops else ""))


@dataclass(frozen=True)
class ResultExplanation:
    """Complete evidence for one query result."""

    result: QueryResult
    evidence: tuple[KeywordEvidence, ...] = field(default=())

    def describe(self) -> str:
        lines = [f"result {self.result.dewey.encode()} "
                 f"(score {self.result.score:.3f})"]
        lines.extend(f"  {item.describe()}" for item in self.evidence)
        return "\n".join(lines)


def explain_result(engine: "XOntoRankEngine", result: QueryResult,
                   query: str | KeywordQuery) -> ResultExplanation:
    """Reconstruct per-keyword evidence for ``result``."""
    parsed = (KeywordQuery.parse(query) if isinstance(query, str)
              else query)
    evidence = tuple(_keyword_evidence(engine, result, keyword)
                     for keyword in parsed)
    return ResultExplanation(result=result, evidence=evidence)


def _keyword_evidence(engine: "XOntoRankEngine", result: QueryResult,
                      keyword: Keyword) -> KeywordEvidence:
    node_scores = engine.builder.node_scorer.node_scores(keyword)
    decay = engine.config.decay
    best: tuple[float, DeweyID, float, int] | None = None
    for dewey, score in node_scores.items():
        if not result.dewey.contains(dewey):
            continue
        distance = result.dewey.distance_to_descendant(dewey)
        propagated = score * (decay ** distance)
        if best is None or propagated > best[0]:
            best = (propagated, dewey, score, distance)
    if best is None:
        return KeywordEvidence(keyword=str(keyword), source=TEXTUAL,
                               contributor=result.dewey, node_score=0.0,
                               propagated_score=0.0,
                               containment_distance=0)
    propagated, contributor, node_score, distance = best

    irs = engine.element_index.irs(keyword).get(contributor, 0.0)
    concept = engine.element_index.concept_of(contributor)
    onto_score = (engine.ontoscore.score(concept, keyword)
                  if concept is not None else 0.0)
    if onto_score > irs and concept is not None:
        path = engine.ontoscore.flow_path(concept, keyword) or []
        hops = tuple(_hop(engine, str(node)) for node in path)
        return KeywordEvidence(
            keyword=str(keyword), source=ONTOLOGICAL,
            contributor=contributor, node_score=node_score,
            propagated_score=propagated, containment_distance=distance,
            concept_code=str(concept),
            concept_label=_label(engine, str(concept)),
            ontology_path=hops)
    return KeywordEvidence(
        keyword=str(keyword), source=TEXTUAL, contributor=contributor,
        node_score=node_score, propagated_score=propagated,
        containment_distance=distance)


def _label(engine: "XOntoRankEngine", code: str) -> str:
    ontology = engine.ontology
    if ontology is not None and code in ontology:
        return ontology.concept(code).preferred_term
    return code


def _hop(engine: "XOntoRankEngine", code: str) -> OntologyHop:
    if code.startswith("exists:"):
        _, role, filler = code.split(":", 2)
        return OntologyHop(node=code,
                           label=f"∃{role}.{_label(engine, filler)}",
                           is_existential=True)
    return OntologyHop(node=code, label=_label(engine, code))
