"""Query results (paper Section III, Eq. 1 and 4).

A result is the most specific element whose subtree is associated with
every query keyword; its score is the sum over keywords of the best
decayed NodeScore in its subtree. Results carry their Dewey ID so the
Database Access Module can fetch the XML fragment (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...xmldoc.dewey import DeweyID
from ...xmldoc.model import Corpus, XMLNode
from ...xmldoc.navigation import extract_fragment


@dataclass(frozen=True)
class QueryResult:
    """One ranked answer: an element plus its scores."""

    dewey: DeweyID
    score: float
    keyword_scores: tuple[float, ...]

    @property
    def doc_id(self) -> int:
        return self.dewey.doc_id

    def fragment(self, corpus: Corpus) -> XMLNode:
        """Deep copy of the result subtree (the Figure 4 operation)."""
        return extract_fragment(corpus, self.dewey)

    def __repr__(self) -> str:
        return (f"QueryResult({self.dewey.encode()}, score="
                f"{self.score:.4f})")


@dataclass(frozen=True)
class SearchOutcome:
    """One search plus its serving-quality annotations.

    ``results`` alone is what :meth:`XOntoRankEngine.search` returns;
    the serving layer needs to know *how good* those results are:

    * ``partial`` -- the request deadline expired mid-evaluation and
      the bounded merge returned the best-so-far prefix instead of the
      exact top-k (surfaced as ``X-Partial: true``);
    * ``degraded_shards`` -- federated shards that contributed nothing
      because their circuit breaker was open or their store failed
      (surfaced as ``X-Degraded-Shards``). Always empty for an exact,
      fully-served answer.
    * ``narrative`` -- the
      :class:`~repro.core.query.narrative.NarrativeMapping` provenance
      when the query arrived as free clinical text and was mapped to
      keywords first; ``None`` on the curated-keyword path.
    """

    results: list[QueryResult]
    partial: bool = False
    degraded_shards: tuple[int, ...] = ()
    narrative: object = None

    @property
    def exact(self) -> bool:
        """True when nothing was skipped, shed, or cut short."""
        return not self.partial and not self.degraded_shards


def rank_results(results: list[QueryResult],
                 k: int | None = None) -> list[QueryResult]:
    """Sort by descending score, tie-broken by Dewey ID (deterministic);
    optionally truncate to the top k."""
    ordered = sorted(results, key=lambda result: (-result.score,
                                                  result.dewey))
    if k is not None:
        if k < 1:
            raise ValueError("k must be positive")
        ordered = ordered[:k]
    return ordered
