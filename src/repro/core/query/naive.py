"""Naive reference evaluator: Eq. 1-5 computed directly on the trees.

Recomputes query results from first principles -- NodeScores per keyword,
bottom-up propagation (Eq. 2-3), the most-specific-subtree result
semantics (Eq. 1) and sum scoring (Eq. 4) -- without Dewey inverted
lists or the stack merge. It exists to validate
:class:`~repro.core.query.dil_algorithm.DILQueryProcessor`: a property
test asserts the two produce identical ranked lists on arbitrary
corpora, which is the strongest correctness statement we can make about
the index+merge machinery.
"""

from __future__ import annotations

from ...ir.tokenizer import KeywordQuery
from ...xmldoc.dewey import DeweyID
from ..scoring import NodeScorer, propagate_scores
from .results import QueryResult, rank_results


class NaiveEvaluator:
    """Direct tree-walking evaluation of keyword queries."""

    def __init__(self, node_scorer: NodeScorer, decay: float = 0.5) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must lie in (0, 1]")
        self._node_scorer = node_scorer
        self._decay = decay

    # ------------------------------------------------------------------
    def execute(self, query: KeywordQuery,
                k: int | None = None) -> list[QueryResult]:
        propagated = [propagate_scores(
            self._node_scorer.node_scores(keyword), self._decay)
            for keyword in query]
        if any(not scores for scores in propagated):
            return []

        # Candidates: nodes whose subtree covers all keywords.
        candidates = set(propagated[0])
        for scores in propagated[1:]:
            candidates &= set(scores)
        if not candidates:
            return []

        results = [QueryResult(
            dewey=dewey,
            score=sum(scores[dewey] for scores in propagated),
            keyword_scores=tuple(scores[dewey] for scores in propagated))
            for dewey in self._most_specific(candidates)]
        return rank_results(results, k)

    # ------------------------------------------------------------------
    @staticmethod
    def _most_specific(candidates: set[DeweyID]) -> list[DeweyID]:
        """Eq. 1's exclusion: drop candidates with candidate descendants.

        In Dewey order a node's descendants immediately follow it, so a
        candidate has a candidate descendant iff its successor in sorted
        order is one.
        """
        ordered = sorted(candidates)
        keep: list[DeweyID] = []
        for current, following in zip(ordered, ordered[1:]):
            if not current.is_ancestor_of(following):
                keep.append(current)
        if ordered:
            keep.append(ordered[-1])
        return keep
