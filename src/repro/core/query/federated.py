"""Shard-parallel federated search with the engine's facade.

A :class:`FederatedEngine` partitions the corpus with a
:class:`~repro.xmldoc.sharding.ShardedCorpus`, backs every shard with
its own :class:`~repro.core.query.engine.XOntoRankEngine` (and, when
persisted, its own index store + manifest), fans queries out across the
shards -- sequentially or on a thread pool -- and k-way-merges the
per-shard top-k into a global top-k.

**The identity contract.** Federated results are byte-identical to a
single engine over the same corpus, for every shard count and policy.
Two facts make this exact rather than approximate:

* NodeScores are corpus-global (BM25 statistics come from the shared
  :class:`~repro.core.scoring.ElementIndex`; OntoScores from the
  ontology alone), so every shard scores with the *whole-corpus*
  statistics: each shard wraps one shared
  :class:`~repro.core.index.builder.IndexBuilder` in a
  :class:`ShardScopedBuilder` that restricts posting lists to the
  shard's documents instead of re-deriving statistics per shard.
* XRANK's stack merge never crosses a document boundary (Dewey IDs
  root at the document), so a shard's results are exactly the global
  results whose documents live in that shard, and the global ranking
  order ``(-score, dewey)`` is a total order (Dewey IDs are unique) --
  a stable k-way merge of per-shard rankings reproduces it.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ...ir.tokenizer import Keyword, KeywordQuery
from ...ontology.model import Ontology
from ...storage.errors import StorageError
from ...storage.interface import IndexStore
from ...xmldoc.model import Corpus, XMLNode
from ...xmldoc.serializer import serialize
from ...xmldoc.sharding import HASH, ShardedCorpus
from ..config import (DEFAULT_CONFIG, RELATIONSHIPS, XRANK,
                      XOntoRankConfig)
from ..deadline import Deadline, DeadlineExceeded
from ..index.builder import IndexBuilder
from ..index.dil import (DeweyInvertedList, KeywordBuildStats,
                         XOntoDILIndex, keyword_from_key)
from ..obs.tracer import NULL_TRACER, Tracer
from ..ontoscore.factory import make_ontoscore
from ..scoring import ElementIndex
from ..stats import CacheStats, StatsRegistry
from .engine import XOntoRankEngine
from .results import QueryResult, SearchOutcome

Shard = TypeVar("Shard")
Value = TypeVar("Value")


def shard_store_path(path: str, shard: int, shard_count: int) -> str:
    """Canonical per-shard store path derived from the logical path."""
    return f"{path}.shard{shard:02d}-of-{shard_count:02d}"


def merge_ranked(result_lists: Iterable[Sequence[QueryResult]],
                 k: int | None = None) -> list[QueryResult]:
    """Stable k-way merge of ranked result lists into one ranking.

    Inputs must each be sorted by ``(-score, dewey)`` (what
    :func:`~repro.core.query.results.rank_results` produces); the merge
    preserves that order globally and optionally truncates to ``k``.
    Dewey IDs are unique across shards, so the order is total and the
    output is independent of the shard decomposition.
    """
    merged = heapq.merge(*result_lists,
                         key=lambda result: (-result.score,
                                             result.dewey))
    if k is None:
        return list(merged)
    if k < 1:
        raise ValueError("k must be positive")
    return [result for result, _ in zip(merged, range(k))]


class ShardScopedBuilder:
    """An :class:`IndexBuilder` view restricted to one shard's documents.

    Delegates the expensive work (OntoScore expansion, NodeScores over
    the shared corpus-global element index) to the wrapped builder --
    whose per-keyword caches are therefore shared across shards -- and
    filters the resulting posting lists down to the shard's doc IDs.
    """

    def __init__(self, builder: IndexBuilder,
                 doc_ids: frozenset[int]) -> None:
        self._builder = builder
        self._doc_ids = doc_ids

    @property
    def doc_ids(self) -> frozenset[int]:
        return self._doc_ids

    @property
    def inner(self) -> IndexBuilder:
        """The wrapped corpus-global builder. The incremental segment
        lifecycle unwraps through this to apply its own per-operation
        document scoping."""
        return self._builder

    def extend_scope(self, doc_ids: Iterable[int]) -> None:
        """Grow the scope when documents join this shard (append)."""
        self._doc_ids = self._doc_ids | frozenset(doc_ids)

    def shrink_scope(self, doc_ids: Iterable[int]) -> None:
        """Drop removed documents, so direct builds stay live-only."""
        self._doc_ids = self._doc_ids - frozenset(doc_ids)

    # The IndexBuilder surface the manager and engine rely on.
    @property
    def element_index(self) -> ElementIndex:
        return self._builder.element_index

    @property
    def ontoscore(self):
        return self._builder.ontoscore

    @property
    def node_scorer(self):
        return self._builder.node_scorer

    def build_keyword(self, keyword: Keyword,
                      ) -> tuple[DeweyInvertedList, KeywordBuildStats]:
        dil, stats = self._builder.build_keyword(keyword)
        scoped = DeweyInvertedList(
            keyword, [posting for posting in dil
                      if posting.dewey.doc_id in self._doc_ids])
        return scoped, KeywordBuildStats(
            keyword=stats.keyword,
            creation_time_ms=stats.creation_time_ms,
            posting_count=len(scoped),
            size_bytes=scoped.size_bytes(),
            ontology_entries=stats.ontology_entries)

    def build(self, vocabulary: Iterable[str],
              strategy_name: str | None = None) -> XOntoDILIndex:
        index = XOntoDILIndex(
            strategy=strategy_name or self.ontoscore.name)
        for word in sorted(set(vocabulary)):
            keyword = Keyword.from_text(word)
            dil, stats = self.build_keyword(keyword)
            index.add(dil, stats)
        return index


class FederatedEngine:
    """The :class:`XOntoRankEngine` facade over N corpus shards."""

    def __init__(self, corpus: Corpus, ontology: Ontology | None = None,
                 strategy: str = RELATIONSHIPS,
                 config: XOntoRankConfig = DEFAULT_CONFIG,
                 shards: int = 2, policy: str = HASH,
                 shard_workers: int | None = None,
                 tracer: Tracer | None = None,
                 stats: StatsRegistry | None = None,
                 element_index: ElementIndex | None = None) -> None:
        if strategy != XRANK and ontology is None:
            raise ValueError(
                f"strategy {strategy!r} needs an ontology; "
                f"use strategy='xrank' for ontology-free search")
        if shard_workers is not None and shard_workers < 1:
            raise ValueError("shard_workers must be None or >= 1")
        self.corpus = corpus
        self.ontology = ontology
        self.strategy = strategy
        self.config = config
        self.shard_workers = shard_workers
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None and tracer.registry is None:
            tracer.registry = self.stats
        self.sharded = ShardedCorpus(corpus, shards, policy=policy)

        # The corpus-global scoring substrate, built exactly once and
        # shared by every shard -- the reason federated scores equal
        # single-engine scores (BM25 statistics span the whole corpus).
        # An injected ``element_index`` (covering at least this corpus)
        # pins the statistics epoch externally, e.g. for differential
        # tests comparing incremental growth against full rebuilds.
        resolver = self._resolver()
        if element_index is None:
            element_index = ElementIndex(
                corpus, text_policy=config.text_policy,
                concept_resolver=resolver, k1=config.bm25_k1,
                b=config.bm25_b, ir_function=config.ir_function)
        ontoscore = make_ontoscore(strategy, ontology, config)
        node_weights = None
        if config.use_elemrank:
            from ..elemrank import ElemRankComputer
            node_weights = ElemRankComputer(corpus).normalized_weights()
        self.builder = IndexBuilder(element_index, ontoscore,
                                    node_weights=node_weights,
                                    tracer=self.tracer)
        self.element_index = element_index
        self.ontoscore = ontoscore

        self.shard_engines: list[XOntoRankEngine] = []
        for shard, shard_corpus in enumerate(self.sharded):
            scoped = ShardScopedBuilder(
                self.builder, self.sharded.shard_doc_ids(shard))
            self.shard_engines.append(XOntoRankEngine(
                shard_corpus, ontology, strategy=strategy,
                config=config, tracer=tracer, stats=self.stats,
                builder=scoped))
        self._narrative_mapper = None

    def _resolver(self):
        self.terminology = None
        if self.ontology is None:
            return None
        from ...ontology.api import TerminologyService
        self.terminology = TerminologyService([self.ontology])
        return self.terminology.resolve

    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return self.sharded.shard_count

    def enable_narrative(self, mapper=None):
        """Treat string queries as clinical narrative: map them to
        concept keywords *once*, before the shard fan-out (each shard
        then receives the same pre-parsed :class:`KeywordQuery`, so the
        federated identity contract applies to the mapped query).
        Returns the active mapper; raises ``ValueError`` without an
        ontology to map against.
        """
        if mapper is None:
            if self.terminology is None:
                raise ValueError(
                    "narrative mapping needs an ontology (or an "
                    "explicit mapper built on a TerminologyService)")
            from .narrative import NarrativeQueryMapper
            mapper = NarrativeQueryMapper(self.terminology,
                                          tracer=self.tracer,
                                          stats=self.stats)
        self._narrative_mapper = mapper
        return mapper

    def disable_narrative(self) -> None:
        """String queries parse as curated keywords again."""
        self._narrative_mapper = None

    def _fan_out(self, task: Callable[[XOntoRankEngine, int], Value],
                 ) -> list[Value]:
        """Run ``task(engine, shard)`` per shard; results in shard
        order regardless of execution interleaving."""
        engines = self.shard_engines
        if self.shard_workers is None or self.shard_workers == 1 \
                or len(engines) == 1:
            return [task(engine, shard)
                    for shard, engine in enumerate(engines)]
        workers = min(self.shard_workers, len(engines))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(task, engine, shard)
                       for shard, engine in enumerate(engines)]
            return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Query phase
    # ------------------------------------------------------------------
    def search(self, query: str | KeywordQuery, k: int | None = None,
               *, deadline: Deadline | None = None,
               ) -> list[QueryResult]:
        """Global top-k: per-shard top-k, k-way merged.

        Any global top-k result is in its shard's top-k, so merging
        the per-shard prefixes loses nothing. Each shard runs the
        bounded (document-skipping) merge locally; the global
        truncation of the k-way merge is traced as
        ``query.topk_pruned``. Shard failures propagate -- for the
        degraded mode the serving layer uses, see
        :meth:`search_outcome`.
        """
        return self.search_outcome(query, k, deadline=deadline).results

    #: Per-shard sentinel outcomes of the resilient fan-out.
    _SHARD_SKIPPED = "skipped"
    _SHARD_FAILED = "failed"
    _SHARD_TIMED_OUT = "timed_out"

    def search_outcome(self, query: str | KeywordQuery,
                       k: int | None = None, *,
                       deadline: Deadline | None = None,
                       skip_shards: Iterable[int] = (),
                       on_shard_error: "Callable[[int, StorageError], bool] | None" = None,
                       ) -> SearchOutcome:
        """:meth:`search` with per-shard degradation for the server.

        ``skip_shards`` are not queried at all (their circuit breaker
        is open); a shard raising a
        :class:`~repro.storage.errors.StorageError` is offered to
        ``on_shard_error(shard, error)`` -- returning True absorbs the
        failure and serves without that shard, returning False (or
        passing no handler) re-raises it. Every shard that contributed
        nothing lands in the outcome's ``degraded_shards``; a degraded
        answer is exact *over the shards that answered* but may miss
        results whose documents live in a degraded shard -- the
        identity contract holds only for exact outcomes.

        A shard whose deadline expires before it produced anything is
        treated as degraded-by-timeout with ``partial=True``; if every
        shard times out,
        :class:`~repro.core.deadline.DeadlineExceeded` propagates
        (there is nothing to serve).
        """
        k = k if k is not None else self.config.top_k
        skip = frozenset(skip_shards)
        with self.tracer.span("query.federated_search",
                              strategy=self.strategy,
                              shards=self.shard_count) as span:
            narrative = None
            if self._narrative_mapper is not None \
                    and isinstance(query, str):
                narrative = self._narrative_mapper.map(query)
                query = narrative.query
            parsed = (KeywordQuery.parse(query)
                      if isinstance(query, str) else query)

            def shard_search(engine: XOntoRankEngine, shard: int):
                if shard in skip:
                    return self._SHARD_SKIPPED
                try:
                    return engine.search_outcome(parsed, k=k,
                                                 deadline=deadline)
                except DeadlineExceeded:
                    return self._SHARD_TIMED_OUT
                except StorageError as error:
                    if on_shard_error is not None \
                            and on_shard_error(shard, error):
                        return self._SHARD_FAILED
                    raise

            per_shard = self._fan_out(shard_search)
            outcomes = [outcome for outcome in per_shard
                        if isinstance(outcome, SearchOutcome)]
            degraded = tuple(
                shard for shard, outcome in enumerate(per_shard)
                if not isinstance(outcome, SearchOutcome))
            timed_out = sum(
                1 for outcome in per_shard
                if outcome == self._SHARD_TIMED_OUT)
            if timed_out and not outcomes:
                raise DeadlineExceeded(
                    f"deadline exceeded in all {timed_out} live "
                    f"shard(s) before any result was produced")
            partial = (timed_out > 0
                       or any(outcome.partial for outcome in outcomes))
            with self.tracer.span("query.topk_pruned",
                                  shards=self.shard_count) as prune:
                merged = merge_ranked(
                    [outcome.results for outcome in outcomes], k)
                prune.annotate(
                    candidates=sum(len(outcome.results)
                                   for outcome in outcomes),
                    results=len(merged))
            span.annotate(results=len(merged))
            if degraded:
                span.annotate(degraded_shards=len(degraded))
            return SearchOutcome(results=merged, partial=partial,
                                 degraded_shards=degraded,
                                 narrative=narrative)

    def dil_for(self, keyword: Keyword) -> DeweyInvertedList:
        """The *global* DIL of a keyword: shard DILs re-merged (mostly
        useful to compare against a single engine)."""
        postings = [posting
                    for engine in self.shard_engines
                    for posting in engine.dil_for(keyword)]
        return DeweyInvertedList(keyword, postings)

    def explain(self, result: QueryResult, query: str | KeywordQuery):
        """Per-keyword evidence, answered by the shard that owns the
        result's document (scores are identical corpus-wide)."""
        shard = self.sharded.shard_of(result.doc_id)
        return self.shard_engines[shard].explain(result, query)

    def cache_stats(self) -> CacheStats:
        """DIL-cache counters aggregated across every shard."""
        parts = [engine.cache_stats() for engine in self.shard_engines]
        return CacheStats(
            hits=sum(part.hits for part in parts),
            misses=sum(part.misses for part in parts),
            evictions=sum(part.evictions for part in parts),
            size=sum(part.size for part in parts),
            capacity=self.config.dil_cache_capacity)

    # ------------------------------------------------------------------
    # Database Access Module (global corpus -- no shard hop needed)
    # ------------------------------------------------------------------
    def fragment(self, result: QueryResult) -> XMLNode:
        """The XML fragment a result addresses (Figure 4)."""
        return result.fragment(self.corpus)

    def fragment_text(self, result: QueryResult,
                      indent: str | None = "  ") -> str:
        """Serialized form of the result fragment, for display."""
        return serialize(self.fragment(result), indent=indent,
                         xml_declaration=False)

    # ------------------------------------------------------------------
    # Pre-processing phase
    # ------------------------------------------------------------------
    def build_index(self, vocabulary: set[str] | None = None,
                    radius: int = 2,
                    stores: Sequence[IndexStore] | None = None,
                    workers: int | None = None,
                    parallel_mode: str = "auto") -> XOntoDILIndex:
        """Build every shard's index (optionally into per-shard stores)
        and return the re-combined global index.

        The vocabulary is computed once from the *global* corpus (the
        paper's experimental rule), so every shard indexes the same
        keyword set; the union of the shard-scoped posting lists equals
        the single-engine index.
        """
        if stores is not None and len(stores) != self.shard_count:
            raise ValueError(
                f"need one store per shard: got {len(stores)} stores "
                f"for {self.shard_count} shards")
        if vocabulary is None:
            if self.strategy == XRANK or self.ontology is None:
                from ..index.vocabulary import corpus_vocabulary
                vocabulary = corpus_vocabulary(
                    self.corpus, self.config.text_policy)
            else:
                from ..index.vocabulary import experiment_vocabulary
                vocabulary = experiment_vocabulary(
                    self.corpus, self.ontology, radius=radius,
                    text_policy=self.config.text_policy)
        with self.tracer.span("index.federated_build",
                              shards=self.shard_count,
                              keywords=len(vocabulary)):
            shard_indices = self._fan_out(
                lambda engine, shard: engine.build_index(
                    vocabulary=vocabulary,
                    store=stores[shard] if stores is not None else None,
                    workers=workers, parallel_mode=parallel_mode))
        return self._combine(shard_indices)

    def _combine(self,
                 shard_indices: Sequence[XOntoDILIndex],
                 ) -> XOntoDILIndex:
        """Union of shard indices: the single-engine index, re-formed."""
        combined = XOntoDILIndex(strategy=self.strategy)
        keys = sorted({key for index in shard_indices
                       for key in index.lists})
        for key in keys:
            keyword = keyword_from_key(key)
            postings = [posting for index in shard_indices
                        if key in index.lists
                        for posting in index.lists[key]]
            stats = [index.stats[key] for index in shard_indices
                     if key in index.stats]
            merged = DeweyInvertedList(keyword, postings)
            combined.add(merged, KeywordBuildStats(
                keyword=keyword.text,
                creation_time_ms=max((stat.creation_time_ms
                                      for stat in stats), default=0.0),
                posting_count=len(merged),
                size_bytes=merged.size_bytes(),
                ontology_entries=max((stat.ontology_entries
                                      for stat in stats), default=0),
            ) if stats else None)
        return combined

    def attach_read_stores(self, stores: Sequence[IndexStore], *,
                           validate: bool = True,
                           on_error=None) -> None:
        """Put every shard engine in read-through mode against its own
        store (see :meth:`IndexManager.attach_read_store
        <repro.core.index.manager.IndexManager.attach_read_store>`).
        Strict per shard by default: a shard store failure surfaces as
        that shard's :class:`~repro.storage.errors.StorageError`, which
        is what :meth:`search_outcome`'s ``on_shard_error`` degradation
        (and the serving layer's circuit breaker) keys off."""
        self._check_shard_stores(stores)
        for shard, engine in enumerate(self.shard_engines):
            engine.attach_read_store(stores[shard], validate=validate,
                                     on_error=on_error)

    def load_index(self, stores: Sequence[IndexStore], *,
                   validate: bool = True, fallback: bool = True) -> int:
        """Warm every shard's cache from its store; returns the total
        list count. Validation and degraded rebuilds apply per shard
        (one damaged shard store does not poison the others)."""
        if len(stores) != self.shard_count:
            raise ValueError(
                f"need one store per shard: got {len(stores)} stores "
                f"for {self.shard_count} shards")
        loaded = self._fan_out(
            lambda engine, shard: engine.load_index(
                stores[shard], validate=validate, fallback=fallback))
        return sum(loaded)

    # ------------------------------------------------------------------
    # Incremental maintenance (LSM segments, fanned out per shard)
    # ------------------------------------------------------------------
    def _check_shard_stores(self,
                            stores: Sequence[IndexStore]) -> None:
        if len(stores) != self.shard_count:
            raise ValueError(
                f"need one store per shard: got {len(stores)} stores "
                f"for {self.shard_count} shards")

    def add_documents(self, documents, stores: Sequence[IndexStore],
                      radius: int = 2) -> None:
        """Route new documents to their hash shards and append each
        group as one segment of the owning shard's store.

        Requires the ``hash`` policy (round-robin assignment depends on
        every other document's position). Each shard store is its own
        commit domain: a failure mid-way leaves the already-appended
        shards committed and the rest untouched -- every shard store is
        individually consistent either way.
        """
        self._check_shard_stores(stores)
        documents = list(documents)
        groups: dict[int, list] = {}
        fresh: set[int] = set()
        for document in documents:
            try:
                shard = self.sharded.shard_of(document.doc_id)
            except KeyError:
                shard = self.sharded.route(document.doc_id)
                fresh.add(document.doc_id)
            groups.setdefault(shard, []).append(document)
        for shard in sorted(groups):
            # The shard engine's corpus IS the shard sub-corpus; its
            # lifecycle adds the documents there, so only the global
            # corpus and the assignment map need updating here.
            self.shard_engines[shard].add_documents(
                groups[shard], stores[shard], radius=radius)
            for document in groups[shard]:
                if document.doc_id in fresh:
                    self.sharded.record(document.doc_id, shard)
                if document.doc_id not in self.corpus:
                    self.corpus.add(document)

    def remove_documents(self, doc_ids,
                         stores: Sequence[IndexStore]) -> None:
        """Tombstone documents in the shard stores that own them."""
        self._check_shard_stores(stores)
        groups: dict[int, list[int]] = {}
        for doc_id in doc_ids:
            groups.setdefault(self.sharded.shard_of(doc_id),
                              []).append(doc_id)
        for shard in sorted(groups):
            self.shard_engines[shard].remove_documents(
                groups[shard], stores[shard])
            for doc_id in groups[shard]:
                self.sharded.forget(doc_id)
                if doc_id in self.corpus:
                    self.corpus.remove(doc_id)

    def compact(self, stores: Sequence[IndexStore]) -> None:
        """Compact every shard store (logical indexes unchanged)."""
        self._check_shard_stores(stores)
        for shard, engine in enumerate(self.shard_engines):
            engine.compact(stores[shard])
