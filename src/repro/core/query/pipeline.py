"""The Query Module as an explicit stage chain (paper Figure 8).

The engine's ``search`` used to be one inline body; this module makes
each step a named, independently testable stage object so future work
(query rewriting, result caching, federated scatter/gather) can insert
stages without touching the engine:

``parse``
    Keyword-query parsing (:class:`ParseStage`).
``dil_fetch``
    One XOnto-DIL per keyword, through the
    :class:`~repro.core.index.manager.IndexManager`'s cache
    (:class:`DILFetchStage`).
``merge``
    XRANK's stack merge over the fetched lists
    (:class:`MergeStage`, unranked Eq. 1 results).
``rank``
    Deterministic ``(-score, dewey)`` ordering and top-k truncation
    (:class:`RankStage`).

Stages communicate through a :class:`QueryContext` that accumulates the
intermediate artifacts; each stage reads what earlier stages wrote and
is traced by the component it wraps (``query.parse``,
``query.dil_fetch`` per keyword, ``query.dil_merge``, ``query.rank``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ...ir.tokenizer import Keyword, KeywordQuery
from ..deadline import Deadline
from ..index.dil import DeweyInvertedList
from ..obs.tracer import NULL_TRACER
from .dil_algorithm import DILQueryProcessor
from .results import QueryResult, rank_results


@dataclass
class QueryContext:
    """Mutable state threaded through the stage chain."""

    query: str | KeywordQuery
    k: int | None = None
    parsed: KeywordQuery | None = None
    dils: list[DeweyInvertedList] = field(default_factory=list)
    unranked: list[QueryResult] = field(default_factory=list)
    results: list[QueryResult] = field(default_factory=list)
    #: The request's time budget (None = unbounded, the historical
    #: behavior). Stages that can do real work check it: the fetch
    #: stage between keywords (a fetch may rebuild a posting list from
    #: the corpus), the merge stage between per-document merges.
    deadline: Deadline | None = None
    #: Set by the merge stage when the deadline expired mid-merge and
    #: ``results`` holds a best-so-far prefix instead of the exact
    #: top-k. Expiry *before* any result exists raises
    #: :class:`~repro.core.deadline.DeadlineExceeded` instead.
    partial: bool = False
    #: Free-form scratch space for inserted stages (rewriters, result
    #: caches) that need to hand data to a later stage of their own.
    extras: dict = field(default_factory=dict)

    def check_deadline(self, where: str = "") -> None:
        """Raise :class:`~repro.core.deadline.DeadlineExceeded` once
        the request's budget is spent (no-op without a deadline)."""
        if self.deadline is not None:
            self.deadline.check(where)


class QueryStage:
    """One named step of the pipeline. Subclasses set :attr:`name` and
    implement :meth:`run`; stages must be reentrant (one pipeline can
    serve many queries)."""

    name = "stage"

    def run(self, context: QueryContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class ParseStage(QueryStage):
    """``query`` → ``parsed`` (string queries only; pre-parsed
    :class:`KeywordQuery` objects pass through)."""

    name = "parse"

    def __init__(self, tracer=None) -> None:
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def run(self, context: QueryContext) -> None:
        with self._tracer.span("query.parse"):
            context.parsed = (KeywordQuery.parse(context.query)
                              if isinstance(context.query, str)
                              else context.query)


class DILFetchStage(QueryStage):
    """``parsed`` → ``dils`` via a keyword→DIL source (usually
    :meth:`IndexManager.dil_for <repro.core.index.manager.IndexManager.dil_for>`,
    which traces each fetch as ``query.dil_fetch``)."""

    name = "dil_fetch"

    def __init__(self, dil_source: Callable[[Keyword],
                                            DeweyInvertedList]) -> None:
        self._source = dil_source

    def run(self, context: QueryContext) -> None:
        assert context.parsed is not None, "parse stage must run first"
        dils = []
        for keyword in context.parsed:
            # A fetch can rebuild a whole posting list (cache miss with
            # no store, or degraded mode); don't start one the request
            # can no longer use.
            context.check_deadline("dil_fetch")
            dils.append(self._source(keyword))
        context.dils = dils


class MergeStage(QueryStage):
    """``dils`` → ``unranked`` through the XRANK stack merge (traced as
    ``query.dil_merge`` by the processor).

    With a bounded query (``context.k`` set) the merge runs in the
    processor's top-k mode: ``unranked`` then already holds the ranked
    top-k (the bounded heap drained in final order) and
    ``extras["merge_bounded"]`` tells the rank stage to pass it
    through instead of re-sorting."""

    name = "merge"

    def __init__(self, processor: DILQueryProcessor) -> None:
        self.processor = processor

    def run(self, context: QueryContext) -> None:
        context.check_deadline("dil_merge")
        if context.k is not None:
            context.unranked, statistics = \
                self.processor.collect_topk_stats(
                    context.dils, context.k, context.deadline)
            context.partial = statistics.deadline_hit
            context.extras["merge_bounded"] = True
        else:
            # Full enumeration has no partial mode: the stack merge's
            # Eq. 1 emission order is document order, not rank order,
            # so a prefix of it is not a top-k prefix. The entry check
            # above is the full mode's only deadline gate.
            context.unranked = self.processor.collect(context.dils)


class RankStage(QueryStage):
    """``unranked`` → ``results``: deterministic ordering + top-k.

    When the merge stage already bounded the evaluation, this stage is
    a heap-drain pass-through -- the candidates arrive ranked and
    truncated, so sorting them again would only re-verify the heap's
    invariant."""

    name = "rank"

    def __init__(self, tracer=None) -> None:
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def run(self, context: QueryContext) -> None:
        with self._tracer.span("query.rank",
                               candidates=len(context.unranked)):
            if context.extras.get("merge_bounded"):
                context.results = list(context.unranked)
            else:
                context.results = rank_results(context.unranked,
                                               context.k)


class QueryPipeline:
    """An ordered chain of named stages executing one keyword query."""

    def __init__(self, stages: Sequence[QueryStage]) -> None:
        self._stages = list(stages)
        self._check_unique_names()

    @classmethod
    def default(cls, dil_source: Callable[[Keyword], DeweyInvertedList],
                processor: DILQueryProcessor,
                tracer=None) -> "QueryPipeline":
        """The paper's parse → dil_fetch → merge → rank chain."""
        return cls([ParseStage(tracer), DILFetchStage(dil_source),
                    MergeStage(processor), RankStage(tracer)])

    # ------------------------------------------------------------------
    def run(self, query: str | KeywordQuery, k: int | None = None,
            deadline: Deadline | None = None) -> QueryContext:
        """Execute every stage in order; returns the filled context.

        A ``deadline`` bounds the whole chain: expiry before the merge
        produced anything raises
        :class:`~repro.core.deadline.DeadlineExceeded`; expiry
        mid-merge returns the filled context with ``partial=True``.
        """
        context = QueryContext(query=query, k=k, deadline=deadline)
        for stage in self._stages:
            stage.run(context)
        return context

    # ------------------------------------------------------------------
    # Introspection and surgery (how future PRs insert stages)
    # ------------------------------------------------------------------
    @property
    def stages(self) -> tuple[QueryStage, ...]:
        return tuple(self._stages)

    def stage_names(self) -> list[str]:
        return [stage.name for stage in self._stages]

    def stage(self, name: str) -> QueryStage:
        for stage in self._stages:
            if stage.name == name:
                return stage
        raise KeyError(f"pipeline has no stage named {name!r}")

    def _index_of(self, name: str) -> int:
        for index, stage in enumerate(self._stages):
            if stage.name == name:
                return index
        raise KeyError(f"pipeline has no stage named {name!r}")

    def insert_before(self, name: str, stage: QueryStage) -> None:
        self._splice(self._index_of(name), stage, replacing=False)

    def insert_after(self, name: str, stage: QueryStage) -> None:
        self._splice(self._index_of(name) + 1, stage, replacing=False)

    def replace(self, name: str, stage: QueryStage) -> None:
        self._splice(self._index_of(name), stage, replacing=True)

    def remove(self, name: str) -> QueryStage:
        return self._stages.pop(self._index_of(name))

    def _splice(self, index: int, stage: QueryStage,
                replacing: bool) -> None:
        """Atomic mutation: a rejected stage leaves the chain as-is."""
        others = [existing.name
                  for position, existing in enumerate(self._stages)
                  if not (replacing and position == index)]
        if stage.name in others:
            raise ValueError(
                f"duplicate stage name {stage.name!r}")
        if replacing:
            self._stages[index] = stage
        else:
            self._stages.insert(index, stage)

    def _check_unique_names(self) -> None:
        names = self.stage_names()
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate stage names: {sorted(names)}")
