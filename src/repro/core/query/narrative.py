"""Clinical-narrative query understanding (ROADMAP's last open item).

The paper assumes curated keyword queries (``"cardiac arrest"
amiodarone``, Section VII), but real EMR users paste narrative text
("super-morbidly obese, fundic gland polyps"). This module front-ends
:class:`~repro.core.query.pipeline.QueryPipeline` with AutoHPO's
two-stage strategy:

1. **Extract** candidate clinical phrases from the free text: the
   longest-match scan of :meth:`TerminologyService.match_in_text` finds
   every in-vocabulary span, and the leftover token runs (split on
   stopwords) become out-of-vocabulary candidates.
2. **Map** each phrase to ontology concepts through the terminology
   facade, with a fallback ladder recorded per phrase: *exact*
   preferred-term match, then *synonym*, then *parent-term* — the
   out-of-vocabulary phrase's per-token concept candidates are
   generalized to their nearest common is-a ancestor (min-hop depths
   from the persisted :class:`~repro.ontology.indexes.HierarchyIndex`,
   or a BFS over the graph fallback). A phrase no concept can be found
   for degrades to its plain content tokens — never silently dropped.
3. **Weight** mapped concepts by specificity (hierarchy depth plus
   inverse descendant count, so rare/specific concepts outrank broad
   axes) and emit a :class:`~repro.ir.tokenizer.KeywordQuery` the
   unchanged engine executes.

The :class:`NarrativeStage` wraps the mapper as an optional pipeline
stage inserted before ``parse`` (PR 4's surgery API); with the stage
absent the pipeline is byte-identical to today. Mapping runs under a
``query.narrative.map`` span and feeds the ``query.narrative.*``
counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...ir.tokenizer import (DEFAULT_STOPWORDS, Keyword, KeywordQuery,
                             normalize_term, tokenize)
from ...ontology.api import TerminologyService
from ...ontology.model import OntologyError
from .. import stats as counters
from ..obs.tracer import NULL_TRACER
from .pipeline import QueryContext, QueryStage

#: Provenance labels, one rung of the fallback ladder each.
EXACT = "exact"
SYNONYM = "synonym"
PARENT = "parent"
KEYWORD = "keyword"


@dataclass(frozen=True)
class PhraseMapping:
    """How one extracted phrase became query keywords.

    ``phrase`` is the normalized text span from the narrative;
    ``method`` is the ladder rung that resolved it (``exact`` /
    ``synonym`` / ``parent`` / ``keyword``); ``concept_code`` and
    ``term`` name the mapped concept and the emitted keyword text
    (for ``keyword`` degradations, ``concept_code`` is empty and
    ``term`` is the kept token run); ``weight`` is the specificity
    score used for selection; ``via`` records the candidate concept
    codes a parent-term generalization was computed from.
    """

    phrase: str
    method: str
    concept_code: str
    term: str
    weight: float
    via: tuple[str, ...] = ()


@dataclass(frozen=True)
class NarrativeMapping:
    """The full provenance of one narrative → keyword-query mapping."""

    text: str
    query: KeywordQuery
    mappings: tuple[PhraseMapping, ...]

    def by_method(self, method: str) -> list[PhraseMapping]:
        return [m for m in self.mappings if m.method == method]


def _code_order(code: str) -> tuple[int, int, str]:
    """All-digit concept codes in numeric order, others after (the
    posting order of the persisted indexes, kept here so graph-backed
    and index-backed candidate ranking tie-break identically)."""
    if code.isdigit() and (code == "0" or not code.startswith("0")):
        return (0, len(code), code)
    return (1, 0, code)


class NarrativeQueryMapper:
    """Maps free clinical narrative onto a :class:`KeywordQuery`.

    ``max_phrase_words`` bounds the in-vocabulary window scan;
    ``max_keywords`` caps how many *concept* keywords the emitted query
    keeps (most specific first — plain-keyword degradations are always
    kept, so no phrase disappears entirely).
    """

    def __init__(self, terminology: TerminologyService,
                 system_code: str | None = None,
                 max_phrase_words: int = 4,
                 max_keywords: int = 6,
                 stopwords: frozenset[str] = DEFAULT_STOPWORDS,
                 tracer=None, stats=None) -> None:
        if max_keywords < 1:
            raise ValueError("max_keywords must be at least 1")
        self.terminology = terminology
        self.system_code = system_code
        self.max_phrase_words = max_phrase_words
        self.max_keywords = max_keywords
        self.stopwords = stopwords
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = stats
        # token -> [(code, weight)] maps for graph-only systems, built
        # lazily once per system; hierarchy statistics memoized per
        # concept (the same concepts recur across a workload).
        self._token_maps: dict[str, dict[str, list[tuple[str, float]]]] = {}
        self._hier_stats: dict[tuple[str, str], tuple[int, int]] = {}
        self._depth_maps: dict[tuple[str, str], dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def map(self, text: str) -> NarrativeMapping:
        """Extract, map and weight; raises ``ValueError`` on text with
        no indexable tokens (mirroring ``KeywordQuery.parse``)."""
        tokens = tokenize(text)
        if not tokens:
            raise ValueError(f"no indexable tokens in narrative {text!r}")
        with self.tracer.span("query.narrative.map",
                              tokens=len(tokens)) as span:
            mapping = self._map(text, tokens, span)
        return mapping

    def __call__(self, text: str) -> NarrativeMapping:
        return self.map(text)

    # ------------------------------------------------------------------
    # The two-stage strategy
    # ------------------------------------------------------------------
    def _map(self, text: str, tokens: list[str], span) -> NarrativeMapping:
        matches = self.terminology.match_in_text(
            text, self.system_code, self.max_phrase_words)
        covered = [False] * len(tokens)
        concept_mappings: list[PhraseMapping] = []
        keyword_mappings: list[PhraseMapping] = []

        # Stage 1a: in-vocabulary spans. ``match_in_text`` scanned this
        # very token list left to right without overlaps, so each
        # match's tokens occur at or after the previous match's end.
        position = 0
        for phrase, concept in matches:
            phrase_tokens = phrase.split(" ")
            start = self._find_span(tokens, phrase_tokens, position)
            if start < 0:  # pragma: no cover - defensive
                continue
            for index in range(start, start + len(phrase_tokens)):
                covered[index] = True
            position = start + len(phrase_tokens)
            # Emit the concept's canonical term: an exact hit keeps the
            # phrase verbatim, a synonym hit normalizes the user's
            # phrasing ("cardiopulmonary arrest") to the preferred term
            # ("cardiac arrest") the corpus and curated queries use.
            term = normalize_term(concept.preferred_term)
            method = EXACT if term == phrase else SYNONYM
            concept_mappings.append(PhraseMapping(
                phrase=phrase, method=method,
                concept_code=concept.code,
                term=term,
                weight=self._specificity(concept.code)))

        # Stage 1b: leftover runs (consecutive uncovered content
        # tokens, split on stopwords) are the out-of-vocabulary
        # candidates.
        for run in self._leftover_runs(tokens, covered):
            mapping = self._map_oov(run)
            if mapping.method == KEYWORD:
                keyword_mappings.append(mapping)
            else:
                concept_mappings.append(mapping)

        # Stage 2: specificity selection. Concept keywords are ordered
        # most-specific-first and capped; keyword degradations always
        # survive (a dropped phrase would silently change recall).
        concept_mappings.sort(key=lambda m: (-m.weight, m.term))
        kept = concept_mappings[:self.max_keywords]
        dropped = len(concept_mappings) - len(kept)

        keywords: list[Keyword] = []
        seen: set[tuple[tuple[str, ...], bool]] = set()
        for mapping in (*kept, *keyword_mappings):
            for keyword in self._keywords_of(mapping):
                key = (keyword.tokens, keyword.is_phrase)
                if key not in seen:
                    seen.add(key)
                    keywords.append(keyword)
        if not keywords:
            # Nothing mapped and every token was a stopword-free bust:
            # fall back to the raw tokens so the query still runs.
            fallback = [t for t in tokens if t not in self.stopwords]
            keywords = [Keyword((t,)) for t in (fallback or tokens)]

        all_mappings = (*kept, *keyword_mappings)
        span.annotate(phrases=len(all_mappings) + dropped,
                      keywords=len(keywords), dropped=dropped)
        self._count(all_mappings, dropped)
        return NarrativeMapping(text=text,
                                query=KeywordQuery(tuple(keywords)),
                                mappings=all_mappings)

    # ------------------------------------------------------------------
    # Extraction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _find_span(tokens: list[str], phrase_tokens: list[str],
                   start: int) -> int:
        width = len(phrase_tokens)
        for index in range(start, len(tokens) - width + 1):
            if tokens[index:index + width] == phrase_tokens:
                return index
        return -1

    def _leftover_runs(self, tokens: list[str],
                       covered: list[bool]) -> list[list[str]]:
        runs: list[list[str]] = []
        current: list[str] = []
        for token, taken in zip(tokens, covered):
            if taken or token in self.stopwords:
                if current:
                    runs.append(current)
                    current = []
                continue
            current.append(token)
        if current:
            runs.append(current)
        return runs

    # ------------------------------------------------------------------
    # The parent-term fallback (OOV ladder rung 3)
    # ------------------------------------------------------------------
    def _map_oov(self, run: list[str]) -> PhraseMapping:
        phrase = " ".join(run)
        candidates = self._candidates(run)
        if not candidates:
            return PhraseMapping(phrase=phrase, method=KEYWORD,
                                 concept_code="", term=phrase,
                                 weight=0.0)
        system, top = candidates[0][0], candidates[0][1]
        # Generalize within the best candidate's system only, and over a
        # bounded peer set: past a handful of equally-good candidates
        # the common ancestor degrades toward the root anyway.
        peers = [code for cand_system, code, _overlap, _weight
                 in candidates if cand_system == system][:8]
        chosen = self._common_ancestor(system, peers) or top
        concept = self.terminology.concept_for_code(system, chosen)
        return PhraseMapping(phrase=phrase, method=PARENT,
                             concept_code=chosen,
                             term=normalize_term(concept.preferred_term),
                             weight=self._specificity(chosen, system),
                             via=tuple(peers))

    def _candidates(self, run: list[str],
                    ) -> list[tuple[str, str, int, float]]:
        """Concepts sharing tokens with the run, ranked by (overlap
        desc, best match weight desc, code order). Only maximal-overlap
        candidates are returned — they are what the run is *about*."""
        per_system: dict[str, dict[str, list[float]]] = {}
        for token in run:
            for system, code, weight in self._token_hits(token):
                per_system.setdefault(system, {}).setdefault(
                    code, []).append(weight)
        ranked: list[tuple[str, str, int, float]] = []
        for system, codes in per_system.items():
            for code, weights in codes.items():
                ranked.append((system, code, len(weights), max(weights)))
        if not ranked:
            return []
        ranked.sort(key=lambda item: (-item[2], -item[3],
                                      _code_order(item[1]), item[0]))
        best_overlap = ranked[0][2]
        return [item for item in ranked if item[2] == best_overlap]

    def _token_hits(self, token: str) -> list[tuple[str, str, float]]:
        hits: list[tuple[str, str, float]] = []
        for system in self.terminology.systems():
            if self.system_code is not None and system != self.system_code:
                continue
            indexes = self.terminology.indexes(system)
            if indexes is not None:
                for code, weight in indexes.names.lookup_token(token):
                    hits.append((system, code, weight))
                continue
            for code, weight in self._graph_token_map(system).get(
                    token, ()):
                hits.append((system, code, weight))
        return hits

    def _graph_token_map(self, system: str,
                         ) -> dict[str, list[tuple[str, float]]]:
        cached = self._token_maps.get(system)
        if cached is not None:
            return cached
        ontology = self.terminology.ontology(system)
        weights: dict[str, dict[str, float]] = {}
        for concept in ontology.concepts():
            for term_index, term in enumerate(concept.terms):
                weight = 1.0 if term_index == 0 else 0.5
                for token in set(tokenize(term)):
                    bucket = weights.setdefault(token, {})
                    bucket[concept.code] = max(
                        bucket.get(concept.code, 0.0), weight)
        token_map = {
            token: [(code, codes[code])
                    for code in sorted(codes, key=_code_order)]
            for token, codes in weights.items()}
        self._token_maps[system] = token_map
        return token_map

    def _common_ancestor(self, system: str,
                         codes: list[str]) -> str | None:
        """Nearest common is-a ancestor of ``codes`` (reflexive: a
        single candidate is its own ancestor at depth 0); ``None`` when
        the candidates share no ancestor."""
        depth_maps = [self._ancestor_depths(system, code)
                      for code in codes]
        common = set(depth_maps[0])
        for depths in depth_maps[1:]:
            common &= set(depths)
        if not common:
            return None
        return min(common,
                   key=lambda code: (sum(depths[code]
                                         for depths in depth_maps),
                                     _code_order(code)))

    def _ancestor_depths(self, system: str, code: str) -> dict[str, int]:
        """Min-hop depth to every is-a ancestor, the concept itself at
        depth 0 (reflexive so a lone candidate generalizes to itself)."""
        key = (system, code)
        cached = self._depth_maps.get(key)
        if cached is not None:
            return cached
        indexes = self.terminology.indexes(system)
        if indexes is not None:
            depths = {code: 0}
            depths.update(indexes.hierarchy.ancestors(code))
        else:
            depths = self._bfs_depths(system, code)
        self._depth_maps[key] = depths
        return depths

    def _bfs_depths(self, system: str, code: str) -> dict[str, int]:
        ontology = self.terminology.ontology(system)
        depths = {code: 0}
        frontier = [code]
        hop = 0
        while frontier:
            hop += 1
            next_frontier: list[str] = []
            for current in frontier:
                for parent in ontology.parents(current):
                    if parent not in depths:
                        depths[parent] = hop
                        next_frontier.append(parent)
            frontier = next_frontier
        return depths

    # ------------------------------------------------------------------
    # Specificity weighting
    # ------------------------------------------------------------------
    def _specificity(self, code: str,
                     system: str | None = None) -> float:
        """Hierarchy depth plus inverse descendant count: deep, rare
        concepts ("supraventricular arrhythmia") outrank broad axes
        ("disorder of heart") when the keyword cap bites."""
        depth, descendants = self._hierarchy_stats(code, system)
        return depth + 1.0 / (1.0 + descendants)

    def _hierarchy_stats(self, code: str,
                         system: str | None = None) -> tuple[int, int]:
        system = system or self._system_of(code)
        if system is None:
            return (0, 0)
        key = (system, code)
        cached = self._hier_stats.get(key)
        if cached is not None:
            return cached
        indexes = self.terminology.indexes(system)
        if indexes is not None:
            ancestors = indexes.hierarchy.ancestors(code)
            depth = max(ancestors.values(), default=0)
            descendants = len(indexes.hierarchy.descendants(code))
        else:
            depths = self._bfs_depths(system, code)
            depth = max(depths.values(), default=0)
            ontology = self.terminology.ontology(system)
            descendants = len(ontology.descendants(code))
        stats = (depth, descendants)
        self._hier_stats[key] = stats
        return stats

    def _system_of(self, code: str) -> str | None:
        for system in self.terminology.systems():
            if self.system_code is not None and system != self.system_code:
                continue
            try:
                self.terminology.concept_for_code(system, code)
            except OntologyError:
                continue
            return system
        return None

    # ------------------------------------------------------------------
    def _keywords_of(self, mapping: PhraseMapping) -> list[Keyword]:
        if mapping.method == KEYWORD:
            # Degraded runs stay individual keywords: requiring the OOV
            # tokens to be adjacent in documents would be stricter than
            # the user's narrative implies.
            return [Keyword((token,)) for token in mapping.term.split(" ")]
        tokens = tuple(mapping.term.split(" "))
        return [Keyword(tokens, is_phrase=len(tokens) > 1)]

    def _count(self, mappings: tuple[PhraseMapping, ...],
               dropped: int) -> None:
        if self.stats is None:
            return
        amounts = {
            counters.NARRATIVE_QUERIES: 1,
            counters.NARRATIVE_PHRASES: len(mappings) + dropped,
            counters.NARRATIVE_CONCEPTS_DROPPED: dropped,
        }
        by_method = {
            EXACT: counters.NARRATIVE_MAPPED_EXACT,
            SYNONYM: counters.NARRATIVE_MAPPED_SYNONYM,
            PARENT: counters.NARRATIVE_MAPPED_PARENT,
            KEYWORD: counters.NARRATIVE_KEYWORD_FALLBACKS,
        }
        for mapping in mappings:
            name = by_method[mapping.method]
            amounts[name] = amounts.get(name, 0) + 1
        self.stats.increment_many({name: amount
                                   for name, amount in amounts.items()
                                   if amount})


class NarrativeStage(QueryStage):
    """Optional pipeline stage: narrative text → mapped keyword query.

    Inserted before ``parse`` via pipeline surgery
    (:meth:`QueryPipeline.insert_before`); pre-parsed
    :class:`KeywordQuery` objects pass through untouched, so programs
    that already speak keywords see byte-identical behavior. The
    mapping's provenance lands in ``context.extras["narrative"]``.
    """

    name = "narrative"

    def __init__(self, mapper: NarrativeQueryMapper) -> None:
        self.mapper = mapper

    def run(self, context: QueryContext) -> None:
        if not isinstance(context.query, str):
            return
        mapping = self.mapper.map(context.query)
        context.extras["narrative"] = mapping
        context.query = mapping.query
