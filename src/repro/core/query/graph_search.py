"""Ontology-aware keyword search over XML *graphs* (paper Section III).

The main system builds on tree algorithms and "ignore[s] ID-IDREF edges
as well as inter-document references ... However, the techniques we use
to incorporate ontological information are straightforwardly applicable
to graph search algorithms as well (i.e. when ID-IDREF edges are
considered [8])". This module makes that claim concrete: an
XKeyword/BANKS-style backward-expanding search over the element graph
-- containment edges plus intra-document reference links (CDA's
``ID``/``reference`` pairs, the same edges ElemRank uses) -- seeded by
exactly the same Eq. 5 NodeScores the tree engine uses. Swapping the
:class:`~repro.core.scoring.NodeScorer` between the XRANK null strategy
and an ontology-aware strategy transfers all of Section IV unchanged.

A result is a connecting subgraph: a root element together with one
evidence node per keyword, reachable from the root within the search
radius. Results are scored like Eq. 2-4, with ``decay`` applied per
*graph* edge instead of per containment edge -- a reference hop costs
the same as a containment hop, which is precisely what tree semantics
cannot express.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ...ir.tokenizer import KeywordQuery
from ...xmldoc.dewey import DeweyID, assign_dewey_ids
from ...xmldoc.model import Corpus
from ..elemrank import extract_link_edges
from ..scoring import NodeScorer


@dataclass(frozen=True)
class GraphResult:
    """A connecting subgraph: root, per-keyword evidence, Eq.4-style
    score."""

    root: DeweyID
    evidence: tuple[DeweyID, ...]
    keyword_scores: tuple[float, ...]

    @property
    def score(self) -> float:
        return sum(self.keyword_scores)

    @property
    def escapes_subtree(self) -> bool:
        """Whether any evidence node lies outside the root's subtree --
        an answer tree semantics could not award to this root (the
        evidence was reached upward through the root's ancestors or
        across a reference edge)."""
        return any(not self.root.contains(node)
                   for node in self.evidence)


class GraphSearchEngine:
    """Backward-expanding keyword search over the element graph."""

    def __init__(self, corpus: Corpus, node_scorer: NodeScorer,
                 decay: float = 0.5, max_radius: int = 6) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must lie in (0, 1]")
        if max_radius < 1:
            raise ValueError("max_radius must be positive")
        self._corpus = corpus
        self._node_scorer = node_scorer
        self._decay = decay
        self._max_radius = max_radius
        # Undirected adjacency per document: containment + link edges.
        self._adjacency: dict[DeweyID, list[DeweyID]] = {}
        self._link_edges: list[tuple[DeweyID, DeweyID]] = []
        for document in corpus:
            ids = assign_dewey_ids(document)
            for node, dewey in ids.items():
                neighbors = self._adjacency.setdefault(dewey, [])
                if node.parent is not None:
                    neighbors.append(ids[node.parent])
                neighbors.extend(ids[child] for child in node.children)
            for source, target in extract_link_edges(document, ids):
                self._adjacency[source].append(target)
                self._adjacency[target].append(source)
                self._link_edges.append((source, target))

    # ------------------------------------------------------------------
    @property
    def link_edge_count(self) -> int:
        return len(self._link_edges)

    def search(self, query: str | KeywordQuery,
               k: int | None = None) -> list[GraphResult]:
        """Top-k connecting subgraphs for the query."""
        parsed = (KeywordQuery.parse(query) if isinstance(query, str)
                  else query)
        # Per-keyword best decayed score per node: multi-source Dijkstra
        # from the keyword's NS-scored matches over the element graph.
        reach: list[dict[DeweyID, tuple[float, DeweyID]]] = []
        for keyword in parsed:
            seeds = self._node_scorer.node_scores(keyword)
            reach.append(self._expand(seeds))
        if any(not scores for scores in reach):
            return []

        roots = set(reach[0])
        for scores in reach[1:]:
            roots &= set(scores)
        results = [GraphResult(
            root=root,
            evidence=tuple(scores[root][1] for scores in reach),
            keyword_scores=tuple(scores[root][0] for scores in reach))
            for root in roots]
        results = self._most_specific(results)
        results.sort(key=lambda result: (-result.score, result.root))
        return results[:k] if k is not None else results

    # ------------------------------------------------------------------
    def _expand(self, seeds: dict[DeweyID, float],
                ) -> dict[DeweyID, tuple[float, DeweyID]]:
        """Best decayed score (and its evidence node) for every element
        within ``max_radius`` graph edges of a seed."""
        best: dict[DeweyID, tuple[float, DeweyID]] = {}
        heap: list[tuple[float, int, int, DeweyID, DeweyID]] = []
        counter = 0
        for dewey, score in seeds.items():
            if score > 0.0:
                heap.append((-score, 0, counter, dewey, dewey))
                counter += 1
        heapq.heapify(heap)
        while heap:
            negative, hops, _, dewey, evidence = heapq.heappop(heap)
            if dewey in best:
                continue
            best[dewey] = (-negative, evidence)
            if hops >= self._max_radius:
                continue
            propagated = -negative * self._decay
            for neighbor in self._adjacency.get(dewey, ()):
                if neighbor not in best:
                    heapq.heappush(heap, (-propagated, hops + 1, counter,
                                          neighbor, evidence))
                    counter += 1
        return best

    def _most_specific(self, results: list[GraphResult],
                       ) -> list[GraphResult]:
        """Eq. 1 analogue: drop roots with a covering descendant root."""
        roots = sorted(result.root for result in results)
        excluded: set[DeweyID] = set()
        for current, following in zip(roots, roots[1:]):
            if current.is_ancestor_of(following):
                excluded.add(current)
        return [result for result in results
                if result.root not in excluded]
