"""The Query Module: DIL stack merge, naive reference evaluator, and the
engine facade (paper Section V-A)."""

from .dil_algorithm import DILQueryProcessor, DILQueryStatistics
from .engine import XOntoRankEngine, build_engines
from .explain import (KeywordEvidence, ONTOLOGICAL, OntologyHop,
                      ResultExplanation, TEXTUAL, explain_result)
from .federated import (FederatedEngine, ShardScopedBuilder,
                        merge_ranked, shard_store_path)
from .graph_search import GraphResult, GraphSearchEngine
from .naive import NaiveEvaluator
from .pipeline import (DILFetchStage, MergeStage, ParseStage,
                       QueryContext, QueryPipeline, QueryStage,
                       RankStage)
from .results import QueryResult, rank_results

__all__ = [
    "DILFetchStage", "DILQueryProcessor", "DILQueryStatistics",
    "FederatedEngine", "GraphResult", "GraphSearchEngine",
    "KeywordEvidence", "MergeStage", "NaiveEvaluator", "ONTOLOGICAL",
    "OntologyHop", "ParseStage", "QueryContext", "QueryPipeline",
    "QueryResult", "QueryStage", "RankStage", "ResultExplanation",
    "ShardScopedBuilder", "TEXTUAL", "XOntoRankEngine",
    "build_engines", "explain_result", "merge_ranked", "rank_results",
    "shard_store_path",
]
