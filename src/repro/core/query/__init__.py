"""The Query Module: DIL stack merge, naive reference evaluator, and the
engine facade (paper Section V-A)."""

from .dil_algorithm import DILQueryProcessor, DILQueryStatistics
from .engine import XOntoRankEngine, build_engines
from .explain import (KeywordEvidence, ONTOLOGICAL, OntologyHop,
                      ResultExplanation, TEXTUAL, explain_result)
from .graph_search import GraphResult, GraphSearchEngine
from .naive import NaiveEvaluator
from .results import QueryResult, rank_results

__all__ = [
    "DILQueryProcessor", "DILQueryStatistics", "GraphResult",
    "GraphSearchEngine", "KeywordEvidence",
    "NaiveEvaluator", "ONTOLOGICAL", "OntologyHop", "QueryResult",
    "ResultExplanation", "TEXTUAL", "XOntoRankEngine", "build_engines",
    "explain_result", "rank_results",
]
