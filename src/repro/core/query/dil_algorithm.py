"""XRANK's DIL query algorithm over XOnto-DILs (paper Section V-A).

"During the query phase, the Query Module inputs the user keyword query
and executes XRANK's DIL algorithm using the XOnto-DILs generated in the
pre-processing phase."

The algorithm merges the k posting lists in global Dewey (document)
order while maintaining a stack that mirrors the root-to-current-node
path. Each stack frame accumulates, per keyword, the best propagated
score seen in the frame's fully-processed subtree; when a frame is
popped (its subtree exhausted) it is emitted as a result if it covers
all keywords and none of its descendants already did (Eq. 1), and its
scores flow to its parent attenuated by ``decay`` (Eq. 2-3). Result
scores are the per-keyword sums (Eq. 4).

One sequential pass over the posting lists, O(depth) memory -- the
structural reason the paper adopts DILs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ...xmldoc.dewey import DeweyID
from ..index.dil import DeweyInvertedList
from ..obs.tracer import NULL_TRACER
from .results import QueryResult, rank_results


@dataclass
class _Frame:
    """Stack frame for one element on the current root-to-node path."""

    dewey: DeweyID
    scores: list[float]
    contains_result: bool = False


@dataclass
class DILQueryStatistics:
    """Counters exposed for the performance experiments (Figure 11)."""

    postings_read: int = 0
    frames_pushed: int = 0
    results_found: int = 0


class DILQueryProcessor:
    """Executes one keyword query against per-keyword Dewey lists."""

    def __init__(self, decay: float = 0.5, tracer=None) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must lie in (0, 1]")
        self._decay = decay
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.last_statistics = DILQueryStatistics()

    # ------------------------------------------------------------------
    def execute(self, dils: list[DeweyInvertedList],
                k: int | None = None) -> list[QueryResult]:
        """All Eq. 1 results of the query, ranked; top-k when given."""
        return rank_results(self.collect(dils), k)

    def collect(self, dils: list[DeweyInvertedList],
                ) -> list[QueryResult]:
        """All Eq. 1 results of the query, *unranked* -- the merge
        stage of the query pipeline; ranking is a separate stage."""
        if not dils:
            raise ValueError("a query needs at least one keyword list")
        with self._tracer.span("query.dil_merge",
                               keywords=len(dils)) as span:
            results = self._merge(dils)
            span.annotate(
                postings_read=self.last_statistics.postings_read,
                frames_pushed=self.last_statistics.frames_pushed,
                results=self.last_statistics.results_found)
            return results

    def _merge(self, dils: list[DeweyInvertedList],
               ) -> list[QueryResult]:
        statistics = DILQueryStatistics()
        self.last_statistics = statistics
        keyword_count = len(dils)
        if any(not dil for dil in dils):
            # Some keyword matches nothing anywhere: no subtree can
            # cover all keywords.
            return []

        streams = [[(posting.dewey, index, posting.score)
                    for posting in dil]
                   for index, dil in enumerate(dils)]
        merged = heapq.merge(*streams)

        stack: list[_Frame] = []
        results: list[QueryResult] = []

        for dewey, keyword_index, score in merged:
            statistics.postings_read += 1
            self._align_stack(stack, dewey, keyword_count, results,
                              statistics)
            top = stack[-1]
            if score > top.scores[keyword_index]:
                top.scores[keyword_index] = score
        while stack:
            self._pop_frame(stack, results, statistics)
        statistics.results_found = len(results)
        return results

    # ------------------------------------------------------------------
    def _align_stack(self, stack: list[_Frame], dewey: DeweyID,
                     keyword_count: int, results: list[QueryResult],
                     statistics: DILQueryStatistics) -> None:
        """Pop completed subtrees, then push path frames down to
        ``dewey``."""
        common = self._common_depth(stack, dewey)
        while len(stack) > common:
            self._pop_frame(stack, results, statistics)
        # Push the missing path components: the frame for the document
        # root first (depth 0), then one frame per Dewey component.
        while len(stack) < dewey.depth + 1:
            depth = len(stack)
            frame_dewey = DeweyID(dewey.doc_id, dewey.path[:depth])
            stack.append(_Frame(frame_dewey, [0.0] * keyword_count))
            statistics.frames_pushed += 1

    def _common_depth(self, stack: list[_Frame], dewey: DeweyID) -> int:
        """Number of stack frames that are ancestors-or-self of
        ``dewey``."""
        if stack and stack[0].dewey.doc_id != dewey.doc_id:
            return 0
        depth = 0
        for index, frame in enumerate(stack):
            if index > len(dewey.path):
                break
            if frame.dewey.path == dewey.path[:index]:
                depth = index + 1
            else:
                break
        return depth

    def _pop_frame(self, stack: list[_Frame], results: list[QueryResult],
                   statistics: DILQueryStatistics) -> None:
        frame = stack.pop()
        is_result = (not frame.contains_result
                     and all(score > 0.0 for score in frame.scores))
        if is_result:
            results.append(QueryResult(
                dewey=frame.dewey, score=sum(frame.scores),
                keyword_scores=tuple(frame.scores)))
        if stack:
            parent = stack[-1]
            for index, score in enumerate(frame.scores):
                decayed = score * self._decay
                if decayed > parent.scores[index]:
                    parent.scores[index] = decayed
            parent.contains_result |= frame.contains_result or is_result
