"""XRANK's DIL query algorithm over XOnto-DILs (paper Section V-A).

"During the query phase, the Query Module inputs the user keyword query
and executes XRANK's DIL algorithm using the XOnto-DILs generated in the
pre-processing phase."

The algorithm merges the k posting lists in global Dewey (document)
order while maintaining a stack that mirrors the root-to-current-node
path. Each stack frame accumulates, per keyword, the best propagated
score seen in the frame's fully-processed subtree; when a frame is
popped (its subtree exhausted) it is emitted as a result if it covers
all keywords and none of its descendants already did (Eq. 1), and its
scores flow to its parent attenuated by ``decay`` (Eq. 2-3). Result
scores are the per-keyword sums (Eq. 4).

One sequential pass over the posting lists, O(depth) memory -- the
structural reason the paper adopts DILs. The merge consumes lazy
per-DIL generators, so no posting list is ever materialized as a
parallel tuple list.

Two execution modes:

* :meth:`DILQueryProcessor.collect` -- the full Eq. 1 enumeration, as
  the paper describes it; ranking/truncation is a separate stage.
* :meth:`DILQueryProcessor.collect_topk` -- bounded evaluation: a
  size-k result heap plus per-document score upper bounds
  (``sum(per-keyword doc max)``, i.e. the optimistic score with zero
  propagation decay) let whole documents be skipped once the heap is
  full. Because documents are visited in ascending doc-id order and
  results tie-break on ``(-score, dewey)``, a document whose bound
  *equals* the current heap minimum can also be skipped: any tying
  result would lose the Dewey tie-break against the earlier entry.
  Returns the byte-identical ranking the full mode's top-k prefix
  would.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass
from typing import Iterator

from ...xmldoc.dewey import DeweyID
from ..deadline import Deadline
from ..index.dil import DeweyInvertedList
from ..obs.tracer import NULL_TRACER
from ..stats import TOPK_DOCS_SKIPPED, TOPK_HEAP_EVICTIONS, StatsRegistry
from .results import QueryResult, rank_results

#: A merge tuple: (dewey, keyword index, NodeScore). Sorting on the
#: leading DeweyID is what keeps the k-way merge in global document
#: order.
_MergeItem = tuple[DeweyID, int, float]


@dataclass
class _Frame:
    """Stack frame for one element on the current root-to-node path."""

    dewey: DeweyID
    scores: list[float]
    contains_result: bool = False


class _HeapDewey:
    """A DeweyID wrapper whose ordering is *reversed*.

    The bounded result heap is a min-heap holding the current top-k
    with the **worst** entry at the root. "Worst" means lowest score,
    ties broken by *largest* Dewey ID (the final ranking prefers
    smaller Dewey IDs among equals). Scores compare naturally in a
    min-heap; Dewey IDs need their order flipped, and negation does
    not reverse variable-length tuple prefix order -- hence this
    wrapper.
    """

    __slots__ = ("dewey",)

    def __init__(self, dewey: DeweyID) -> None:
        self.dewey = dewey

    def __lt__(self, other: "_HeapDewey") -> bool:
        return other.dewey < self.dewey

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, _HeapDewey)
                and other.dewey == self.dewey)


class _DocStream:
    """A cursor over one DIL that serves per-document posting runs.

    ``doc_postings(doc_id)`` bisects forward from the cursor to the
    document's first posting and yields merge tuples while the document
    matches. Skipped documents cost O(log n) cursor moves and zero
    posting reads -- the mechanism behind the top-k mode's
    ``postings_read`` reduction.

    A compact (block-backed) DIL gets a better deal still: its block's
    document directory locates the run exactly, so skipped documents
    cost nothing and visited documents decode only their own run --
    the materialized posting sequence is never built. The per-call
    streams also keep block-backed DILs safely shareable across
    concurrent queries: all cursor state lives here, the block itself
    is immutable.
    """

    __slots__ = ("_postings", "_index", "_pos", "_block")

    def __init__(self, dil: DeweyInvertedList, index: int) -> None:
        self._index = index
        self._pos = 0
        self._block = dil.block
        self._postings = (dil.sorted_postings()
                          if self._block is None else ())

    def doc_postings(self, doc_id: int) -> Iterator[_MergeItem]:
        if self._block is not None:
            index = self._index
            for path, score in self._block.doc_postings(doc_id):
                yield (DeweyID(doc_id, path), index, score)
            return
        self._pos = bisect.bisect_left(self._postings, doc_id,
                                       lo=self._pos,
                                       key=lambda p: p.dewey.doc_id)
        while (self._pos < len(self._postings)
               and self._postings[self._pos].dewey.doc_id == doc_id):
            posting = self._postings[self._pos]
            self._pos += 1
            yield (posting.dewey, self._index, posting.score)


@dataclass
class DILQueryStatistics:
    """Counters exposed for the performance experiments (Figure 11)."""

    postings_read: int = 0
    frames_pushed: int = 0
    results_found: int = 0
    #: Documents the bounded (top-k) mode never merged: missing at
    #: least one keyword, or upper-bounded below the heap minimum.
    docs_skipped: int = 0
    #: Heap replacements in the bounded mode -- results that entered a
    #: full heap by displacing the then-worst entry.
    heap_evictions: int = 0
    #: True when a request deadline expired between per-document merges
    #: and the bounded mode returned its best-so-far heap (a *partial*
    #: answer) instead of finishing the candidate scan.
    deadline_hit: bool = False


class DILQueryProcessor:
    """Executes one keyword query against per-keyword Dewey lists."""

    def __init__(self, decay: float = 0.5, tracer=None,
                 stats: StatsRegistry | None = None) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must lie in (0, 1]")
        self._decay = decay
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._stats = stats
        self.last_statistics = DILQueryStatistics()

    # ------------------------------------------------------------------
    def execute(self, dils: list[DeweyInvertedList],
                k: int | None = None) -> list[QueryResult]:
        """All Eq. 1 results of the query, ranked; top-k when given
        (the bounded mode, identical to ranking-then-truncating)."""
        if k is None:
            return rank_results(self.collect(dils), None)
        return self.collect_topk(dils, k)

    def collect(self, dils: list[DeweyInvertedList],
                ) -> list[QueryResult]:
        """All Eq. 1 results of the query, *unranked* -- the merge
        stage of the query pipeline; ranking is a separate stage."""
        if not dils:
            raise ValueError("a query needs at least one keyword list")
        with self._tracer.span("query.dil_merge",
                               keywords=len(dils)) as span:
            results = self._merge(dils)
            span.annotate(
                postings_read=self.last_statistics.postings_read,
                frames_pushed=self.last_statistics.frames_pushed,
                results=self.last_statistics.results_found)
            return results

    def collect_topk(self, dils: list[DeweyInvertedList], k: int,
                     deadline: Deadline | None = None,
                     ) -> list[QueryResult]:
        """The top-k Eq. 1 results, *ranked*, via bounded evaluation.

        Equivalent to ``rank_results(self.collect(dils), k)`` but
        short-circuiting: documents whose optimistic score cannot enter
        the full result heap are skipped without reading a posting.
        With a ``deadline``, the candidate scan stops once it expires
        and the best-so-far heap is returned (see
        :meth:`collect_topk_stats` for the partial flag).
        """
        return self.collect_topk_stats(dils, k, deadline)[0]

    def collect_topk_stats(self, dils: list[DeweyInvertedList], k: int,
                           deadline: Deadline | None = None,
                           ) -> tuple[list[QueryResult],
                                      DILQueryStatistics]:
        """:meth:`collect_topk` plus *this call's own* statistics.

        The returned statistics object is local to the call --
        concurrent queries through one shared processor each get their
        own (``last_statistics`` keeps only the most recent writer and
        is for single-threaded inspection). ``statistics.deadline_hit``
        is the partial-results flag the serving layer surfaces.
        """
        if not dils:
            raise ValueError("a query needs at least one keyword list")
        if k < 1:
            raise ValueError("k must be positive")
        with self._tracer.span("query.dil_merge",
                               keywords=len(dils)) as span:
            results, statistics = self._merge_topk(dils, k, deadline)
            span.annotate(
                postings_read=statistics.postings_read,
                frames_pushed=statistics.frames_pushed,
                results=statistics.results_found,
                docs_skipped=statistics.docs_skipped,
                heap_evictions=statistics.heap_evictions)
            if statistics.deadline_hit:
                span.annotate(deadline_hit=True)
            if self._stats is not None:
                self._stats.increment_many({
                    TOPK_DOCS_SKIPPED: statistics.docs_skipped,
                    TOPK_HEAP_EVICTIONS: statistics.heap_evictions})
            return results, statistics

    # ------------------------------------------------------------------
    def _merge(self, dils: list[DeweyInvertedList],
               ) -> list[QueryResult]:
        statistics = DILQueryStatistics()
        self.last_statistics = statistics
        keyword_count = len(dils)
        if any(not dil for dil in dils):
            # Some keyword matches nothing anywhere: no subtree can
            # cover all keywords.
            return []

        merged = heapq.merge(*(self._posting_stream(dil, index)
                               for index, dil in enumerate(dils)))
        results = self._stack_results(merged, keyword_count, statistics)
        statistics.results_found = len(results)
        return results

    def _merge_topk(self, dils: list[DeweyInvertedList], k: int,
                    deadline: Deadline | None = None,
                    ) -> tuple[list[QueryResult], DILQueryStatistics]:
        statistics = DILQueryStatistics()
        self.last_statistics = statistics
        keyword_count = len(dils)
        if any(not dil for dil in dils):
            return [], statistics

        doc_maxes = [dil.doc_max_scores() for dil in dils]
        # Only documents containing every keyword can produce results;
        # ascending doc-id order is what makes the equality skip below
        # safe (heap entries always precede the current document).
        candidates = sorted(set.intersection(
            *(set(maxes) for maxes in doc_maxes)))
        union_size = len(set.union(*(set(maxes) for maxes in doc_maxes)))
        statistics.docs_skipped += union_size - len(candidates)

        streams = [_DocStream(dil, index)
                   for index, dil in enumerate(dils)]
        heap: list[tuple[float, _HeapDewey, QueryResult]] = []
        for doc_id in candidates:
            if deadline is not None and deadline.expired:
                # Mid-merge expiry: stop scanning and serve what the
                # heap holds. Document granularity keeps every served
                # result exact (a document merge is never cut in half).
                statistics.deadline_hit = True
                break
            if len(heap) == k:
                bound = sum(maxes[doc_id] for maxes in doc_maxes)
                if bound <= heap[0][0]:
                    statistics.docs_skipped += 1
                    continue
            merged = heapq.merge(*(stream.doc_postings(doc_id)
                                   for stream in streams))
            doc_results = self._stack_results(merged, keyword_count,
                                              statistics)
            statistics.results_found += len(doc_results)
            for result in doc_results:
                entry = (result.score, _HeapDewey(result.dewey), result)
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif heap[0] < entry:
                    heapq.heapreplace(heap, entry)
                    statistics.heap_evictions += 1
        ordered = sorted(heap)
        ordered.reverse()
        return [entry[2] for entry in ordered], statistics

    # ------------------------------------------------------------------
    @staticmethod
    def _posting_stream(dil: DeweyInvertedList,
                        index: int) -> Iterator[_MergeItem]:
        """Lazy merge feed of one DIL -- O(1) memory per list."""
        for posting in dil:
            yield (posting.dewey, index, posting.score)

    def _stack_results(self, merged: Iterator[_MergeItem],
                       keyword_count: int,
                       statistics: DILQueryStatistics,
                       ) -> list[QueryResult]:
        """Run the stack merge over an already-ordered posting stream
        and return its Eq. 1 results (document order)."""
        stack: list[_Frame] = []
        results: list[QueryResult] = []
        for dewey, keyword_index, score in merged:
            statistics.postings_read += 1
            self._align_stack(stack, dewey, keyword_count, results,
                              statistics)
            top = stack[-1]
            if score > top.scores[keyword_index]:
                top.scores[keyword_index] = score
        while stack:
            self._pop_frame(stack, results, statistics)
        return results

    # ------------------------------------------------------------------
    def _align_stack(self, stack: list[_Frame], dewey: DeweyID,
                     keyword_count: int, results: list[QueryResult],
                     statistics: DILQueryStatistics) -> None:
        """Pop completed subtrees, then push path frames down to
        ``dewey``."""
        common = self._common_depth(stack, dewey)
        while len(stack) > common:
            self._pop_frame(stack, results, statistics)
        # Push the missing path components: the frame for the document
        # root first (depth 0), then one frame per Dewey component.
        while len(stack) < dewey.depth + 1:
            depth = len(stack)
            frame_dewey = DeweyID(dewey.doc_id, dewey.path[:depth])
            stack.append(_Frame(frame_dewey, [0.0] * keyword_count))
            statistics.frames_pushed += 1

    def _common_depth(self, stack: list[_Frame], dewey: DeweyID) -> int:
        """Number of stack frames that are ancestors-or-self of
        ``dewey``."""
        if stack and stack[0].dewey.doc_id != dewey.doc_id:
            return 0
        depth = 0
        for index, frame in enumerate(stack):
            if index > len(dewey.path):
                break
            if frame.dewey.path == dewey.path[:index]:
                depth = index + 1
            else:
                break
        return depth

    def _pop_frame(self, stack: list[_Frame], results: list[QueryResult],
                   statistics: DILQueryStatistics) -> None:
        frame = stack.pop()
        is_result = (not frame.contains_result
                     and all(score > 0.0 for score in frame.scores))
        if is_result:
            results.append(QueryResult(
                dewey=frame.dewey, score=sum(frame.scores),
                keyword_scores=tuple(frame.scores)))
        if stack:
            parent = stack[-1]
            for index, score in enumerate(frame.scores):
                decayed = score * self._decay
                if decayed > parent.scores[index]:
                    parent.scores[index] = decayed
            parent.contains_result |= frame.contains_result or is_result
