"""Configuration of the XOntoRank system.

The paper's experiments fix three parameters (Section VII): ``decay``
(the per-containment-edge and per-ontology-hop score attenuation) to
0.5, ``threshold`` (the OntoScore pruning bound of Algorithm 1) to 0.1,
and ``t`` (the dotted-link attenuation of the description-logic view,
Eq. 9) to 0.5. The remaining knobs parameterize the substrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..xmldoc.model import DEFAULT_TEXT_POLICY, TextPolicy

#: Strategy names, matching Section VII's four approaches.
XRANK = "xrank"
GRAPH = "graph"
TAXONOMY = "taxonomy"
RELATIONSHIPS = "relationships"

ALL_STRATEGIES = (XRANK, GRAPH, TAXONOMY, RELATIONSHIPS)

#: The three ontology-aware strategies (Section IV A-C).
ONTOLOGY_STRATEGIES = (GRAPH, TAXONOMY, RELATIONSHIPS)


@dataclass(frozen=True)
class XOntoRankConfig:
    """All tunables in one immutable value object."""

    #: Score attenuation per containment edge (Eq. 2) and per hop of the
    #: undirected-graph expansion (Eq. 7).
    decay: float = 0.5

    #: OntoScore pruning bound: expansion halts below this score and the
    #: hash map keeps only entries above it (Algorithm 1).
    threshold: float = 0.1

    #: Dotted-link attenuation of the DL view (Eq. 9).
    t: float = 0.5

    #: IR function backing Eq. 5 and the OntoScore seeds: "bm25"
    #: (the paper's choice) or "tfidf".
    ir_function: str = "bm25"

    #: BM25 parameters of the IR substrate.
    bm25_k1: float = 1.2
    bm25_b: float = 0.75

    #: Attributes excluded from textual descriptions (Section III).
    text_policy: TextPolicy = field(default=DEFAULT_TEXT_POLICY)

    #: Number of results the engine returns by default.
    top_k: int = 10

    #: Capacity of the engine's query-time DIL cache: ``None`` keeps
    #: every DIL ever built (the right mode after a vocabulary-wide
    #: :meth:`~repro.core.query.engine.XOntoRankEngine.build_index`),
    #: ``N`` bounds it to the N most recently used lists, ``0``
    #: disables caching entirely.
    dil_cache_capacity: int | None = None

    #: Expansion order: ``True`` uses the exact best-first (max-heap)
    #: formulation; ``False`` uses the paper's literal level-order merged
    #: BFS (Algorithm 1 + Observation 1), which can under-approximate
    #: scores when edge factors are non-uniform. Kept as a knob for the
    #: ablation benchmark.
    exact_expansion: bool = True

    #: Modulate NodeScores by ElemRank, XRANK's element-level PageRank.
    #: Off by default: "our CDA documents have no ID-IDREF edges and
    #: hence ElemRank would make no difference" (Section V-A) -- except
    #: through CDA's own ID/reference links, which we do extract.
    use_elemrank: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must lie in (0, 1]")
        if not 0.0 <= self.threshold < 1.0:
            raise ValueError("threshold must lie in [0, 1)")
        if not 0.0 < self.t <= 1.0:
            raise ValueError("t must lie in (0, 1]")
        if self.top_k < 1:
            raise ValueError("top_k must be positive")
        if (self.dil_cache_capacity is not None
                and self.dil_cache_capacity < 0):
            raise ValueError("dil_cache_capacity must be None or >= 0")
        if self.ir_function not in ("bm25", "tfidf"):
            raise ValueError("ir_function must be 'bm25' or 'tfidf'")


DEFAULT_CONFIG = XOntoRankConfig()
