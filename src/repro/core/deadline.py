"""Request deadlines: one budget, propagated end to end.

A long-lived serving process cannot let any single request hold a
worker forever: the client has already given up, yet the thread keeps
burning CPU and -- worse -- keeps a retry loop sleeping. A
:class:`Deadline` is the absolute point in time after which a request's
answer is worthless; every layer below the server consults the *same*
deadline instead of inventing per-layer timeouts that can add up past
the caller's budget:

* the HTTP layer creates one per request (``timeout_ms`` query
  parameter or the server default) and converts expiry into a 504;
* the query pipeline checks it between stages and between per-document
  DIL merges (bounded top-k mode), returning partial results with a
  flag instead of overshooting;
* :class:`~repro.storage.retrying.RetryingStore` refuses to start a
  backoff sleep that the deadline could not survive.

Layers that cannot thread a parameter through (a store wrapped three
decorators deep) read the **ambient deadline** instead: the server
publishes the request's deadline through a :class:`contextvars.ContextVar`
via :func:`deadline_scope`, and :func:`current_deadline` returns it (or
``None`` outside any request). Context variables are per-thread-context,
so concurrent requests on a worker pool never see each other's budget.

The clock is injectable (defaults to :func:`time.monotonic`), so every
expiry branch is unit-testable without sleeping.
"""

from __future__ import annotations

import contextlib
import time
from contextvars import ContextVar
from typing import Callable, Iterator

Clock = Callable[[], float]


class DeadlineExceeded(Exception):
    """The request's time budget ran out before the work finished.

    Not a :class:`~repro.storage.errors.StorageError`: a deadline expiry
    is the *caller's* budget ending, not the system failing -- the
    server maps it to 504, never to the degraded/circuit-breaker path.
    """


class Deadline:
    """An absolute expiry instant with a monotonic clock."""

    __slots__ = ("_expires_at", "_clock")

    def __init__(self, expires_at: float,
                 clock: Clock = time.monotonic) -> None:
        self._expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(cls, seconds: float,
              clock: Clock = time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now (the usual constructor)."""
        if seconds < 0:
            raise ValueError("deadline timeout must be non-negative")
        return cls(clock() + seconds, clock)

    # ------------------------------------------------------------------
    @property
    def expires_at(self) -> float:
        return self._expires_at

    def remaining(self) -> float:
        """Seconds left; negative once expired (callers clamp)."""
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` once the budget is gone."""
        if self.expired:
            suffix = f" during {where}" if where else ""
            raise DeadlineExceeded(
                f"deadline exceeded{suffix} "
                f"({-self.remaining() * 1000.0:.1f} ms over budget)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Deadline remaining={self.remaining() * 1000.0:.1f}ms>"


#: The ambient per-request deadline (None outside a request scope).
_CURRENT_DEADLINE: ContextVar[Deadline | None] = ContextVar(
    "repro_current_deadline", default=None)


def current_deadline() -> Deadline | None:
    """The deadline of the enclosing :func:`deadline_scope`, if any."""
    return _CURRENT_DEADLINE.get()


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[None]:
    """Publish ``deadline`` as the ambient deadline for the body.

    Scopes nest; the previous value is restored on exit. Passing
    ``None`` explicitly clears the ambient deadline for the body (e.g.
    a background compaction triggered from a request handler must not
    inherit the request's budget).
    """
    token = _CURRENT_DEADLINE.set(deadline)
    try:
        yield
    finally:
        _CURRENT_DEADLINE.reset(token)
