"""Lightweight runtime instrumentation (counters for hot paths).

The production north star needs the hot paths to be *observable*: the
bounded DIL cache (:mod:`repro.core.cache`) and the parallel index
builder (:mod:`repro.core.index.parallel`) report what they did through
a :class:`StatsRegistry` -- a thread-safe named-counter map -- so the
CLI and the benchmarks can print hit rates and shard counts without
reaching into private state.

Deliberately tiny: integer counters only, no sampling, no timers. A
counter increment is one lock acquisition; the registry is safe to
share across the worker threads of a parallel build or the request
threads of a server front-end.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

# ----------------------------------------------------------------------
# Canonical counter names of the resilience layer. One shared registry
# (usually the engine's) collects all of them, so a single
# ``render()`` line shows retries, degraded loads and injected faults
# side by side in ``--verbose`` CLI output.
# ----------------------------------------------------------------------
#: Transient storage faults observed (one per failed attempt).
RETRY_ATTEMPTS = "storage.retry.attempts"
#: Operations that succeeded after at least one retry.
RETRY_RECOVERIES = "storage.retry.recoveries"
#: Operations that exhausted their retry budget and re-raised.
RETRY_GIVEUPS = "storage.retry.giveups"
#: Posting lists rebuilt from the corpus after a load failure.
FALLBACK_REBUILDS = "engine.fallback.rebuilds"
#: Whole stores discarded (and served from the corpus) after failing
#: validation in degrade mode.
FALLBACK_STORE_DISCARDS = "engine.fallback.store_discards"
#: Successful store-metadata validations on load.
INTEGRITY_VALIDATIONS = "engine.integrity.validations"
#: Store-metadata validations that raised.
INTEGRITY_FAILURES = "engine.integrity.failures"
#: Faults injected by :class:`~repro.storage.faults.FaultInjectingStore`.
FAULTS_TRANSIENT = "faults.injected.transient"
FAULTS_CORRUPTION = "faults.injected.corruption"
FAULTS_LATENCY = "faults.injected.latency"
FAULTS_CRASHES = "faults.injected.crashes"


class StatsRegistry:
    """A thread-safe map of named monotonic counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name``; returns the new value."""
        with self._lock:
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
            return value

    def value(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never touched)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counters)

    def reset(self) -> None:
        """Zero every counter (between benchmark rounds)."""
        with self._lock:
            self._counters.clear()

    # ------------------------------------------------------------------
    def render(self, prefix: str | None = None) -> str:
        """One ``name=value`` line, sorted by name, for CLI output."""
        counters = self.snapshot()
        if prefix is not None:
            counters = {name: value for name, value in counters.items()
                        if name.startswith(prefix)}
        return " ".join(f"{name}={value}"
                        for name, value in sorted(counters.items()))


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time view of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int | None

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def render(self) -> str:
        capacity = "unbounded" if self.capacity is None else self.capacity
        return (f"hits={self.hits} misses={self.misses} "
                f"evictions={self.evictions} size={self.size} "
                f"capacity={capacity} hit_rate={self.hit_rate:.2f}")
