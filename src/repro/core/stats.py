"""Lightweight runtime instrumentation (counters + timers for hot paths).

The production north star needs the hot paths to be *observable*: the
bounded DIL cache (:mod:`repro.core.cache`) and the parallel index
builder (:mod:`repro.core.index.parallel`) report what they did through
a :class:`StatsRegistry` -- a thread-safe named-instrument map -- so the
CLI and the benchmarks can print hit rates and shard counts without
reaching into private state.

Two instrument kinds, both one lock acquisition per update, both safe
to share across the worker threads of a parallel build or the request
threads of a server front-end:

* **counters** -- named monotonic integers (:meth:`increment`, plus
  :meth:`increment_many` to land a whole batch under one acquisition);
* **timers** -- deterministic log-bucket histograms of durations
  (:meth:`observe` for a raw sample, :meth:`time` as a context
  manager), summarized as count/total/min/max/p50/p95/p99 by
  :meth:`timer`. The clock is injectable
  (:class:`~repro.core.obs.instruments.ManualClock`), so timer tests
  never touch wall-clock.

Span-level tracing lives one layer up in :mod:`repro.core.obs.tracer`;
a :class:`~repro.core.obs.tracer.Tracer` attached to a registry records
every finished span's duration here, unifying the two views.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Mapping

from .obs.instruments import (Clock, EMPTY_TIMER, LogBucketHistogram,
                              TimerStats, default_clock)

# ----------------------------------------------------------------------
# Canonical counter names of the resilience layer. One shared registry
# (usually the engine's) collects all of them, so a single
# ``render()`` line shows retries, degraded loads and injected faults
# side by side in ``--verbose`` CLI output.
# ----------------------------------------------------------------------
#: Transient storage faults observed (one per failed attempt).
RETRY_ATTEMPTS = "storage.retry.attempts"
#: Operations that succeeded after at least one retry.
RETRY_RECOVERIES = "storage.retry.recoveries"
#: Operations that exhausted their retry budget and re-raised.
RETRY_GIVEUPS = "storage.retry.giveups"
#: Posting lists rebuilt from the corpus after a load failure.
FALLBACK_REBUILDS = "engine.fallback.rebuilds"
#: Whole stores discarded (and served from the corpus) after failing
#: validation in degrade mode.
FALLBACK_STORE_DISCARDS = "engine.fallback.store_discards"
#: Successful store-metadata validations on load.
INTEGRITY_VALIDATIONS = "engine.integrity.validations"
#: Store-metadata validations that raised.
INTEGRITY_FAILURES = "engine.integrity.failures"
#: Documents the bounded top-k query mode skipped without merging
#: (missing a keyword, or upper-bounded below the heap minimum).
TOPK_DOCS_SKIPPED = "query.topk.docs_skipped"
#: Bounded-heap replacements during top-k queries (a result displaced
#: the then-worst of the k held entries).
TOPK_HEAP_EVICTIONS = "query.topk.heap_evictions"
#: Faults injected by :class:`~repro.storage.faults.FaultInjectingStore`.
FAULTS_TRANSIENT = "faults.injected.transient"
FAULTS_CORRUPTION = "faults.injected.corruption"
FAULTS_LATENCY = "faults.injected.latency"
FAULTS_CRASHES = "faults.injected.crashes"
#: Live (query-visible) segments of an incrementally grown index -- a
#: gauge maintained by delta increments (appends +1, compaction
#: collapses the count back to 1).
SEGMENTS_LIVE = "index.segments_live"
#: Tombstoned documents still held by some segment -- a gauge; drops
#: back to zero at compaction.
TOMBSTONES = "index.tombstones"
#: Documents appended across the lifecycle's lifetime.
APPEND_DOCS = "index.append.docs"
#: Keywords whose posting lists an append actually built.
APPEND_KEYWORDS_BUILT = "index.append.keywords_built"
#: Keywords an append proved untouched by the new documents and
#: skipped without building.
APPEND_KEYWORDS_SKIPPED = "index.append.keywords_skipped"
#: Segment compactions run to completion.
COMPACTIONS = "index.compactions"
#: Retry loops cut short because the next backoff sleep would have
#: overshot the caller's time budget or ambient request deadline.
RETRY_BUDGET_EXHAUSTED = "storage.retry.budget_exhausted"
#: Posting lists served as *lazy* compact blocks (zero-copy, postings
#: decoded per document on demand) from a block-capable store.
CODEC_LAZY_LISTS = "storage.codec.lazy_lists"
#: Posting lists a block-capable store could only serve eagerly (raw
#: records: lists the compact codec cannot represent).
CODEC_RAW_FALLBACKS = "storage.codec.raw_fallbacks"
#: OntoScore expansions served from the persisted expansion cache.
ONTOLOGY_CACHE_HITS = "ontology.cache.hits"
#: OntoScore expansions computed because the cache had no entry
#: (the expansion is written back afterwards).
ONTOLOGY_CACHE_MISSES = "ontology.cache.misses"
#: Cache generations discarded because the store's descriptor
#: (ontology fingerprint, strategy, expansion parameters) did not
#: match the attaching computation.
ONTOLOGY_CACHE_INVALIDATIONS = "ontology.cache.invalidations"

# ----------------------------------------------------------------------
# Narrative query front-end (repro.core.query.narrative).
# ----------------------------------------------------------------------
#: Narrative texts mapped into keyword queries.
NARRATIVE_QUERIES = "query.narrative.queries"
#: Candidate clinical phrases considered (in-vocabulary spans plus
#: out-of-vocabulary leftover runs).
NARRATIVE_PHRASES = "query.narrative.phrases"
#: Phrases whose text equals a concept's preferred term.
NARRATIVE_MAPPED_EXACT = "query.narrative.mapped_exact"
#: Phrases that matched a concept through a synonym.
NARRATIVE_MAPPED_SYNONYM = "query.narrative.mapped_synonym"
#: Out-of-vocabulary phrases rescued by the parent-term fallback (the
#: emitted keyword names an ancestor concept of the phrase's token
#: candidates).
NARRATIVE_MAPPED_PARENT = "query.narrative.mapped_parent"
#: Phrases no concept could be found for; their content tokens are
#: kept as plain keywords (never silently dropped).
NARRATIVE_KEYWORD_FALLBACKS = "query.narrative.keyword_fallbacks"
#: Mapped concepts trimmed by the specificity cap (``max_keywords``).
NARRATIVE_CONCEPTS_DROPPED = "query.narrative.concepts_dropped"

# ----------------------------------------------------------------------
# Serving-layer counters (repro.server; see docs/SERVING.md). One
# registry per server process collects them, and /metrics dumps the
# whole registry as JSON.
# ----------------------------------------------------------------------
#: Search requests that reached the /search route (leaders + followers).
SERVER_REQUESTS = "server.requests"
#: Search requests admitted to the worker pool (single-flight leaders).
SERVER_ADMITTED = "server.admitted"
#: Search requests rejected with 429 because every concurrency token
#: and queue slot was taken (load shedding).
SERVER_SHED = "server.shed"
#: Search requests that coalesced onto an identical in-flight query
#: (single-flight followers; they consume no worker and no token).
SERVER_COALESCED = "server.coalesced"
#: Responses served with at least one shard degraded (skipped by an
#: open circuit breaker or dropped after a storage failure).
SERVER_DEGRADED_RESPONSES = "server.degraded_responses"
#: 200 responses flagged partial: the deadline expired mid-merge and
#: the bounded evaluation returned what it had.
SERVER_PARTIAL_RESPONSES = "server.partial_responses"
#: Requests answered 504 because the deadline expired before any
#: servable result existed.
SERVER_DEADLINE_TIMEOUTS = "server.deadline_timeouts"
#: Unexpected handler exceptions answered 500.
SERVER_ERRORS = "server.errors"
#: Shard search failures recorded against a circuit breaker.
SERVER_BREAKER_FAILURES = "server.breaker.failures"
#: Breaker transitions closed/half-open -> open.
SERVER_BREAKER_TRIPS = "server.breaker.trips"
#: Probe requests allowed through a half-open breaker.
SERVER_BREAKER_PROBES = "server.breaker.probes"
#: Breaker transitions half-open -> closed (service recovered).
SERVER_BREAKER_RESETS = "server.breaker.resets"
#: Requests still in flight when a drain started and finished cleanly.
SERVER_DRAINED_INFLIGHT = "server.drained_inflight"
#: End-to-end /search leader latency (admission to response), as a
#: timer histogram (p50/p95/p99 on /metrics).
SERVER_REQUEST_SECONDS = "server.request_seconds"


class _TimeContext:
    """Context manager recording one elapsed duration into a timer."""

    __slots__ = ("_registry", "_name", "_started")

    def __init__(self, registry: "StatsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_TimeContext":
        self._started = self._registry.clock()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._registry.observe(self._name,
                               self._registry.clock() - self._started)
        return False


@dataclass(frozen=True)
class RegistrySnapshot:
    """One mutually consistent view of a registry: counters and timers
    captured under a single lock acquisition, stamped with the epoch
    they belong to. This is what ``/metrics`` serves -- a scrape never
    mixes counters from one epoch with timers from the next."""

    epoch: int
    counters: dict[str, int]
    timers: dict[str, TimerStats]


class StatsRegistry:
    """A thread-safe map of named counters and timer histograms.

    The registry is **epoched**: :meth:`reset` (and the atomic
    :meth:`drain`) advance a monotonic epoch counter, so a consumer
    appending periodic :meth:`snapshot_all` scrapes can tell a counter
    that went backwards because of a reset from one that was corrupted.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._timers: dict[str, LogBucketHistogram] = {}
        self._epoch = 0
        #: The duration source for :meth:`time`; inject a
        #: :class:`~repro.core.obs.instruments.ManualClock` in tests.
        self.clock = clock if clock is not None else default_clock()

    # ------------------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name``; returns the new value.

        One lock acquisition per call -- in a tight loop that bumps
        several counters, prefer :meth:`increment_many`.
        """
        with self._lock:
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
            return value

    def increment_many(self, amounts: Mapping[str, int]) -> None:
        """Add every ``name -> amount`` under one lock acquisition.

        The batch API for hot loops (e.g. a parallel-build shard flush)
        where per-counter locking would otherwise dominate: N counters
        cost one acquisition instead of N.
        """
        with self._lock:
            for name, amount in amounts.items():
                self._counters[name] = self._counters.get(name, 0) + amount

    def value(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never touched)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counters)

    @property
    def epoch(self) -> int:
        """Number of resets this registry has seen (0 when fresh)."""
        with self._lock:
            return self._epoch

    def snapshot_all(self) -> RegistrySnapshot:
        """Counters *and* timers captured under one lock acquisition.

        Unlike calling :meth:`snapshot` and :meth:`timers` separately,
        the two maps are guaranteed to belong to the same instant and
        the same epoch -- a concurrent writer (a live build, a request
        thread) can never land an update between the two halves of the
        scrape.
        """
        with self._lock:
            return RegistrySnapshot(
                epoch=self._epoch,
                counters=dict(self._counters),
                timers={name: histogram.snapshot()
                        for name, histogram in self._timers.items()})

    def drain(self) -> RegistrySnapshot:
        """Atomic snapshot-then-reset: the returned snapshot holds
        exactly the updates of the ending epoch -- summing drained
        counters across epochs loses nothing and double-counts nothing
        even with writers running concurrently."""
        with self._lock:
            snapshot = RegistrySnapshot(
                epoch=self._epoch,
                counters=dict(self._counters),
                timers={name: histogram.snapshot()
                        for name, histogram in self._timers.items()})
            self._counters.clear()
            self._timers.clear()
            self._epoch += 1
            return snapshot

    # ------------------------------------------------------------------
    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample into timer ``name``."""
        with self._lock:
            histogram = self._timers.get(name)
            if histogram is None:
                histogram = self._timers[name] = LogBucketHistogram()
            histogram.record(seconds)

    def time(self, name: str) -> _TimeContext:
        """Context manager timing its body into timer ``name``::

            with registry.time("query.dil_merge"):
                ...
        """
        return _TimeContext(self, name)

    def timer(self, name: str) -> TimerStats:
        """Summary of timer ``name`` (the empty summary when untouched)."""
        with self._lock:
            histogram = self._timers.get(name)
            if histogram is None:
                return EMPTY_TIMER
            return histogram.snapshot()

    def timers(self) -> dict[str, TimerStats]:
        """Point-in-time summaries of every timer."""
        with self._lock:
            return {name: histogram.snapshot()
                    for name, histogram in self._timers.items()}

    def reset(self) -> None:
        """Zero every counter and timer and advance the epoch
        (between benchmark rounds, or a metrics-scrape rotation)."""
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._epoch += 1

    # ------------------------------------------------------------------
    def render(self, prefix: str | None = None) -> str:
        """One ``name=value`` line, sorted by name, for CLI output."""
        counters = self.snapshot()
        if prefix is not None:
            counters = {name: value for name, value in counters.items()
                        if name.startswith(prefix)}
        return " ".join(f"{name}={value}"
                        for name, value in sorted(counters.items()))

    def render_timers(self, prefix: str | None = None) -> str:
        """One line per timer (sorted), empty string when none match."""
        timers = self.timers()
        if prefix is not None:
            timers = {name: stats for name, stats in timers.items()
                      if name.startswith(prefix)}
        return "\n".join(f"{name}: {timers[name].render()}"
                         for name in sorted(timers))


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time view of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int | None

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def render(self) -> str:
        capacity = "unbounded" if self.capacity is None else self.capacity
        return (f"hits={self.hits} misses={self.misses} "
                f"evictions={self.evictions} size={self.size} "
                f"capacity={capacity} hit_rate={self.hit_rate:.2f}")
