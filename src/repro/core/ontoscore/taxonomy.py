"""OntoScore strategy B: ontology as taxonomy (paper Sections IV-B, VI-B).

Only is-a links participate. From a node ``y`` with score ``OS(y)``, the
flow rules are:

* **downward** to each direct subclass ``c`` of ``y``: factor **1**.
  "Since y is a superclass of c, any query for y is completely and
  logically satisfied by c" -- the paper's first worked example:
  ``OS(Asthma, "Bronchus") = IRS(Disorder of Bronchus, "Bronchus")``
  with no attenuation, because Asthma is-a Disorder of Bronchus.
* **upward** to each direct superclass ``p`` of ``y``: factor
  ``1 / N_sub(p)`` where ``N_sub(p)`` is the number of direct
  subclasses of ``p`` -- a query for ``y`` is only *partially* satisfied
  by the more general ``p``, the partiality heuristic being the
  ObjectRank-style authority split over ``p``'s subclasses. This follows
  Section VI-B/VI-C's recursion ("divide by the number of incoming
  relationship edges" of the node being entered).

OCR ambiguity note: the paper's prose worked example attributes the
1/26 divisor to Asthma's own 26 subclasses while the recursion divides
by the in-degree of the *target*; we follow the recursion (see
DESIGN.md). The qualitative consequences the paper reports -- undecayed
expansion in one is-a direction, fast decay in the other, far-ancestor
matches that can hurt precision -- hold either way.
"""

from __future__ import annotations

from typing import Iterable

from ...ontology.model import Ontology
from .base import NodeId, OntoScoreComputer, SeedScorer


class TaxonomyOntoScore(OntoScoreComputer):
    """Is-a-only authority flow: full downward, split upward."""

    name = "taxonomy"

    def __init__(self, ontology: Ontology, seed_scorer: SeedScorer,
                 threshold: float = 0.1, exact: bool = True) -> None:
        super().__init__(seed_scorer, threshold=threshold, exact=exact)
        self._ontology = ontology

    def neighbors(self, node: NodeId) -> Iterable[tuple[NodeId, float]]:
        code = str(node)
        for child in self._ontology.children(code):
            yield child, 1.0
        for parent in self._ontology.parents(code):
            count = self._ontology.subclass_count(parent)
            yield parent, 1.0 / max(1, count)
