"""OntoScore computation: the three strategies of Section IV plus the
XRANK null strategy, over a shared pruned authority-flow engine."""

from .base import (NullOntoScore, OntoScoreComputer, SeedScorer,
                   best_first_expansion, level_order_expansion)
from .cache import OntoScoreCache, expansion_params
from .factory import make_ontoscore, make_seed_scorer
from .graph import GraphOntoScore, concept_seed_scorer
from .relationships import (MaterializedRelationshipsOntoScore,
                            RelationshipsOntoScore,
                            relationships_seed_scorer)
from .taxonomy import TaxonomyOntoScore

__all__ = [
    "GraphOntoScore", "MaterializedRelationshipsOntoScore",
    "NullOntoScore", "OntoScoreComputer", "RelationshipsOntoScore",
    "OntoScoreCache", "SeedScorer", "TaxonomyOntoScore",
    "best_first_expansion", "concept_seed_scorer", "expansion_params",
    "level_order_expansion", "make_ontoscore", "make_seed_scorer",
    "relationships_seed_scorer",
]
