"""Strategy factory: Section IV's approaches by name.

Maps the four strategy names of :mod:`repro.core.config` to configured
:class:`~repro.core.ontoscore.base.OntoScoreComputer` instances. Lived
inside the engine facade until the layering refactor; as a free
function the :class:`~repro.core.query.federated.FederatedEngine` and
:func:`~repro.core.query.engine.build_engines` can construct (and
share) computers without instantiating an engine.
"""

from __future__ import annotations

from ...ontology.model import Ontology
from ..config import (GRAPH, RELATIONSHIPS, TAXONOMY, XRANK,
                      XOntoRankConfig)
from .base import NullOntoScore, OntoScoreComputer, SeedScorer
from .graph import GraphOntoScore, concept_seed_scorer
from .relationships import (RelationshipsOntoScore,
                            relationships_seed_scorer)
from .taxonomy import TaxonomyOntoScore


def make_seed_scorer(strategy: str, ontology: Ontology,
                     config: XOntoRankConfig) -> SeedScorer:
    """The strategy's keyword→concept seed scorer (ontology-only, so
    one instance is shareable across engines and shards)."""
    if strategy == RELATIONSHIPS:
        return relationships_seed_scorer(
            ontology, k1=config.bm25_k1, b=config.bm25_b,
            ir_function=config.ir_function)
    if strategy in (GRAPH, TAXONOMY):
        return concept_seed_scorer(
            ontology, k1=config.bm25_k1, b=config.bm25_b,
            ir_function=config.ir_function)
    raise ValueError(f"strategy {strategy!r} has no seed scorer")


def make_ontoscore(strategy: str, ontology: Ontology | None,
                   config: XOntoRankConfig,
                   seed_scorer: SeedScorer | None = None,
                   ) -> OntoScoreComputer:
    """A configured OntoScore computer for ``strategy`` (Section IV)."""
    if strategy == XRANK:
        return NullOntoScore()
    if ontology is None:
        raise ValueError(
            f"strategy {strategy!r} needs an ontology; "
            f"use strategy='xrank' for ontology-free search")
    seeds = seed_scorer or make_seed_scorer(strategy, ontology, config)
    if strategy == GRAPH:
        return GraphOntoScore(ontology, seeds, decay=config.decay,
                              threshold=config.threshold,
                              exact=config.exact_expansion)
    if strategy == TAXONOMY:
        return TaxonomyOntoScore(ontology, seeds,
                                 threshold=config.threshold,
                                 exact=config.exact_expansion)
    if strategy == RELATIONSHIPS:
        return RelationshipsOntoScore(ontology, seeds, t=config.t,
                                      threshold=config.threshold,
                                      exact=config.exact_expansion)
    raise ValueError(f"unknown strategy {strategy!r}")
