"""OntoScore strategy A: ontology as undirected, unlabeled graph
(paper Sections IV-A and VI-A).

"This strategy treats the ontology as an undirected graph, with no
distinction among the different kinds of relationships between
concepts." Authority decays by the global ``decay`` factor on every hop
(Eq. 7): ``OS(c) = IRS(x, w) · decay^d(x, c)`` maximized over all seed
concepts ``x``, which is exactly what the shared expansion computes over
the per-hop factor ``decay``.
"""

from __future__ import annotations

from typing import Iterable

from ...ontology.model import Ontology
from .base import NodeId, OntoScoreComputer, SeedScorer


def concept_seed_scorer(ontology: Ontology, k1: float = 1.2,
                        b: float = 0.75,
                        ir_function: str = "bm25") -> SeedScorer:
    """Seed scorer over the ontology's concepts as IR documents."""
    return SeedScorer(((concept.code, concept.description_text())
                       for concept in ontology.concepts()), k1=k1, b=b,
                      ir_function=ir_function)


class GraphOntoScore(OntoScoreComputer):
    """Undirected-graph authority flow with uniform decay."""

    name = "graph"

    def __init__(self, ontology: Ontology, seed_scorer: SeedScorer,
                 decay: float = 0.5, threshold: float = 0.1,
                 exact: bool = True) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must lie in (0, 1]")
        super().__init__(seed_scorer, threshold=threshold, exact=exact)
        self._ontology = ontology
        self._decay = decay

    def neighbors(self, node: NodeId) -> Iterable[tuple[NodeId, float]]:
        for neighbor in self._ontology.neighbors(str(node)):
            yield neighbor, self._decay
