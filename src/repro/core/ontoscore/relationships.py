"""OntoScore strategy C: taxonomy + typed relationships via the DL view
(paper Sections IV-C and VI-C).

Every attribute triple ``(A, r, B)`` is read as ``A ⊑ ∃r.B``; the
restriction ``∃r.B`` becomes a node linked to ``B`` by a *dotted link*.
Flow rules on the transformed graph:

* solid is-a edges behave exactly as in the Taxonomy strategy
  (downward factor 1, upward factor 1/in-degree of the target);
* crossing a dotted link (either direction) multiplies by ``t``
  (Eq. 9).

In plain-graph terms (the implicit formulation of Section VI-C, which
"assigns OntoScores without having to physically create the ontological
graph with the existential role restrictions"):

* from ``B`` backward along a role edge to ``A``:
  ``OS(A) = t · OS(B)`` (dotted ``B → ∃r.B`` then down);
* from ``A`` forward along a role edge to ``B``:
  ``OS(B) = t · OS(A) / N(∃r.B)`` where ``N(∃r.B)`` "is the in-degree
  of the existential role restriction" (up then dotted).

Restrictions also carry the syntactic name ``Exists <r> <B>`` so the IR
seeds can match them directly.

Two interchangeable computers are provided: the lazy/implicit
:class:`RelationshipsOntoScore` and
:class:`MaterializedRelationshipsOntoScore`, which literally walks a
:class:`~repro.ontology.description_logic.DLView`. A property test
asserts they produce identical hash maps, as the paper claims ("The
assigned OntoScores are equal to the ones computed by building the
ontological graph").
"""

from __future__ import annotations

from typing import Iterable

from ...ontology.description_logic import (DLView, existential_code,
                                           existential_name)
from ...ontology.model import Ontology
from .base import NodeId, OntoScoreComputer, SeedScorer

_EXISTS_PREFIX = "exists:"


def relationships_seed_scorer(ontology: Ontology, k1: float = 1.2,
                              b: float = 0.75,
                              ir_function: str = "bm25") -> SeedScorer:
    """Seed scorer over concepts plus existential-restriction names.

    Enumerating the distinct ``(role, filler)`` pairs requires one scan
    of the relationship table, not a graph materialization.
    """
    def node_texts():
        for concept in ontology.concepts():
            yield concept.code, concept.description_text()
        seen: set[str] = set()
        for edge in ontology.relationships():
            if edge.type == "is-a":
                continue
            code = existential_code(edge.type, edge.destination)
            if code in seen:
                continue
            seen.add(code)
            filler = ontology.concept(edge.destination)
            yield code, existential_name(edge.type, filler.preferred_term)

    return SeedScorer(node_texts(), k1=k1, b=b,
                      ir_function=ir_function)


class RelationshipsOntoScore(OntoScoreComputer):
    """Implicit traversal of the DL view over the base ontology."""

    name = "relationships"

    def __init__(self, ontology: Ontology, seed_scorer: SeedScorer,
                 t: float = 0.5, threshold: float = 0.1,
                 exact: bool = True) -> None:
        if not 0.0 < t <= 1.0:
            raise ValueError("t must lie in (0, 1]")
        super().__init__(seed_scorer, threshold=threshold, exact=exact)
        self._ontology = ontology
        self._t = t

    # ------------------------------------------------------------------
    def neighbors(self, node: NodeId) -> Iterable[tuple[NodeId, float]]:
        code = str(node)
        if code.startswith(_EXISTS_PREFIX):
            yield from self._restriction_neighbors(code)
        else:
            yield from self._concept_neighbors(code)

    def _restriction_neighbors(self, code: str,
                               ) -> Iterable[tuple[NodeId, float]]:
        _, role, filler = code.split(":", 2)
        # Dotted link to the filler concept.
        yield filler, self._t
        # Down solid edges to every concept bearing (A, role, filler).
        for edge in self._ontology.incoming(filler, role):
            yield edge.source, 1.0

    def _concept_neighbors(self, code: str,
                           ) -> Iterable[tuple[NodeId, float]]:
        ontology = self._ontology
        # Taxonomy rules (identical to the Taxonomy strategy).
        for child in ontology.children(code):
            yield child, 1.0
        for parent in ontology.parents(code):
            yield parent, 1.0 / max(1, ontology.subclass_count(parent))
        # Up into each restriction this concept is subsumed by:
        # A ⊑ ∃r.B, factor 1/N(∃r.B).
        for edge in ontology.outgoing(code):
            restriction = existential_code(edge.type, edge.destination)
            in_degree = ontology.role_in_degree(edge.destination, edge.type)
            yield restriction, 1.0 / max(1, in_degree)
        # Dotted link from the filler side: B -- ∃r.B, factor t. Each
        # distinct (role) with incoming edges contributes one restriction.
        seen: set[str] = set()
        for edge in ontology.incoming(code):
            restriction = existential_code(edge.type, code)
            if restriction not in seen:
                seen.add(restriction)
                yield restriction, self._t

    # ------------------------------------------------------------------
    def postprocess(self, scores: dict[NodeId, float],
                    ) -> dict[NodeId, float]:
        """Documents reference concepts, not restrictions: drop the
        intermediate existential states from the hash map."""
        return {node: score for node, score in scores.items()
                if not str(node).startswith(_EXISTS_PREFIX)}


class MaterializedRelationshipsOntoScore(OntoScoreComputer):
    """The same strategy, run literally on a materialized DL view.

    Exists to validate the implicit computer (and for the ontology
    explorer example, where the transformed graph is inspectable).
    """

    name = "relationships-materialized"

    def __init__(self, view: DLView, seed_scorer: SeedScorer,
                 t: float = 0.5, threshold: float = 0.1,
                 exact: bool = True) -> None:
        if not 0.0 < t <= 1.0:
            raise ValueError("t must lie in (0, 1]")
        super().__init__(seed_scorer, threshold=threshold, exact=exact)
        self._view = view
        self._t = t

    def neighbors(self, node: NodeId) -> Iterable[tuple[NodeId, float]]:
        code = str(node)
        view = self._view
        for child in view.children(code):
            yield child, 1.0
        for parent in view.parents(code):
            yield parent, 1.0 / max(1, view.subclass_count(parent))
        for other in view.dotted(code):
            yield other, self._t

    def postprocess(self, scores: dict[NodeId, float],
                    ) -> dict[NodeId, float]:
        return {node: score for node, score in scores.items()
                if not self._view.node(str(node)).is_existential}
