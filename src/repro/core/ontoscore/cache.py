"""Persisted, versioned OntoScore expansion cache (the cache layer of
the ontology service).

OntoScore expansions are pure functions of ``(ontology content,
strategy, expansion parameters, keyword)`` -- yet every index build
recomputes every expansion from the in-memory graph, which is exactly
the cost the Table III / Figure 11 decade sweeps measure. This module
persists the expansions through any :class:`IndexStore`, keyed by a
*descriptor* combining the ontology's content fingerprint
(:meth:`~repro.ontology.model.Ontology.fingerprint`), the strategy
name, and the parameters that shape the flow. A store whose descriptor
does not match the attaching computation is **invalidated**: the cache
advances to a fresh generation (an epoch-suffixed posting namespace)
rather than serving scores from a different ontology or configuration.

Counters (``ontology.cache.hits`` / ``.misses`` / ``.invalidations``)
land in the engine's :class:`~repro.core.stats.StatsRegistry`, so a
``--verbose`` build prints the warm/cold ratio next to the DIL cache
stats.
"""

from __future__ import annotations

import json

from ...ir.tokenizer import Keyword
from ...storage.interface import IndexStore
from ..config import XOntoRankConfig
from ..stats import (ONTOLOGY_CACHE_HITS, ONTOLOGY_CACHE_INVALIDATIONS,
                     ONTOLOGY_CACHE_MISSES, StatsRegistry)

#: Bumped whenever the cached-entry encoding changes; part of the
#: descriptor, so old stores invalidate instead of misdecoding.
CACHE_VERSION = "XOC1"

_EPOCH_KEY = "onto.cache.{strategy}.epoch"
_DESCRIPTOR_KEY = "onto.cache.{strategy}.descriptor"

#: Sentinel posting distinguishing a *cached empty expansion* from a
#: cache miss (both read back as "no postings" otherwise). The empty
#: dewey cannot collide with a concept code.
_EMPTY_SENTINEL = ("", -1.0)


def expansion_params(config: XOntoRankConfig, *,
                     exact: bool | None = None) -> dict:
    """The configuration slice an expansion's output depends on.

    Anything that can change a score must appear here -- a parameter
    missing from the descriptor would let a stale cache serve wrong
    expansions silently.
    """
    return {
        "threshold": config.threshold,
        "decay": config.decay,
        "t": config.t,
        "ir_function": config.ir_function,
        "k1": config.bm25_k1,
        "b": config.bm25_b,
        "exact": config.exact_expansion if exact is None else exact,
    }


class OntoScoreCache:
    """Read-through/write-back cache of per-keyword expansion maps.

    One instance binds a store to one ``(fingerprint, strategy,
    params)`` descriptor. Attaching compares the store's recorded
    descriptor: a match reuses the current generation (warm); a
    mismatch advances the epoch so stale entries become unreachable
    (counted as an invalidation); a fresh store starts at epoch one.
    """

    def __init__(self, store: IndexStore, fingerprint: str,
                 strategy: str, params: dict,
                 stats: StatsRegistry | None = None) -> None:
        self._store = store
        self._stats = stats if stats is not None else StatsRegistry()
        self.strategy = strategy
        self.descriptor = json.dumps(
            {"version": CACHE_VERSION, "fingerprint": fingerprint,
             "strategy": strategy, "params": params},
            sort_keys=True, separators=(",", ":"))
        descriptor_key = _DESCRIPTOR_KEY.format(strategy=strategy)
        epoch_key = _EPOCH_KEY.format(strategy=strategy)
        recorded = store.get_metadata(descriptor_key)
        epoch = int(store.get_metadata(epoch_key, "0") or "0")
        if recorded == self.descriptor:
            self.invalidated = False
        else:
            if recorded is not None:
                self._stats.increment(ONTOLOGY_CACHE_INVALIDATIONS)
            self.invalidated = recorded is not None
            epoch += 1
            store.put_metadata_many([(descriptor_key, self.descriptor),
                                     (epoch_key, str(epoch))])
        self._namespace = f"onto.cache.{strategy}.{epoch}"
        self.epoch = epoch

    @property
    def store(self) -> IndexStore:
        return self._store

    @property
    def stats(self) -> StatsRegistry:
        return self._stats

    # ------------------------------------------------------------------
    @staticmethod
    def _key(keyword: Keyword) -> str:
        # Mirrors repro.core.index.dil.index_key (kept local: the
        # index package imports this package during init): phrases are
        # quoted so "asthma" and asthma stay distinct entries.
        return (f'"{keyword.text}"' if keyword.is_phrase
                else keyword.text)

    def get(self, keyword: Keyword) -> dict[str, float] | None:
        """The cached expansion map, or ``None`` on a miss."""
        postings = self._store.get_postings(self._namespace,
                                            self._key(keyword))
        if not postings:
            self._stats.increment(ONTOLOGY_CACHE_MISSES)
            return None
        self._stats.increment(ONTOLOGY_CACHE_HITS)
        if list(postings) == [_EMPTY_SENTINEL]:
            return {}
        return {code: score for code, score in postings}

    def put(self, keyword: Keyword, scores: dict[str, float]) -> None:
        """Write back one keyword's expansion (empty maps included)."""
        if scores:
            postings = sorted(
                ((str(code), float(score))
                 for code, score in scores.items()),
                key=lambda item: ((0, len(item[0]), item[0])
                                  if item[0].isdigit()
                                  else (1, 0, item[0])))
        else:
            postings = [_EMPTY_SENTINEL]
        self._store.put_postings(self._namespace, self._key(keyword),
                                 postings)

    def close(self) -> None:
        self._store.close()
