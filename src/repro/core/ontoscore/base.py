"""Shared machinery of the OntoScore computers (paper Sections IV & VI).

OntoScore quantifies the semantic relevance of an ontology concept to a
query keyword by *authority flow*: concepts textually matching the
keyword are seeded with their (normalized) IR score, and authority then
flows along ontology edges under strategy-specific rules, shrinking at
every step (all edge factors lie in (0, 1]) until it falls below the
pruning ``threshold``. Multiple arrivals at a node combine with ``max``
(Eq. 6 / Observation 1).

Two expansion engines are provided:

* :func:`best_first_expansion` -- a max-heap (Dijkstra-style) search.
  Because factors never exceed 1, finalizing nodes in decreasing score
  order yields the *exact* max-product fixpoint.
* :func:`level_order_expansion` -- the paper's literal merged parallel
  BFS (Algorithm 1 with the Observation 1 optimization): a FIFO queue
  where a node expands at the first score it is reached with and later,
  better arrivals update the stored score but do not re-expand. For
  uniform factors (the Graph strategy) this equals best-first; for the
  non-uniform Taxonomy/Relationships factors it can under-approximate.
  The ablation benchmark quantifies the gap.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Hashable, Iterable

from ...ir.bm25 import BM25Scorer
from ...ir.inverted_index import PositionalIndex
from ...ir.tfidf import TfIdfScorer
from ...ir.tokenizer import Keyword
from ..obs.tracer import NULL_TRACER

NodeId = Hashable

#: Neighbor function: node -> iterable of (neighbor, edge factor).
NeighborFn = Callable[[NodeId], Iterable[tuple[NodeId, float]]]


def best_first_expansion(seeds: dict[NodeId, float],
                         neighbors: NeighborFn,
                         threshold: float) -> dict[NodeId, float]:
    """Exact max-product authority flow from ``seeds``.

    Returns every node whose final score exceeds ``threshold``. Seeds
    below the threshold still participate (they may be unreachable
    otherwise) but are dropped from the result, matching Algorithm 1's
    "stop BFS expansion" rule.
    """
    scores, _ = best_first_expansion_traced(seeds, neighbors, threshold)
    return scores


def best_first_expansion_traced(
        seeds: dict[NodeId, float], neighbors: NeighborFn,
        threshold: float,
        ) -> tuple[dict[NodeId, float], dict[NodeId, NodeId | None]]:
    """:func:`best_first_expansion` plus flow provenance.

    The second mapping records, for every finalized node, the neighbor
    its final score flowed in from (``None`` for nodes whose own seed
    won) -- following it backwards reconstructs the maximum-product path
    to a seed, which powers the engine's ``explain`` API.
    """
    _check_threshold(threshold)
    finalized: dict[NodeId, float] = {}
    predecessors: dict[NodeId, NodeId | None] = {}
    heap: list[tuple[float, int, NodeId]] = []
    entries: list[NodeId | None] = []  # heap-entry index -> origin node
    counter = 0  # tie-breaker keeping heap comparisons off NodeId
    for node, score in seeds.items():
        if score > 0.0:
            heap.append((-score, counter, node))
            entries.append(None)
            counter += 1
    heapq.heapify(heap)
    while heap:
        negative_score, entry_index, node = heapq.heappop(heap)
        score = -negative_score
        if node in finalized:
            continue  # already finalized at an equal-or-better score
        finalized[node] = score
        predecessors[node] = entries[entry_index]
        if score <= threshold:
            continue  # node keeps its score but does not expand further
        for neighbor, factor in neighbors(node):
            if not 0.0 < factor <= 1.0:
                raise ValueError(f"edge factor {factor} outside (0, 1]")
            propagated = score * factor
            if propagated > threshold and neighbor not in finalized:
                heapq.heappush(heap, (-propagated, counter, neighbor))
                entries.append(node)
                counter += 1
    pruned = {node: score for node, score in finalized.items()
              if score > threshold}
    return pruned, {node: predecessors[node] for node in pruned}


def level_order_expansion(seeds: dict[NodeId, float],
                          neighbors: NeighborFn,
                          threshold: float) -> dict[NodeId, float]:
    """The paper's merged parallel BFS (Algorithm 1 + Observation 1)."""
    _check_threshold(threshold)
    scores: dict[NodeId, float] = {}
    expanded: set[NodeId] = set()
    queue: deque[NodeId] = deque()
    for node, score in seeds.items():
        if score > 0.0:
            scores[node] = max(scores.get(node, 0.0), score)
    queue.extend(sorted(scores, key=lambda node: -scores[node]))
    while queue:
        node = queue.popleft()
        if node in expanded:
            continue
        expanded.add(node)
        score = scores[node]
        if score <= threshold:
            continue
        for neighbor, factor in neighbors(node):
            if not 0.0 < factor <= 1.0:
                raise ValueError(f"edge factor {factor} outside (0, 1]")
            propagated = score * factor
            if propagated <= threshold:
                continue
            previous = scores.get(neighbor, 0.0)
            if propagated > previous:
                scores[neighbor] = propagated
            if neighbor not in expanded:
                queue.append(neighbor)
    return {node: score for node, score in scores.items()
            if score > threshold}


def make_scorer(index: PositionalIndex, ir_function: str,
                k1: float = 1.2, b: float = 0.75):
    """Instantiate the configured IR function over an index.

    The paper's framework is parametric in the IR function ("popular IR
    functions [17], [19], [20]"; their experiments use BM25).
    """
    if ir_function == "bm25":
        return BM25Scorer(index, k1=k1, b=b)
    if ir_function == "tfidf":
        return TfIdfScorer(index)
    raise ValueError(f"unknown IR function {ir_function!r}")


def _check_threshold(threshold: float) -> None:
    if not 0.0 <= threshold < 1.0:
        raise ValueError("threshold must lie in [0, 1)")


class SeedScorer:
    """Per-keyword normalized IR scores over ontology nodes.

    "Initially, each concept in the ontology is granted a certain
    authority based on how strongly it is related to w, as measured by
    its IR score" (Section IV). Nodes are indexed once by their textual
    description; per-keyword scores are max-normalized into (0, 1].
    """

    def __init__(self, node_texts: Iterable[tuple[NodeId, str]],
                 k1: float = 1.2, b: float = 0.75,
                 ir_function: str = "bm25") -> None:
        self._index = PositionalIndex()
        for node, text in node_texts:
            self._index.add(node, text)
        self._scorer = make_scorer(self._index, ir_function, k1=k1, b=b)
        self._cache: dict[Keyword, dict[NodeId, float]] = {}

    def seeds(self, keyword: Keyword) -> dict[NodeId, float]:
        """Normalized seed scores of every node matching ``keyword``."""
        cached = self._cache.get(keyword)
        if cached is None:
            cached = self._scorer.normalized_scores(keyword)
            self._cache[keyword] = cached
        return dict(cached)

    @property
    def index(self) -> PositionalIndex:
        return self._index


class OntoScoreComputer(ABC):
    """One OntoScore strategy: seeds + strategy-specific flow rules.

    Subclasses define the node universe (via the seed scorer they are
    built with) and :meth:`neighbors`. :meth:`compute` returns the
    OntoScore hash-map slice for one keyword -- the paper's
    ``H[(c, w)] -> OS`` restricted to concepts above threshold.
    """

    #: Name used to namespace index storage ("graph", "taxonomy", ...).
    name: str = ""

    #: Span tracer for the expansion hot path; the engine re-points
    #: this at its own tracer when profiling is on (the class default
    #: is the zero-cost disabled singleton).
    tracer = NULL_TRACER

    def __init__(self, seed_scorer: SeedScorer, threshold: float = 0.1,
                 exact: bool = True) -> None:
        self._seed_scorer = seed_scorer
        self._threshold = threshold
        self._exact = exact
        self._cache: dict[Keyword, dict[NodeId, float]] = {}
        self._persistent_cache = None
        self._trace_cache: dict[
            Keyword, tuple[dict[NodeId, float],
                           dict[NodeId, NodeId | None]]] = {}

    # ------------------------------------------------------------------
    @abstractmethod
    def neighbors(self, node: NodeId) -> Iterable[tuple[NodeId, float]]:
        """Strategy-specific outgoing flow edges of ``node``."""

    def postprocess(self, scores: dict[NodeId, float],
                    ) -> dict[NodeId, float]:
        """Hook: map expansion-state scores to concept scores.

        The default keeps everything; the Relationships strategies drop
        the intermediate existential states here (documents can only
        reference real concepts).
        """
        return scores

    def attach_persistent_cache(self, cache) -> None:
        """Read expansions through a persisted
        :class:`~repro.core.ontoscore.cache.OntoScoreCache`.

        The in-memory per-keyword cache stays in front (one store read
        per keyword per computer lifetime); on a persistent miss the
        freshly computed expansion is written back, so the next build
        against the same ontology/strategy/parameters starts warm. The
        caller is responsible for binding the cache to this computer's
        strategy and parameters -- the cache's descriptor check only
        protects against *stores* from other configurations.
        """
        self._persistent_cache = cache

    # ------------------------------------------------------------------
    def compute(self, keyword: Keyword) -> dict[NodeId, float]:
        """OntoScores of all concepts for ``keyword`` (above threshold)."""
        cached = self._cache.get(keyword)
        if cached is None and self._persistent_cache is not None:
            cached = self._persistent_cache.get(keyword)
            if cached is not None:
                self._cache[keyword] = cached
        if cached is None:
            with self.tracer.span("ontoscore.expand",
                                  keyword=keyword.text,
                                  strategy=self.name or "null") as span:
                with self.tracer.span("ontoscore.seeds",
                                      keyword=keyword.text):
                    seeds = self._seed_scorer.seeds(keyword)
                expand = (best_first_expansion if self._exact
                          else level_order_expansion)
                scores = expand(seeds, self.neighbors, self._threshold)
                cached = self.postprocess(scores)
                span.annotate(
                    algorithm=("best_first" if self._exact
                               else "level_order"),
                    seeds=len(seeds), concepts=len(cached))
            if self._persistent_cache is not None:
                self._persistent_cache.put(keyword, cached)
            self._cache[keyword] = cached
        return dict(cached)

    def score(self, concept: NodeId, keyword: Keyword) -> float:
        """OntoScore of one concept (0.0 when below threshold)."""
        return self.compute(keyword).get(concept, 0.0)

    def flow_path(self, concept: NodeId,
                  keyword: Keyword) -> list[NodeId] | None:
        """The maximum-product authority path from a seed to ``concept``.

        Returns the node sequence seed-first (it may pass through
        intermediate states such as existential restrictions), or
        ``None`` when the concept received no OntoScore for the keyword.
        Paths always follow the exact best-first expansion -- the
        explanation of *why* a score exists is well-defined even when
        :attr:`exact` is off for the scores themselves.
        """
        traced = self._trace_cache.get(keyword)
        if traced is None:
            seeds = self._seed_scorer.seeds(keyword)
            traced = best_first_expansion_traced(seeds, self.neighbors,
                                                 self._threshold)
            self._trace_cache[keyword] = traced
        _, predecessors = traced
        if concept not in predecessors:
            return None
        path: list[NodeId] = []
        current: NodeId | None = concept
        while current is not None:
            path.append(current)
            current = predecessors.get(current)
        path.reverse()
        return path

    @property
    def threshold(self) -> float:
        return self._threshold


class NullOntoScore(OntoScoreComputer):
    """The XRANK baseline: no ontology, every OntoScore is zero."""

    name = "xrank"

    def __init__(self) -> None:
        super().__init__(SeedScorer(()), threshold=0.0)

    def neighbors(self, node: NodeId) -> Iterable[tuple[NodeId, float]]:
        return ()

    def compute(self, keyword: Keyword) -> dict[NodeId, float]:
        return {}
