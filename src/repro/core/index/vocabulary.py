"""Indexing vocabulary construction (paper Sections V-B and VII-B).

The full Vocabulary is "the union of words in the ontological systems
and in documents in D" -- millions of words for the real SNOMED, which
is why the paper's experiments index a subset: "all the keywords in the
CDA documents and all keywords contained in a concept up to 2
relationships away from a concept referenced in a CDA document". Both
policies are implemented here.
"""

from __future__ import annotations

from collections import deque

from ...ir.tokenizer import DEFAULT_STOPWORDS, tokenize_without_stopwords
from ...ontology.model import Ontology
from ...xmldoc.model import Corpus, TextPolicy


def corpus_vocabulary(corpus: Corpus,
                      text_policy: TextPolicy | None = None,
                      stopwords: frozenset[str] = DEFAULT_STOPWORDS,
                      ) -> set[str]:
    """All distinct indexable words in the documents' textual
    descriptions."""
    words: set[str] = set()
    for document in corpus:
        for node in document.iter():
            words.update(tokenize_without_stopwords(
                node.textual_description(text_policy), stopwords))
    return words


def referenced_concepts(corpus: Corpus, ontology: Ontology) -> set[str]:
    """Concept codes of the search ontology referenced by the corpus."""
    codes: set[str] = set()
    for document in corpus:
        for node in document.code_nodes():
            reference = node.reference
            if (reference is not None
                    and reference.system_code == ontology.system_code
                    and reference.concept_code in ontology):
                codes.add(reference.concept_code)
    return codes


def concepts_within_radius(ontology: Ontology, start_codes: set[str],
                           radius: int) -> set[str]:
    """Concepts within ``radius`` relationship hops of ``start_codes``.

    Hops follow any relationship, in either direction (the paper counts
    "up to 2 relationships away" without qualifying the type).
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    reached = set(start_codes)
    frontier = deque((code, 0) for code in start_codes)
    while frontier:
        code, distance = frontier.popleft()
        if distance == radius:
            continue
        for neighbor in ontology.neighbors(code):
            if neighbor not in reached:
                reached.add(neighbor)
                frontier.append((neighbor, distance + 1))
    return reached


def concept_vocabulary(ontology: Ontology, codes: set[str],
                       stopwords: frozenset[str] = DEFAULT_STOPWORDS,
                       ) -> set[str]:
    """Distinct indexable words of the given concepts' descriptions."""
    words: set[str] = set()
    for code in codes:
        words.update(tokenize_without_stopwords(
            ontology.concept(code).description_text(), stopwords))
    return words


def experiment_vocabulary(corpus: Corpus, ontology: Ontology,
                          radius: int = 2,
                          text_policy: TextPolicy | None = None,
                          ) -> set[str]:
    """The paper's experimental indexing subset (Section VII-B).

    Words in the CDA documents, plus words of every concept up to
    ``radius`` relationships away from a concept the corpus references.
    """
    words = corpus_vocabulary(corpus, text_policy)
    reachable = concepts_within_radius(
        ontology, referenced_concepts(corpus, ontology), radius)
    words |= concept_vocabulary(ontology, reachable)
    return words


def full_vocabulary(corpus: Corpus, ontology: Ontology,
                    text_policy: TextPolicy | None = None) -> set[str]:
    """Section V-B's complete Vocabulary: documents ∪ whole ontology."""
    words = corpus_vocabulary(corpus, text_policy)
    words |= concept_vocabulary(ontology, set(ontology.concept_codes()))
    return words
