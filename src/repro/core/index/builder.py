"""The Index Creation Module (paper Section V-B).

Builds XOnto-DILs in the paper's three stages:

1. **Full-text indexing** -- the corpus's elements and the ontology's
   concepts are indexed as IR documents (shared across strategies; done
   by the :class:`~repro.core.scoring.ElementIndex` and the strategy's
   seed scorer, both passed in).
2. **OntoScore computation** -- for each keyword, the strategy's
   authority-flow expansion produces the hash-map slice
   ``(concept, keyword) → OS`` above threshold.
3. **DIL creation** -- Eq. 5 combines per-element IR scores with the
   OntoScores of referenced concepts into NodeScores; nonzero NodeScores
   become postings, sorted by Dewey ID.

The builder measures per-keyword creation time, posting counts and list
sizes -- the three columns of Table III.
"""

from __future__ import annotations

import time
from typing import Iterable

from ...ir.tokenizer import Keyword
from ..obs.tracer import NULL_TRACER
from ..ontoscore.base import OntoScoreComputer
from ..scoring import ElementIndex, NodeScorer
from .dil import (DeweyInvertedList, KeywordBuildStats, Posting,
                  XOntoDILIndex)


class IndexBuilder:
    """Builds the XOnto-DIL index of one strategy."""

    def __init__(self, element_index: ElementIndex,
                 ontoscore: OntoScoreComputer,
                 node_weights: dict | None = None, tracer=None) -> None:
        self._elements = element_index
        self._ontoscore = ontoscore
        self._tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None:
            ontoscore.tracer = tracer
        self._node_scorer = NodeScorer(element_index, ontoscore,
                                       node_weights=node_weights,
                                       tracer=self._tracer)

    # ------------------------------------------------------------------
    def build_keyword(self, keyword: Keyword,
                      ) -> tuple[DeweyInvertedList, KeywordBuildStats]:
        """Stages 2+3 for a single keyword, with measurements."""
        with self._tracer.span("index.build_keyword",
                               keyword=keyword.text) as span:
            started = time.perf_counter()
            onto_entries = len(self._ontoscore.compute(keyword))
            node_scores = self._node_scorer.node_scores(keyword)
            postings = [Posting(dewey, score)
                        for dewey, score in node_scores.items()
                        if score > 0.0]
            dil = DeweyInvertedList(keyword, postings)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            stats = KeywordBuildStats(
                keyword=keyword.text, creation_time_ms=elapsed_ms,
                posting_count=len(dil), size_bytes=dil.size_bytes(),
                ontology_entries=onto_entries)
            span.annotate(postings=len(dil),
                          ontology_entries=onto_entries)
        return dil, stats

    def build(self, vocabulary: Iterable[str],
              strategy_name: str | None = None) -> XOntoDILIndex:
        """Build DILs for every word of ``vocabulary``."""
        index = XOntoDILIndex(
            strategy=strategy_name or self._ontoscore.name)
        for word in sorted(set(vocabulary)):
            keyword = Keyword.from_text(word)
            dil, stats = self.build_keyword(keyword)
            index.add(dil, stats)
        return index

    # ------------------------------------------------------------------
    @property
    def element_index(self) -> ElementIndex:
        return self._elements

    @property
    def ontoscore(self) -> OntoScoreComputer:
        return self._ontoscore

    @property
    def node_scorer(self) -> NodeScorer:
        return self._node_scorer
