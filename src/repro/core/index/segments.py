"""Incremental (LSM-style) index maintenance over a persisted store.

The classic lifecycle pays a whole-corpus rebuild for every new CDA
document. :class:`SegmentLifecycle` replaces that with log-structured
maintenance on top of :mod:`repro.storage.segments`:

* **append** -- new documents become one immutable segment: posting
  lists scoped to the new documents, written into a fresh namespace,
  published by a single catalog write. Keywords already held by older
  segments are re-built *only* when the new documents can actually
  touch them (their tokens appear in the new text, or they reach a
  concept a new code node resolves to) -- a provably exact filter,
  since a keyword failing both tests has NodeScore zero on every new
  element. Keywords new to the index are backfilled over all live
  documents into the same segment.
* **remove** -- a tombstone: the document leaves the catalog's live
  set (one metadata write); its rows linger, masked, until compaction.
* **compact** -- folds every live segment into one via the
  ``heapq.merge`` newest-wins posting merge, commits the new catalog,
  then garbage-collects dead namespaces, tombstoned document rows and
  any orphans from crashed mutations.

**Statistics epochs.** NodeScores embed corpus-global BM25 statistics
(element count, document frequencies, per-keyword normalization), so a
segment's scores are pinned to the statistics *epoch* it was written
under. When an appended document is already part of the engine's
scoring substrate (the pinned-universe configuration the differential
tests build, and the CLI path where the engine loads the whole data
directory), every segment shares one epoch and the segmented index is
byte-identical to a from-scratch build. When the substrate has to grow
at append time, older segments keep their older epoch until the next
full rebuild -- the documented departure from the paper's static
Table III builds (see docs/PAPER_MAP.md).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Sequence

from ...ir.tokenizer import Keyword, tokenize
from ...storage.interface import IndexStore
from ...storage.manifest import (CHECKSUM_KEY_PREFIX,
                                 CORPUS_FINGERPRINT_KEY,
                                 corpus_fingerprint, postings_checksum,
                                 require_complete, store_checksum)
from ...storage.errors import IncompatibleIndexError
from ...storage.segments import (SegmentCatalog, SegmentRecord,
                                 load_catalog, merged_lists,
                                 merged_postings, save_catalog,
                                 segment_namespace)
from ...xmldoc.model import Corpus, XMLDocument
from ...xmldoc.serializer import serialize
from ..config import XRANK
from ..obs.tracer import NULL_TRACER
from ..stats import (APPEND_DOCS, APPEND_KEYWORDS_BUILT,
                     APPEND_KEYWORDS_SKIPPED, COMPACTIONS,
                     SEGMENTS_LIVE, TOMBSTONES)
from .dil import DeweyInvertedList, index_key, keyword_from_key
from .vocabulary import corpus_vocabulary, experiment_vocabulary


def _clear_namespace(store: IndexStore, namespace: str) -> None:
    """Drop every posting row of a namespace (orphans of a crashed
    mutation that targeted the same segment id)."""
    for keyword in list(store.keywords(namespace)):
        store.put_postings(namespace, keyword, ())


def compact_store(store: IndexStore, tracer=None) -> SegmentCatalog | None:
    """Fold a segmented store's live segments into one.

    Pure merge, no rescoring: the logical index (and therefore
    ``canonical_dump``) is byte-identical before and after. Returns the
    new catalog, or ``None`` when the store holds no segment catalog.
    The single ``save_catalog`` write is the commit point; everything
    after it is garbage collection that a crash can only leave as
    harmless orphans for the *next* compaction.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    catalog = load_catalog(store)
    if catalog is None:
        return None
    with tracer.span("index.compact",
                     segments=len(catalog.segments)) as span:
        lists = merged_lists(store, catalog)
        namespace = segment_namespace(catalog.strategy, catalog.next_id)
        _clear_namespace(store, namespace)
        for keyword in sorted(lists):
            store.put_postings(namespace, keyword, lists[keyword])
        record = SegmentRecord(segment_id=catalog.next_id,
                               namespace=namespace,
                               doc_ids=tuple(catalog.live),
                               checksum=postings_checksum(lists))
        compacted = SegmentCatalog(
            strategy=catalog.strategy, next_id=catalog.next_id + 1,
            live=catalog.live,
            live_fingerprint=catalog.live_fingerprint,
            segments=(record,))
        save_catalog(store, compacted)  # <-- the commit point
        # Post-commit GC: dead namespaces, tombstoned/orphaned document
        # rows, and the plain manifest entries brought back in sync
        # with the logical index.
        for old in catalog.segments:
            _clear_namespace(store, old.namespace)
        for doc_id in sorted(set(store.document_ids())
                             - catalog.live_set):
            store.delete_document(doc_id)
        store.put_metadata(CHECKSUM_KEY_PREFIX + catalog.strategy,
                           record.checksum)
        store.put_metadata(CORPUS_FINGERPRINT_KEY,
                           catalog.live_fingerprint)
        span.annotate(keywords=len(lists),
                      tombstones_reclaimed=catalog.tombstone_count)
    return compacted


class SegmentLifecycle:
    """Incremental add/remove/compact over one manager + one store."""

    def __init__(self, manager, store: IndexStore) -> None:
        if manager.config.use_elemrank:
            raise ValueError(
                "incremental indexing does not support use_elemrank: "
                "ElemRank weights are whole-corpus and would silently "
                "drift across segments")
        self.manager = manager
        self.store = store
        require_complete(store)
        self._check_parameters(store)
        catalog = load_catalog(store)
        if catalog is None:
            catalog = self._bootstrap_catalog(store)
        if catalog.strategy != manager.strategy:
            raise IncompatibleIndexError(
                f"segment catalog was built for strategy "
                f"{catalog.strategy!r}, engine runs "
                f"{manager.strategy!r}")
        self.catalog = catalog
        #: doc_id -> serialized XML of every document any segment holds
        #: (live or tombstoned) -- the content ledger behind re-add
        #: checks and cheap live-fingerprint recomputation.
        self.universe_texts: dict[int, str] = {
            doc_id: store.get_document(doc_id)
            for doc_id in sorted(catalog.segment_doc_ids())}
        self._keys: set[str] | None = None
        self._check_corpus_matches_live()
        self.manager.stats.increment_many({
            SEGMENTS_LIVE: len(catalog.segments),
            TOMBSTONES: catalog.tombstone_count})

    # ------------------------------------------------------------------
    # Bootstrap / validation
    # ------------------------------------------------------------------
    def _check_parameters(self, store: IndexStore) -> None:
        manager = self.manager
        stored_strategy = store.get_metadata("strategy")
        if stored_strategy != manager.strategy:
            raise IncompatibleIndexError(
                f"index store was built for strategy {stored_strategy!r}, "
                f"engine runs {manager.strategy!r}")
        for name, expected in (("decay", manager.config.decay),
                               ("threshold", manager.config.threshold),
                               ("t", manager.config.t)):
            raw = store.get_metadata(name)
            try:
                stored = None if raw is None else float(raw)
            except ValueError:
                stored = None
            if stored != expected:
                raise IncompatibleIndexError(
                    f"index store was built with {name}={raw}, "
                    f"engine is configured with {name}={expected}")

    def _bootstrap_catalog(self, store: IndexStore) -> SegmentCatalog:
        """Adopt a classic full build as segment 0 of a new catalog."""
        strategy = self.manager.strategy
        doc_ids = tuple(store.document_ids())
        checksum = store.get_metadata(CHECKSUM_KEY_PREFIX + strategy)
        if checksum is None:
            checksum = store_checksum(store, strategy)
        fingerprint = store.get_metadata(CORPUS_FINGERPRINT_KEY)
        if fingerprint is None:
            fingerprint = corpus_fingerprint(
                (doc_id, store.get_document(doc_id))
                for doc_id in doc_ids)
        catalog = SegmentCatalog(
            strategy=strategy, next_id=1, live=doc_ids,
            live_fingerprint=fingerprint,
            segments=(SegmentRecord(segment_id=0, namespace=strategy,
                                    doc_ids=doc_ids, checksum=checksum),))
        save_catalog(store, catalog)
        return catalog

    def _check_corpus_matches_live(self) -> None:
        """Every live document must be present in the engine's corpus
        with identical content (the corpus may hold *more* -- documents
        staged for append, as when the CLI loads the whole data
        directory)."""
        corpus = self.manager.corpus
        pairs = []
        for doc_id in sorted(self.catalog.live_set):
            if doc_id not in corpus:
                raise IncompatibleIndexError(
                    f"store's live document {doc_id} is missing from "
                    f"the engine's corpus")
            pairs.append((doc_id, serialize(corpus.get(doc_id))))
        if corpus_fingerprint(pairs) != self.catalog.live_fingerprint:
            raise IncompatibleIndexError(
                "engine corpus differs from the store's live documents "
                "(live-corpus fingerprint mismatch)")

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def _builder(self):
        """The unscoped builder: the lifecycle applies its own
        per-operation document scoping, so a shard-scoped wrapper is
        unwrapped to the shared corpus-global builder underneath."""
        builder = self.manager.builder
        return getattr(builder, "inner", builder)

    def known_keys(self) -> set[str]:
        """Union of the index keys held by any live segment."""
        if self._keys is None:
            keys: set[str] = set()
            for record in self.catalog.segments:
                keys.update(self.store.keywords(record.namespace))
            self._keys = keys
        return self._keys

    def _commit(self, catalog: SegmentCatalog) -> None:
        save_catalog(self.store, catalog)
        self.catalog = catalog
        self._keys = None
        self.manager.dil_cache.clear()

    def _live_fingerprint(self, live: Iterable[int]) -> str:
        return corpus_fingerprint((doc_id, self.universe_texts[doc_id])
                                  for doc_id in sorted(live))

    # ------------------------------------------------------------------
    # Query-time view
    # ------------------------------------------------------------------
    def build_dil(self, keyword: Keyword) -> DeweyInvertedList:
        """The keyword's *logical* DIL: live segments merged newest-wins
        with tombstones masked; an on-demand scoped build for keywords
        no segment has indexed."""
        key = index_key(keyword)
        if key in self.known_keys():
            with self.manager.tracer.span(
                    "query.segment_merge", keyword=keyword.text,
                    segments=len(self.catalog.segments)) as span:
                rows = merged_postings(self.store, self.catalog, key)
                span.annotate(postings=len(rows))
            return DeweyInvertedList.from_encoded(keyword, rows)
        dil, _ = self._builder.build_keyword(keyword)
        live = self.catalog.live_set
        return DeweyInvertedList(
            keyword, [posting for posting in dil
                      if posting.dewey.doc_id in live])

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def append(self, documents: Sequence[XMLDocument],
               radius: int = 2) -> SegmentCatalog:
        """Index new documents as one immutable segment."""
        documents = list(documents)
        if not documents:
            raise ValueError("no documents to append")
        ids = [document.doc_id for document in documents]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate document ids in batch: {ids}")
        manager = self.manager
        live = self.catalog.live_set
        texts: dict[int, str] = {}
        for document in documents:
            if document.doc_id in live:
                raise ValueError(
                    f"document {document.doc_id} is already live in "
                    f"the index; remove it first to replace it")
            text = serialize(document)
            known = self.universe_texts.get(document.doc_id)
            if known is not None and known != text:
                raise ValueError(
                    f"document {document.doc_id} was indexed before "
                    f"with different content; re-adding requires "
                    f"byte-identical content (documents are immutable)")
            if document.doc_id in manager.corpus and \
                    serialize(manager.corpus.get(document.doc_id)) != text:
                raise ValueError(
                    f"document {document.doc_id} differs from the "
                    f"engine corpus's copy")
            texts[document.doc_id] = text
        with manager.tracer.span("index.append_segment",
                                 docs=len(documents)) as span:
            new_ids = frozenset(ids)
            built, skipped, lists = self._build_segment_lists(
                documents, new_ids, radius)
            namespace = segment_namespace(self.catalog.strategy,
                                          self.catalog.next_id)
            _clear_namespace(self.store, namespace)
            for key in sorted(lists):
                self.store.put_postings(namespace, key, lists[key])
            for document in documents:
                self.store.put_document(document.doc_id,
                                        texts[document.doc_id])
            self.universe_texts.update(texts)
            record = SegmentRecord(
                segment_id=self.catalog.next_id, namespace=namespace,
                doc_ids=tuple(sorted(new_ids)),
                checksum=postings_checksum(lists))
            live_after = live | new_ids
            catalog = self.catalog.with_segment(
                record, live_after, self._live_fingerprint(live_after))
            self._commit(catalog)
            for document in documents:
                if document.doc_id not in manager.corpus:
                    manager.corpus.add(document)
            manager.stats.increment_many({
                SEGMENTS_LIVE: 1,
                APPEND_DOCS: len(documents),
                APPEND_KEYWORDS_BUILT: built,
                APPEND_KEYWORDS_SKIPPED: skipped})
            span.annotate(segment=record.segment_id,
                          keywords_built=built,
                          keywords_skipped=skipped)
        return catalog

    def _build_segment_lists(self, documents: Sequence[XMLDocument],
                             new_ids: frozenset[int], radius: int,
                             ) -> tuple[int, int, dict]:
        """Posting lists of one append segment.

        Keywords already indexed somewhere are scoped to the *new*
        documents (older segments already cover the rest) unless the
        exactness filter proves them untouchable; keywords new to the
        index are backfilled over every live document.
        """
        manager = self.manager
        builder = self._builder
        element_index = builder.element_index
        grew = False
        for document in documents:
            if not element_index.has_document(document.doc_id):
                element_index.add_document(document)
                grew = True
        if grew:
            builder.node_scorer.invalidate()
        scoped = manager.builder
        if scoped is not builder and hasattr(scoped, "extend_scope"):
            scoped.extend_scope(new_ids)

        new_corpus = Corpus(documents)
        text_policy = manager.config.text_policy
        if manager.strategy == XRANK or manager.ontology is None:
            new_vocabulary = corpus_vocabulary(new_corpus, text_policy)
        else:
            new_vocabulary = experiment_vocabulary(
                new_corpus, manager.ontology, radius=radius,
                text_policy=text_policy)
        new_tokens: set[str] = set()
        for document in new_corpus:
            for node in document.iter():
                new_tokens.update(
                    tokenize(node.textual_description(text_policy)))
        new_concepts = {
            code for dewey, code
            in element_index.code_node_concepts().items()
            if dewey.doc_id in new_ids}

        lists: dict[str, list] = {}
        built = skipped = 0
        for key in sorted(self.known_keys()):
            keyword = keyword_from_key(key)
            if self._cannot_touch(keyword, new_tokens, new_concepts):
                skipped += 1
                continue
            built += 1
            dil, _ = builder.build_keyword(keyword)
            rows = [posting.encoded() for posting in dil
                    if posting.dewey.doc_id in new_ids]
            if rows:
                lists[key] = rows
        live_after = self.catalog.live_set | new_ids
        for word in sorted(new_vocabulary):
            keyword = Keyword.from_text(word)
            key = index_key(keyword)
            if key in self.known_keys():
                continue
            built += 1
            dil, _ = builder.build_keyword(keyword)
            rows = [posting.encoded() for posting in dil
                    if posting.dewey.doc_id in live_after]
            if rows:
                lists[key] = rows
        return built, skipped, lists

    def _cannot_touch(self, keyword: Keyword, new_tokens: set[str],
                      new_concepts: set[str]) -> bool:
        """Exactness filter: True only when every new element provably
        has NodeScore zero for the keyword.

        IRS needs each keyword token present in some new element's
        text; the ontological term needs a new code node resolving to a
        concept the keyword's OntoScore map reaches. Failing both, the
        keyword's posting list gains nothing from the new documents, so
        skipping the build writes the exact same (empty) delta.
        """
        if set(keyword.tokens) <= new_tokens:
            return False
        if not new_concepts:
            return True
        onto = self._builder.ontoscore.compute(keyword)
        return not any(onto.get(code, 0.0) > 0.0
                       for code in new_concepts)

    # ------------------------------------------------------------------
    # Remove / compact
    # ------------------------------------------------------------------
    def remove(self, doc_ids: Iterable[int]) -> SegmentCatalog:
        """Tombstone documents: one catalog write, no posting I/O."""
        doc_ids = list(doc_ids)
        if not doc_ids:
            raise ValueError("no documents to remove")
        live = set(self.catalog.live_set)
        for doc_id in doc_ids:
            if doc_id not in live:
                raise KeyError(f"no live document with id {doc_id}")
            live.discard(doc_id)
        manager = self.manager
        with manager.tracer.span("index.tombstone",
                                 docs=len(doc_ids)):
            catalog = replace(self.catalog, live=tuple(sorted(live)),
                              live_fingerprint=self._live_fingerprint(live))
            self._commit(catalog)
            for doc_id in doc_ids:
                if doc_id in manager.corpus:
                    manager.corpus.remove(doc_id)
            scoped = manager.builder
            if scoped is not self._builder and \
                    hasattr(scoped, "shrink_scope"):
                scoped.shrink_scope(doc_ids)
            manager.stats.increment(TOMBSTONES, len(doc_ids))
        return catalog

    def compact(self) -> SegmentCatalog:
        """Fold every live segment into one and reclaim dead rows."""
        before = self.catalog
        catalog = compact_store(self.store, tracer=self.manager.tracer)
        assert catalog is not None  # a lifecycle always has a catalog
        self.catalog = catalog
        self._keys = None
        # Tombstoned documents are gone from the store for good; the
        # content ledger follows (a post-compaction re-add is a plain
        # new add).
        self.universe_texts = {
            doc_id: text for doc_id, text
            in self.universe_texts.items()
            if doc_id in catalog.live_set}
        self.manager.stats.increment_many({
            COMPACTIONS: 1,
            SEGMENTS_LIVE: 1 - len(before.segments),
            TOMBSTONES: -before.tombstone_count})
        return catalog
