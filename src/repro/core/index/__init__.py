"""The Index Creation Module: XOnto-DILs, vocabulary, the three-stage
builder (paper Section V-B)."""

from .builder import IndexBuilder
from .dil import (DeweyInvertedList, KeywordBuildStats, Posting,
                  XOntoDILIndex, index_key, keyword_from_key)
from .manager import IndexManager, memoized_corpus_fingerprint
from .parallel import PROCESS_MODE_THRESHOLD, ParallelIndexBuilder
from .vocabulary import (concept_vocabulary, concepts_within_radius,
                         corpus_vocabulary, experiment_vocabulary,
                         full_vocabulary, referenced_concepts)

__all__ = [
    "DeweyInvertedList", "IndexBuilder", "IndexManager",
    "KeywordBuildStats", "PROCESS_MODE_THRESHOLD",
    "ParallelIndexBuilder", "Posting", "XOntoDILIndex",
    "concept_vocabulary", "concepts_within_radius",
    "corpus_vocabulary", "experiment_vocabulary", "full_vocabulary",
    "index_key", "keyword_from_key", "memoized_corpus_fingerprint",
    "referenced_concepts",
]
