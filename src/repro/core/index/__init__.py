"""The Index Creation Module: XOnto-DILs, vocabulary, the three-stage
builder (paper Section V-B), and the incremental segment lifecycle."""

from .builder import IndexBuilder
from .dil import (DeweyInvertedList, KeywordBuildStats, Posting,
                  XOntoDILIndex, index_key, keyword_from_key)
from .manager import IndexManager, memoized_corpus_fingerprint
from .parallel import (FORK_OVERHEAD_SECONDS, PROCESS_MODE_THRESHOLD,
                       ParallelIndexBuilder, choose_mode)
from .segments import SegmentLifecycle, compact_store
from .vocabulary import (concept_vocabulary, concepts_within_radius,
                         corpus_vocabulary, experiment_vocabulary,
                         full_vocabulary, referenced_concepts)

__all__ = [
    "DeweyInvertedList", "FORK_OVERHEAD_SECONDS", "IndexBuilder",
    "IndexManager", "KeywordBuildStats", "PROCESS_MODE_THRESHOLD",
    "ParallelIndexBuilder", "Posting", "SegmentLifecycle",
    "XOntoDILIndex", "choose_mode", "compact_store",
    "concept_vocabulary", "concepts_within_radius", "corpus_vocabulary",
    "experiment_vocabulary", "full_vocabulary", "index_key",
    "keyword_from_key", "memoized_corpus_fingerprint",
    "referenced_concepts",
]
