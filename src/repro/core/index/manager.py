"""The Index Creation Module's lifecycle owner (paper Figure 8).

:class:`IndexManager` owns everything about one strategy's XOnto-DIL
index *except* query execution: building (serial or through the
:class:`~repro.core.index.parallel.ParallelIndexBuilder`), persistence
into an :class:`~repro.storage.interface.IndexStore` with the crash-safe
manifest protocol, validated loading with per-keyword degraded rebuilds,
and the bounded query-time :class:`~repro.core.cache.DILCache`. The
:class:`~repro.core.query.engine.XOntoRankEngine` facade delegates its
``build_index`` / ``load_index`` / ``dil_for`` surface here; the
federated engine gives each shard its own manager over the shard's
sub-corpus and store.

Corpus fingerprints (the manifest's defense against loading an index
built from different documents) are memoized per :class:`Corpus`
object -- serializing every document on every ``load_index`` was the
single hottest redundant step of the old engine. The memo is invalidated
when the corpus gains or loses documents; in-place mutation of a
document's nodes is outside the supported lifecycle (corpora are
read-only once indexed).
"""

from __future__ import annotations

import weakref
from typing import Iterable, MutableMapping

from ...ir.tokenizer import Keyword
from ...storage import manifest as store_manifest
from ...storage.errors import (CorruptIndexError, IncompatibleIndexError,
                               StorageError)
from ...storage.interface import IndexStore
from ...storage.segments import segment_view
from ...xmldoc.model import Corpus
from ...xmldoc.serializer import serialize
from ..cache import DILCache
from ..config import XRANK, XOntoRankConfig
from ..obs.tracer import NULL_TRACER
from ..stats import (CODEC_LAZY_LISTS, CODEC_RAW_FALLBACKS,
                     FALLBACK_REBUILDS, INTEGRITY_FAILURES,
                     INTEGRITY_VALIDATIONS, CacheStats, StatsRegistry)
from .builder import IndexBuilder
from .dil import DeweyInvertedList, XOntoDILIndex, keyword_from_key
from .parallel import ParallelIndexBuilder
from .segments import SegmentLifecycle
from .vocabulary import corpus_vocabulary, experiment_vocabulary

#: corpus object -> (corpus version, fingerprint). Keyed weakly so a
#: discarded corpus does not pin its fingerprint; the membership version
#: invalidates the entry when documents are added or removed (a plain
#: length check would miss a remove-then-add of the same count).
_FINGERPRINTS: MutableMapping[Corpus, tuple[int, str]] = (
    weakref.WeakKeyDictionary())


def memoized_corpus_fingerprint(
        corpus: Corpus,
        texts: list[tuple[int, str]] | None = None) -> str:
    """The corpus's manifest fingerprint, serialized at most once.

    ``texts`` lets a caller that already serialized every document (the
    build path persists them anyway) seed the memo for free.
    """
    cached = _FINGERPRINTS.get(corpus)
    if cached is not None and cached[0] == corpus.version:
        return cached[1]
    pairs = texts if texts is not None else [
        (document.doc_id, serialize(document)) for document in corpus]
    fingerprint = store_manifest.corpus_fingerprint(pairs)
    _FINGERPRINTS[corpus] = (corpus.version, fingerprint)
    return fingerprint


class IndexManager:
    """Build/load/persist lifecycle of one strategy's XOnto-DIL index."""

    def __init__(self, corpus: Corpus, builder: IndexBuilder,
                 strategy: str, config: XOntoRankConfig,
                 ontology=None, stats: StatsRegistry | None = None,
                 tracer=None, cache: DILCache | None = None) -> None:
        self.corpus = corpus
        self.builder = builder
        self.strategy = strategy
        self.config = config
        self.ontology = ontology
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.dil_cache = cache if cache is not None else DILCache(
            capacity=config.dil_cache_capacity, stats=self.stats)
        #: The incremental (LSM-segment) lifecycle, bound lazily to the
        #: first store an add/remove/compact call targets.
        self._segments: SegmentLifecycle | None = None
        #: Read-through store for query-time cache misses (serving
        #: mode); see :meth:`attach_read_store`.
        self._read_store: IndexStore | None = None
        self._read_on_error = None

    # ------------------------------------------------------------------
    # Query-time DIL access
    # ------------------------------------------------------------------
    def dil_for(self, keyword: Keyword) -> DeweyInvertedList:
        """The keyword's XOnto-DIL, built on first use.

        Cached under ``(text, is_phrase)``: a phrase keyword and a term
        keyword with identical text are distinct cache entries. With an
        attached read store (:meth:`attach_read_store`), a miss is
        served from the store before falling back to a corpus build.
        """
        with self.tracer.span("query.dil_fetch",
                              keyword=keyword.text) as span:
            if self._read_store is not None:
                build = lambda: self._read_through(keyword)
            elif self._segments is not None:
                build = lambda: self._segments.build_dil(keyword)
            else:
                build = lambda: self.builder.build_keyword(keyword)[0]
            dil = self.dil_cache.get_or_build(
                (keyword.text, keyword.is_phrase), build)
            span.annotate(postings=len(dil))
            return dil

    # ------------------------------------------------------------------
    # Read-through serving mode
    # ------------------------------------------------------------------
    def attach_read_store(self, store: IndexStore, *,
                          validate: bool = True,
                          on_error=None) -> None:
        """Serve DIL-cache misses from ``store`` instead of rebuilding.

        The serving layer's bounded-memory mode: with a bounded
        :class:`~repro.core.cache.DILCache`, evicted posting lists are
        re-read from the persisted index (cheap) rather than re-derived
        from the corpus (expensive). Segmented stores are read through
        their logical :class:`~repro.storage.segments.SegmentView`.

        ``on_error`` decides what a query-time storage failure does:
        ``None`` (default) propagates the
        :class:`~repro.storage.errors.StorageError` to the caller --
        the strict mode a federated serving layer needs so its circuit
        breaker sees shard faults. A callable ``on_error(exc) -> bool``
        returning True absorbs the failure by rebuilding the list from
        the corpus (counted under ``engine.fallback.rebuilds``,
        PR 2's degradation path); returning False re-raises.

        A keyword the store does not hold (a query word outside the
        indexed vocabulary) is always built from the corpus -- that is
        vocabulary coverage, not a fault.
        """
        if validate:
            self.validate_store(store)
        self._read_store = segment_view(store)
        self._read_on_error = on_error

    def detach_read_store(self) -> None:
        """Back to corpus-built misses (does not close the store)."""
        self._read_store = None
        self._read_on_error = None

    @property
    def read_store(self) -> IndexStore | None:
        return self._read_store

    def _read_through(self, keyword: Keyword) -> DeweyInvertedList:
        from .dil import index_key
        failure: StorageError
        try:
            dil = self._dil_from_store(self._read_store,
                                       index_key(keyword), keyword)
            if dil is None:
                # Not a fault: the keyword is simply outside the
                # persisted vocabulary (stores never hold empty lists).
                return self.builder.build_keyword(keyword)[0]
            return dil
        except ValueError as exc:
            failure = CorruptIndexError(
                f"stored posting list for {keyword.text!r} is "
                f"corrupt: {exc}")
            failure.__cause__ = exc
        except StorageError as exc:
            failure = exc
        if self._read_on_error is not None \
                and self._read_on_error(failure):
            self.stats.increment(FALLBACK_REBUILDS)
            return self.builder.build_keyword(keyword)[0]
        raise failure

    def _dil_from_store(self, store: IndexStore, key: str,
                        keyword: Keyword) -> DeweyInvertedList | None:
        """One keyword's DIL out of ``store``, lazily when possible.

        A store exposing ``get_posting_block`` (the mmap backend)
        serves most lists as compact blocks wrapped *without decoding a
        posting* -- construction cost is the block's document
        directory, and bounded top-k can prune whole documents from the
        directory's ``doc_max`` sidecar alone. Raw records and
        block-less backends take the eager decoded path. Returns
        ``None`` when the store holds no postings for the key.
        """
        block_reader = getattr(store, "get_posting_block", None)
        if block_reader is not None:
            block = block_reader(self.strategy, key)
            if block is not None:
                self.stats.increment(CODEC_LAZY_LISTS)
                return DeweyInvertedList.from_block(keyword, block)
        encoded = store.get_postings(self.strategy, key)
        if not encoded:
            return None
        if block_reader is not None:
            self.stats.increment(CODEC_RAW_FALLBACKS)
        return DeweyInvertedList.from_encoded(keyword, encoded)

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the DIL cache."""
        return self.dil_cache.stats()

    # ------------------------------------------------------------------
    # Incremental maintenance (LSM segments)
    # ------------------------------------------------------------------
    def _lifecycle(self, store: IndexStore | None) -> SegmentLifecycle:
        if store is None:
            raise ValueError(
                "incremental index operations require a store")
        if self._segments is None or self._segments.store is not store:
            self._segments = SegmentLifecycle(self, store)
        return self._segments

    def add_documents(self, documents, store: IndexStore,
                      radius: int = 2):
        """Index new documents as one immutable appended segment --
        no existing segment is rebuilt. Returns the new catalog."""
        return self._lifecycle(store).append(documents, radius=radius)

    def remove_documents(self, doc_ids: Iterable[int],
                         store: IndexStore):
        """Tombstone documents (one catalog write; rows are reclaimed
        by the next :meth:`compact`). Returns the new catalog."""
        return self._lifecycle(store).remove(doc_ids)

    def compact(self, store: IndexStore):
        """Fold the store's live segments into one and reclaim dead
        rows; the logical index is unchanged. Returns the new catalog."""
        return self._lifecycle(store).compact()

    # ------------------------------------------------------------------
    # Pre-processing phase
    # ------------------------------------------------------------------
    def default_vocabulary(self, radius: int = 2) -> set[str]:
        """The paper's experimental vocabulary rule (Section VII-B)."""
        if self.strategy == XRANK or self.ontology is None:
            return corpus_vocabulary(self.corpus,
                                     self.config.text_policy)
        return experiment_vocabulary(self.corpus, self.ontology,
                                     radius=radius,
                                     text_policy=self.config.text_policy)

    def build_index(self, vocabulary: Iterable[str] | None = None,
                    radius: int = 2,
                    store: IndexStore | None = None,
                    workers: int | None = None,
                    parallel_mode: str = "auto") -> XOntoDILIndex:
        """Pre-build DILs for a whole vocabulary (Section V-B).

        Without an explicit vocabulary, ontology-aware strategies use
        the paper's experimental rule (document words plus concepts
        within ``radius`` relationships of referenced concepts); the
        XRANK baseline indexes the document words.

        With ``workers > 1`` the vocabulary is built on a worker pool
        (see :class:`~repro.core.index.parallel.ParallelIndexBuilder`);
        the result is guaranteed identical to the serial build, and
        with a ``store`` the shards are streamed into it as they
        complete.
        """
        if vocabulary is None:
            vocabulary = self.default_vocabulary(radius)
        vocabulary = set(vocabulary)
        if store is not None:
            # Crash-safety protocol: flip the store to *incomplete*
            # before the first posting lands, so a build killed at any
            # later point leaves a store that load_index rejects; the
            # completion marker is re-set only by finalize_manifest
            # after everything else has been written.
            store_manifest.mark_build_started(store)
        build_stats = StatsRegistry()
        if workers is not None and workers > 1:
            parallel = ParallelIndexBuilder(
                self.builder, workers=workers, mode=parallel_mode,
                stats=build_stats, tracer=self.tracer)
            index = parallel.build(vocabulary,
                                   strategy_name=self.strategy,
                                   store=store)
        else:
            with self.tracer.span("index.serial_build",
                                  keywords=len(vocabulary)):
                index = self.builder.build(vocabulary,
                                           strategy_name=self.strategy)
            if store is not None:
                with self.tracer.span("storage.save_index"):
                    index.save(store)
        for key, dil in index.lists.items():
            keyword = keyword_from_key(key)
            self.dil_cache.put((keyword.text, keyword.is_phrase), dil)
        if store is not None:
            self._persist_corpus_and_manifest(store, build_stats,
                                              workers)
        return index

    def _persist_corpus_and_manifest(self, store: IndexStore,
                                     build_stats: StatsRegistry,
                                     workers: int | None) -> None:
        document_texts = []
        for document in self.corpus:
            text = serialize(document)
            store.put_document(document.doc_id, text)
            document_texts.append((document.doc_id, text))
        store.put_metadata("strategy", self.strategy)
        store.put_metadata("decay", str(self.config.decay))
        store.put_metadata("threshold", str(self.config.threshold))
        store.put_metadata("t", str(self.config.t))
        chunks = build_stats.value("parallel_build.chunks")
        mode = next(
            (name.rsplit(".", 1)[1]
             for name in build_stats.snapshot()
             if name.startswith("parallel_build.mode.")), "serial")
        store.put_metadata("build_workers",
                           str(workers if workers else 1))
        store.put_metadata("build_chunks", str(chunks or 1))
        store.put_metadata("build_mode", mode)
        store_manifest.finalize_manifest(
            store, self.strategy,
            memoized_corpus_fingerprint(self.corpus, document_texts))

    # ------------------------------------------------------------------
    # Load phase
    # ------------------------------------------------------------------
    def load_index(self, store: IndexStore, *, validate: bool = True,
                   fallback: bool = True) -> int:
        """Warm the DIL cache from a persisted index; returns list
        count.

        With ``validate=True`` (the default) the store's manifest is
        checked first: an interrupted build raises
        :class:`CorruptIndexError`, and a store built with a different
        strategy, decay/threshold/``t``, or corpus raises
        :class:`IncompatibleIndexError` -- silently loading such an
        index would corrupt every ranking.

        A store holding a segment catalog is loaded through its
        read-only :class:`~repro.storage.segments.SegmentView`: the
        cache is warmed with the *logical* (merged, tombstone-masked)
        posting lists, byte-identical to a from-scratch build of the
        live documents.

        With ``fallback=True`` (the default) a posting list that fails
        to load -- a transient fault the caller's retries did not clear,
        or a corrupt/undecodable list -- is rebuilt from the corpus
        instead of failing the load (counted under
        ``engine.fallback.rebuilds``); ``fallback=False`` re-raises,
        for fail-fast operation.
        """
        store = segment_view(store)
        if validate:
            self.validate_store(store)
        with self.tracer.span("storage.load_index",
                              strategy=self.strategy) as span:
            loaded = self._load_lists(store, fallback)
            span.annotate(lists=loaded)
        return loaded

    def _load_lists(self, store: IndexStore, fallback: bool) -> int:
        loaded = 0
        for key in sorted(store.keywords(self.strategy)):
            keyword = keyword_from_key(key)
            failure: StorageError | None = None
            dil = None
            try:
                dil = self._dil_from_store(store, key, keyword)
                if dil is None:
                    dil = DeweyInvertedList(keyword)
            except ValueError as exc:
                failure = CorruptIndexError(
                    f"stored posting list for {key!r} is corrupt: {exc}")
                failure.__cause__ = exc
            except StorageError as exc:
                failure = exc
            if failure is not None:
                if not fallback:
                    raise failure
                self.stats.increment(FALLBACK_REBUILDS)
                dil = self.builder.build_keyword(keyword)[0]
            self.dil_cache.put((keyword.text, keyword.is_phrase), dil)
            loaded += 1
        return loaded

    def validate_store(self, store: IndexStore) -> None:
        """Reject interrupted builds and parameter/corpus mismatches.

        Segmented stores are validated through their logical view, so
        the corpus fingerprint is checked against the *live* documents.
        """
        store = segment_view(store)
        try:
            store_manifest.require_complete(store)
            stored_strategy = store.get_metadata("strategy")
            if stored_strategy != self.strategy:
                raise IncompatibleIndexError(
                    f"index store was built for strategy "
                    f"{stored_strategy!r}, engine runs "
                    f"{self.strategy!r}")
            parameters = (("decay", self.config.decay),
                          ("threshold", self.config.threshold),
                          ("t", self.config.t))
            for name, expected in parameters:
                raw = store.get_metadata(name)
                try:
                    stored = None if raw is None else float(raw)
                except ValueError:
                    stored = None
                if stored != expected:
                    raise IncompatibleIndexError(
                        f"index store was built with {name}={raw}, "
                        f"engine is configured with {name}={expected}")
            stored_fingerprint = store.get_metadata(
                store_manifest.CORPUS_FINGERPRINT_KEY)
            if stored_fingerprint != memoized_corpus_fingerprint(
                    self.corpus):
                raise IncompatibleIndexError(
                    "index store was built from a different corpus "
                    "(corpus fingerprint mismatch)")
        except StorageError:
            self.stats.increment(INTEGRITY_FAILURES)
            raise
        self.stats.increment(INTEGRITY_VALIDATIONS)
