"""XOntoRank Dewey Inverted Lists (paper Section V, Figures 9-10).

An XOnto-DIL is the per-keyword posting list of XRANK's Dewey Inverted
List, with one key difference: "instead of [term frequencies] we store
NS(v, w), the relevance score of node v with respect to keyword w given
the XML documents and the ontological systems, defined in (5)". Postings
are ``(Dewey ID, NodeScore)`` pairs sorted by Dewey ID, i.e. global
document order, which is what the stack-merge query algorithm requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ...ir.tokenizer import Keyword
from ...storage.interface import EncodedPosting, IndexStore
from ...xmldoc.dewey import DeweyID


def index_key(keyword: Keyword) -> str:
    """Canonical index/cache key of a keyword.

    Phrases are stored quoted so a quoted single-word phrase
    (``"asthma"``) and the bare term (``asthma``) get distinct posting
    lists -- they have identical matching semantics today, but sharing a
    key would silently merge their statistics and make the collision
    load-bearing. Bare multi-word keys remain parseable for backward
    compatibility with pre-quoting stores.
    """
    return f'"{keyword.text}"' if keyword.is_phrase else keyword.text


def keyword_from_key(key: str) -> Keyword:
    """Inverse of :func:`index_key` (tolerates legacy unquoted keys)."""
    is_phrase = len(key) >= 2 and key[0] == '"' and key[-1] == '"'
    text = key[1:-1] if is_phrase else key
    tokens = tuple(text.split(" "))
    return Keyword(tokens=tokens,
                   is_phrase=is_phrase or len(tokens) > 1)


@dataclass(frozen=True, order=True)
class Posting:
    """One entry of an XOnto-DIL: a node and its NodeScore."""

    dewey: DeweyID
    score: float

    def encoded(self) -> EncodedPosting:
        return (self.dewey.encode(), self.score)

    #: Storage footprint estimate in bytes: the dotted-decimal Dewey ID
    #: plus an 8-byte float, mirroring how Table III sizes DIL entries.
    def size_bytes(self) -> int:
        return len(self.dewey.encode()) + 8


class DeweyInvertedList:
    """The sorted posting list of one keyword."""

    #: The compact posting block backing this list, or ``None`` for an
    #: eager (materialized) list. The query processor's document
    #: streams use it to decode one document run at a time instead of
    #: bisecting a materialized sequence.
    block = None

    def __init__(self, keyword: Keyword,
                 postings: Sequence[Posting] = ()) -> None:
        self.keyword = keyword
        self._postings = sorted(postings)
        self._doc_max: dict[int, float] | None = None
        for first, second in zip(self._postings, self._postings[1:]):
            if first.dewey == second.dewey:
                raise ValueError(
                    f"duplicate posting for {first.dewey.encode()}")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings)

    def __bool__(self) -> bool:
        return bool(self._postings)

    def postings(self) -> list[Posting]:
        return list(self._postings)

    def sorted_postings(self) -> Sequence[Posting]:
        """The internal Dewey-sorted posting sequence, without copying.

        Callers must treat the returned sequence as read-only; it is the
        list the query processor streams over (and bisects into for
        document-granular skipping), so copying it would defeat the
        streaming memory bound.
        """
        return self._postings

    def doc_max_scores(self) -> dict[int, float]:
        """Per-document maximum NodeScore of this list.

        This is the block-max metadata of the top-k query mode: with one
        entry per document, ``sum(doc_max per keyword)`` upper-bounds
        every Eq. 4 result score inside that document (propagation only
        attenuates, ``decay <= 1``), so whole documents can be skipped
        once a bounded result heap is full. Computed lazily on first use
        and cached -- the list is immutable after construction.
        """
        if self._doc_max is None:
            maxes: dict[int, float] = {}
            for posting in self._postings:
                doc_id = posting.dewey.doc_id
                best = maxes.get(doc_id)
                if best is None or posting.score > best:
                    maxes[doc_id] = posting.score
            self._doc_max = maxes
        return self._doc_max

    def size_bytes(self) -> int:
        """Estimated storage size of the list (Table III's "Size (KB)")."""
        return sum(posting.size_bytes() for posting in self._postings)

    def document_ids(self) -> set[int]:
        return {posting.dewey.doc_id for posting in self._postings}

    # ------------------------------------------------------------------
    def encoded(self) -> list[EncodedPosting]:
        return [posting.encoded() for posting in self._postings]

    @classmethod
    def from_encoded(cls, keyword: Keyword,
                     encoded: Sequence[EncodedPosting],
                     ) -> "DeweyInvertedList":
        postings = [Posting(DeweyID.parse(dewey), score)
                    for dewey, score in encoded]
        return cls(keyword, postings)

    @staticmethod
    def from_block(keyword: Keyword, block) -> "DeweyInvertedList":
        """Wrap a compact :class:`~repro.storage.codec.PostingBlock`
        without decoding it (see :class:`CompactDeweyInvertedList`)."""
        return CompactDeweyInvertedList(keyword, block)


class CompactDeweyInvertedList(DeweyInvertedList):
    """A posting list served lazily from one compact binary block.

    Construction is O(1) in the posting count: the block's document
    directory has already been parsed by the codec, so
    :meth:`doc_max_scores` (the bounded-top-k pruning sidecar) and
    :meth:`document_ids` answer without decoding a single posting.
    Whole-list consumers (:meth:`sorted_postings`, iteration) decode
    and cache the materialized list on first use, after which this
    behaves exactly like an eager list -- the class is a representation
    change, not a semantic one, which is what the byte-identical
    ``canonical_dump`` differential suite pins.
    """

    def __init__(self, keyword: Keyword, block) -> None:
        self.keyword = keyword
        self.block = block
        self._doc_max: dict[int, float] | None = None
        self._materialized: list[Posting] | None = None

    def _postings_list(self) -> list[Posting]:
        if self._materialized is None:
            self._materialized = [
                Posting(DeweyID(doc_id, path), score)
                for doc_id, path, score in self.block.items()]
        return self._materialized

    # -- directory-only reads (never decode postings) -------------------
    def __len__(self) -> int:
        return self.block.posting_count

    def __bool__(self) -> bool:
        return self.block.posting_count > 0

    def doc_max_scores(self) -> dict[int, float]:
        if self._doc_max is None:
            self._doc_max = self.block.doc_max_scores()
        return self._doc_max

    def document_ids(self) -> set[int]:
        return set(self.block.doc_ids())

    def size_bytes(self) -> int:
        """For a compact list the estimate is exact: the block's own
        byte length (header included)."""
        return self.block.size_bytes()

    # -- decoding reads --------------------------------------------------
    def __iter__(self) -> Iterator[Posting]:
        if self._materialized is not None:
            return iter(self._materialized)
        return (Posting(DeweyID(doc_id, path), score)
                for doc_id, path, score in self.block.items())

    def postings(self) -> list[Posting]:
        return list(self._postings_list())

    def sorted_postings(self) -> Sequence[Posting]:
        return self._postings_list()

    def postings_for_doc(self, doc_id: int) -> list[Posting]:
        """Decode exactly one document's run (used by the query
        processor's document streams for document-granular skipping)."""
        return [Posting(DeweyID(doc_id, path), score)
                for path, score in self.block.doc_postings(doc_id)]

    def encoded(self) -> list[EncodedPosting]:
        return self.block.encoded()


@dataclass
class KeywordBuildStats:
    """Per-keyword index-creation measurements (Table III's columns)."""

    keyword: str
    creation_time_ms: float
    posting_count: int
    size_bytes: int
    ontology_entries: int = 0  # size of the OntoScore hash-map slice


@dataclass
class XOntoDILIndex:
    """The full index of one strategy: keyword → Dewey inverted list."""

    strategy: str
    lists: dict[str, DeweyInvertedList] = field(default_factory=dict)
    stats: dict[str, KeywordBuildStats] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add(self, dil: DeweyInvertedList,
            stats: KeywordBuildStats | None = None) -> None:
        key = index_key(dil.keyword)
        self.lists[key] = dil
        if stats is not None:
            self.stats[key] = stats

    def get(self, keyword: Keyword) -> DeweyInvertedList | None:
        return self.lists.get(index_key(keyword))

    def __contains__(self, keyword: Keyword) -> bool:
        return index_key(keyword) in self.lists

    def __len__(self) -> int:
        return len(self.lists)

    def keywords(self) -> list[str]:
        return sorted(self.lists)

    # ------------------------------------------------------------------
    def total_postings(self) -> int:
        return sum(len(dil) for dil in self.lists.values())

    def total_size_bytes(self) -> int:
        return sum(dil.size_bytes() for dil in self.lists.values())

    def average_stats(self) -> dict[str, float]:
        """Per-keyword averages: Table III's three columns."""
        if not self.stats:
            return {"creation_time_ms": 0.0, "postings": 0.0,
                    "size_kb": 0.0}
        count = len(self.stats)
        return {
            "creation_time_ms": sum(s.creation_time_ms
                                    for s in self.stats.values()) / count,
            "postings": sum(s.posting_count
                            for s in self.stats.values()) / count,
            "size_kb": sum(s.size_bytes
                           for s in self.stats.values()) / count / 1024.0,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, store: IndexStore) -> None:
        """Write every non-empty posting list into an
        :class:`IndexStore` (stores treat an empty list as absent, and
        a missing keyword loads back as an empty list).

        Keys are normalized on the way out: a legacy unquoted
        multi-word row (``heart murmur``, written before phrase keys
        were quoted) whose canonical form (``"heart murmur"``) is part
        of this index is deleted before the canonical row is written.
        Without this, a load → save round-trip against the same store
        would leave both rows behind -- the postings duplicated and
        ``total_size_bytes`` double-counted on the next load.
        """
        stale = [key for key in list(store.keywords(self.strategy))
                 if key not in self.lists
                 and index_key(keyword_from_key(key)) in self.lists]
        for key in stale:
            store.put_postings(self.strategy, key, ())
        for key, dil in self.lists.items():
            if dil:
                store.put_postings(self.strategy, key, dil.encoded())

    @classmethod
    def load(cls, store: IndexStore, strategy: str) -> "XOntoDILIndex":
        """Read all posting lists of a strategy back from a store."""
        index = cls(strategy=strategy)
        for key in store.keywords(strategy):
            keyword = keyword_from_key(key)
            encoded = store.get_postings(strategy, key)
            index.add(DeweyInvertedList.from_encoded(keyword, encoded))
        return index
