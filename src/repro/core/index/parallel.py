"""Parallel XOnto-DIL index construction (paper Section V-B at scale).

Table III shows index creation dominating total cost, and per-keyword
DIL construction is embarrassingly parallel: each list depends only on
the shared element index and ontology, never on another keyword's list.
:class:`ParallelIndexBuilder` exploits that by partitioning the sorted
vocabulary into contiguous chunks and building each chunk on a
``concurrent.futures`` worker pool.

Two pool flavors, chosen by ``mode``:

* ``"process"`` -- a fork-context :class:`~concurrent.futures.ProcessPoolExecutor`.
  OntoScore expansion is CPU-bound pure Python, so separate processes
  are the only way to real speedup under the GIL. Workers inherit the
  (read-only) builder through ``fork`` rather than pickling the corpus
  per task; each task returns encoded postings, which pickle cheaply.
* ``"thread"`` -- a :class:`~concurrent.futures.ThreadPoolExecutor`.
  No fork cost, no pickling; the fallback for small vocabularies, for
  platforms without ``fork``, and for GIL-free interpreters.

``mode="auto"`` chooses by *measured* cost rather than a fixed size
cutoff: the first vocabulary chunk is built serially as a timed probe,
and :func:`choose_mode` projects the remaining serial cost against the
process-pool cost (fork overhead plus the parallelized remainder).
Processes are picked only when the projection says they win; a tiny or
cheap vocabulary therefore never pays a fork it cannot amortize. The
legacy ``PROCESS_MODE_THRESHOLD`` word-count cutoff remains only as the
fallback when no probe signal exists (a single chunk, or a zero-cost
probe).

**Determinism contract.** The parallel build must be indistinguishable
from ``IndexBuilder.build`` (the serial reference): identical DIL
entries, identical persisted posting lists written in identical order,
identical search results afterwards. Chunks are formed from the sorted
vocabulary, and completed shards are merged and flushed strictly in
chunk order (out-of-order completions are buffered), so both the
in-memory index and the sequence of ``put_postings`` calls match the
serial build exactly. Per-keyword *timings* in the build stats are the
one sanctioned difference. ``tests/property/test_parallel_vs_serial.py``
enforces the contract over randomized corpora for all four strategies.

**Bounded memory.** With a ``store``, each shard is persisted as soon
as all earlier chunks have been flushed; with ``keep_lists=False`` the
posting lists are dropped right after persisting (build stats are
retained), so peak memory is one in-flight shard per worker instead of
the whole index.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import time
from typing import Iterable, Sequence

from ...ir.tokenizer import Keyword
from ...storage.interface import EncodedPosting, IndexStore
from ..obs.tracer import NULL_TRACER
from ..stats import StatsRegistry
from .builder import IndexBuilder
from .dil import (DeweyInvertedList, KeywordBuildStats, XOntoDILIndex,
                  index_key)

#: Legacy ``mode="auto"`` cutoff, now only the fallback when the timed
#: probe yields no signal: below this vocabulary size the fork +
#: result-pickling overhead beat any parallel gain on the paper-scale
#: corpora.
PROCESS_MODE_THRESHOLD = 512

#: Assumed cost of standing up one forked worker (fork + first-task
#: warmup + result pickling), the fixed term of the process-pool cost
#: projection in :func:`choose_mode`. Deliberately conservative: when
#: the projected win is within the noise of this constant, threads (no
#: fixed cost, exact same results) are the safe choice.
FORK_OVERHEAD_SECONDS = 0.15


def choose_mode(probe_seconds: float, probe_words: int,
                remaining_words: int, workers: int,
                fork_available: bool,
                fork_overhead: float = FORK_OVERHEAD_SECONDS) -> str:
    """Pick ``"process"`` or ``"thread"`` from a measured probe.

    Pure function of its inputs (testable without building anything):
    the probe says one keyword costs ``probe_seconds / probe_words``
    serially, so finishing the remaining words serially costs ``S``.
    A process pool costs ``fork_overhead * workers + S / workers``;
    processes are chosen only when that projection beats ``S`` -- i.e.
    the fork is actually amortized. With no usable probe signal the
    legacy :data:`PROCESS_MODE_THRESHOLD` size cutoff decides.
    """
    if not fork_available or workers < 2 or remaining_words <= 0:
        return "thread"
    if probe_words <= 0 or probe_seconds <= 0.0:
        return ("process" if remaining_words >= PROCESS_MODE_THRESHOLD
                else "thread")
    serial_remaining = (probe_seconds / probe_words) * remaining_words
    process_projection = (fork_overhead * workers
                          + serial_remaining / workers)
    return ("process" if process_projection < serial_remaining
            else "thread")

#: One row of a shard as shipped back from a worker:
#: ``(tokens, is_phrase, encoded postings, stats tuple)``. Encoded
#: (not object) form keeps the pickle payload flat and cheap; the
#: shard itself is ``(worker wall seconds, rows)``.
_EncodedEntry = tuple[tuple[str, ...], bool, list[EncodedPosting],
                      tuple[str, float, int, int, int]]

#: Builder shared with forked workers (set only around a process-pool
#: build; fork copies it into each worker, so nothing is pickled).
_FORK_BUILDER: IndexBuilder | None = None


def _build_chunk(builder: IndexBuilder, words: Sequence[str],
                 ) -> tuple[float, list[_EncodedEntry]]:
    """Stages 2+3 for one vocabulary chunk, in encoded form.

    Returns ``(elapsed seconds, entries)`` -- the wall time is measured
    inside the worker (span tracers don't cross the fork boundary) and
    shipped back so the parent can feed its per-shard timer.
    """
    started = time.perf_counter()
    entries: list[_EncodedEntry] = []
    for word in words:
        keyword = Keyword.from_text(word)
        dil, stats = builder.build_keyword(keyword)
        entries.append((
            keyword.tokens, keyword.is_phrase, dil.encoded(),
            (stats.keyword, stats.creation_time_ms, stats.posting_count,
             stats.size_bytes, stats.ontology_entries)))
    return time.perf_counter() - started, entries


def _build_chunk_in_fork(words: Sequence[str],
                         ) -> tuple[float, list[_EncodedEntry]]:
    assert _FORK_BUILDER is not None, "worker forked before builder set"
    return _build_chunk(_FORK_BUILDER, words)


def _decode_entry(entry: _EncodedEntry,
                  ) -> tuple[DeweyInvertedList, KeywordBuildStats]:
    tokens, is_phrase, encoded, stat_row = entry
    keyword = Keyword(tokens=tuple(tokens), is_phrase=is_phrase)
    dil = DeweyInvertedList.from_encoded(keyword, encoded)
    text, elapsed_ms, posting_count, size_bytes, onto_entries = stat_row
    stats = KeywordBuildStats(
        keyword=text, creation_time_ms=elapsed_ms,
        posting_count=posting_count, size_bytes=size_bytes,
        ontology_entries=onto_entries)
    return dil, stats


class ParallelIndexBuilder:
    """Builds one strategy's XOnto-DIL index on a worker pool."""

    def __init__(self, builder: IndexBuilder, workers: int | None = None,
                 mode: str = "auto", chunk_size: int | None = None,
                 stats: StatsRegistry | None = None,
                 tracer=None) -> None:
        if mode not in ("auto", "thread", "process"):
            raise ValueError(f"unknown pool mode {mode!r}")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self._builder = builder
        self._workers = workers or (os.cpu_count() or 1)
        self._mode = mode
        self._chunk_size = chunk_size
        self._stats = stats if stats is not None else StatsRegistry()
        self._tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self._workers

    @property
    def registry(self) -> StatsRegistry:
        """Registry recording chunk/keyword/mode counters of builds."""
        return self._stats

    # ------------------------------------------------------------------
    def build(self, vocabulary: Iterable[str],
              strategy_name: str | None = None,
              store: IndexStore | None = None,
              keep_lists: bool = True) -> XOntoDILIndex:
        """Build DILs for every word of ``vocabulary`` in parallel.

        Mirrors :meth:`IndexBuilder.build`, plus streaming persistence:
        when ``store`` is given, shards are written through
        ``put_postings`` in deterministic (sorted-vocabulary) order as
        they complete, and ``keep_lists=False`` additionally drops each
        posting list after persisting it to bound memory.
        """
        strategy = strategy_name or self._builder.ontoscore.name
        index = XOntoDILIndex(strategy=strategy)
        words = sorted(set(vocabulary))
        if keep_lists is False and store is None:
            raise ValueError("keep_lists=False needs a store to stream to")
        if not words:
            return index
        chunks = self._partition(words)
        # Measured-cost mode choice: with ``auto`` and a real pool to
        # choose for, chunk 0 is built serially as a timed probe (its
        # work is needed anyway, so a wrong-looking probe costs
        # nothing) and choose_mode projects the rest.
        probe_shard = None
        if (self._mode == "auto" and self._workers > 1
                and len(chunks) > 1):
            probe_shard = _build_chunk(self._builder, chunks[0])
            self._stats.observe("parallel_build.probe", probe_shard[0])
            mode = choose_mode(
                probe_shard[0], len(chunks[0]),
                len(words) - len(chunks[0]),
                min(self._workers, len(chunks) - 1),
                "fork" in multiprocessing.get_all_start_methods())
        else:
            mode = self._resolved_mode(len(words))
        # One lock acquisition for the whole build header.
        self._stats.increment_many({
            "parallel_build.builds": 1,
            "parallel_build.keywords": len(words),
            "parallel_build.chunks": len(chunks),
            f"parallel_build.mode.{mode}": 1,
        })
        with self._tracer.span("index.parallel_build", mode=mode,
                               keywords=len(words), chunks=len(chunks)):
            if mode == "serial":
                shards = (probe_shard if chunk_id == 0
                          and probe_shard is not None
                          else _build_chunk(self._builder, chunk)
                          for chunk_id, chunk in enumerate(chunks))
                for chunk_id, shard in enumerate(shards):
                    self._merge_shard(index, shard, store, keep_lists,
                                      chunk_id)
            else:
                offset = 0
                pooled = chunks
                if probe_shard is not None:
                    self._merge_shard(index, probe_shard, store,
                                      keep_lists, 0)
                    offset, pooled = 1, chunks[1:]
                for chunk_id, shard in enumerate(
                        self._run_pool(pooled, mode)):
                    self._merge_shard(index, shard, store, keep_lists,
                                      offset + chunk_id)
        return index

    # ------------------------------------------------------------------
    def _partition(self, words: Sequence[str]) -> list[Sequence[str]]:
        """Contiguous chunks of the sorted vocabulary.

        Several chunks per worker (rather than one) so a chunk of slow
        keywords cannot serialize the tail of the build.
        """
        size = self._chunk_size
        if size is None:
            size = max(1, -(-len(words) // (self._workers * 4)))
        return [words[start:start + size]
                for start in range(0, len(words), size)]

    def _resolved_mode(self, word_count: int) -> str:
        if self._workers == 1:
            return "serial"
        if self._mode == "auto":
            if (word_count >= PROCESS_MODE_THRESHOLD
                    and "fork" in multiprocessing.get_all_start_methods()):
                return "process"
            return "thread"
        if (self._mode == "process"
                and "fork" not in multiprocessing.get_all_start_methods()):
            return "thread"
        return self._mode

    def _run_pool(self, chunks: list[Sequence[str]], mode: str):
        """Yield shards strictly in chunk order as workers finish.

        Completed out-of-order shards are buffered; the buffer can hold
        at most ``workers`` shards beyond the flush frontier, so memory
        stays bounded even when one early chunk is slow.
        """
        global _FORK_BUILDER
        workers = min(self._workers, len(chunks))
        if mode == "process":
            _FORK_BUILDER = self._builder
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"))
            task = _build_chunk_in_fork
            futures = {}
        else:
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="xonto-dil-build")
            task = None
            futures = {}
        try:
            with pool:
                for chunk_id, chunk in enumerate(chunks):
                    if task is not None:
                        future = pool.submit(task, chunk)
                    else:
                        future = pool.submit(_build_chunk, self._builder,
                                             chunk)
                    futures[future] = chunk_id
                ready: dict[int, tuple[float, list[_EncodedEntry]]] = {}
                next_chunk = 0
                for future in concurrent.futures.as_completed(futures):
                    ready[futures[future]] = future.result()
                    while next_chunk in ready:
                        yield ready.pop(next_chunk)
                        next_chunk += 1
        finally:
            if mode == "process":
                _FORK_BUILDER = None

    def _merge_shard(self, index: XOntoDILIndex,
                     shard: tuple[float, list[_EncodedEntry]],
                     store: IndexStore | None, keep_lists: bool,
                     chunk_id: int) -> None:
        build_seconds, entries = shard
        # The worker-side wall time rides along with the shard (a
        # tracer cannot observe across the fork); the merge itself is
        # spanned here in the parent.
        self._stats.observe("parallel_build.shard_build", build_seconds)
        if self._tracer.registry is not self._stats:
            self._tracer.observe("parallel_build.shard_build",
                                 build_seconds)
        postings_flushed = 0
        with self._tracer.span("index.merge_shard", chunk=chunk_id,
                               keywords=len(entries)) as span:
            for entry in entries:
                dil, stats = _decode_entry(entry)
                index.add(dil, stats)
                if store is not None:
                    key = index_key(dil.keyword)
                    if dil:  # stores treat empty lists as absent
                        store.put_postings(index.strategy, key,
                                           dil.encoded())
                        postings_flushed += len(dil)
                    if not keep_lists:
                        del index.lists[key]
            span.annotate(postings_flushed=postings_flushed)
        # Per-shard counters land as one batch, not one lock
        # acquisition per keyword/posting.
        self._stats.increment_many({
            "parallel_build.shards_merged": 1,
            "parallel_build.keywords_merged": len(entries),
            "parallel_build.postings_flushed": postings_flushed,
        })
