"""Retry decorator for transient storage faults.

:class:`RetryingStore` wraps any :class:`~repro.storage.interface.IndexStore`
and retries operations that raise
:class:`~repro.storage.errors.TransientStorageError` -- the taxonomy's
"try again" class, e.g. SQLite's ``database is locked`` under a
concurrent writer -- with bounded exponential backoff and
*deterministic* jitter (a seeded PRNG, so a test run with the same
fault pattern sleeps the same schedule every time). Anything outside
the transient class (corruption, incompatibility, plain errors)
propagates immediately: retrying a corrupt file only wastes the
caller's latency budget.

Counters land in a :class:`~repro.core.stats.StatsRegistry` under the
``storage.retry.*`` names so the CLI's ``--verbose`` output shows how
hard the store had to work.

**Time budgets.** Unbounded, retrying can sleep long past the point
where the caller still wants an answer -- the worst case
(``max_attempts=4``) is ~0.35 s of pure backoff per operation, which a
100 ms request deadline cannot survive even once. Two mechanisms bound
it:

* an explicit per-operation ``budget`` (seconds): sleeps never push
  one operation's total elapsed time past it;
* the **ambient request deadline** of
  :func:`repro.core.deadline.current_deadline`, published by the
  serving layer around each request: a backoff sleep the deadline
  could not survive is skipped and the transient error re-raised
  immediately, leaving the caller its remaining milliseconds to
  degrade instead of sleeping through them.

Either cut-short re-raises the *original* transient error and counts
under ``storage.retry.budget_exhausted`` (in addition to the ordinary
give-up counter).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterator, Sequence, TypeVar

from ..core.deadline import current_deadline
from ..core.obs.tracer import NULL_TRACER
from ..core.stats import (RETRY_ATTEMPTS, RETRY_BUDGET_EXHAUSTED,
                          RETRY_GIVEUPS, RETRY_RECOVERIES, StatsRegistry)
from .errors import TransientStorageError
from .interface import EncodedPosting, IndexStore

Result = TypeVar("Result")


class RetryingStore(IndexStore):
    """Bounded-backoff retry wrapper around any :class:`IndexStore`."""

    def __init__(self, inner: IndexStore, max_attempts: int = 4,
                 base_delay: float = 0.05, max_delay: float = 2.0,
                 jitter: float = 0.25, seed: int = 0,
                 stats: StatsRegistry | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 tracer=None, budget: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if budget is not None and budget < 0:
            raise ValueError("budget must be None or non-negative")
        self._inner = inner
        self._max_attempts = max_attempts
        self._base_delay = base_delay
        self._max_delay = max_delay
        self._jitter = jitter
        self._random = random.Random(seed)
        self._stats = stats if stats is not None else StatsRegistry()
        self._sleep = sleep
        self._budget = budget
        self._clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    @property
    def inner(self) -> IndexStore:
        return self._inner

    @property
    def registry(self) -> StatsRegistry:
        return self._stats

    def _time_allowance(self, started: float) -> float | None:
        """Seconds of sleeping this operation may still afford, or
        ``None`` when neither a budget nor an ambient deadline bounds
        it. The binding constraint wins (the minimum)."""
        allowance: float | None = None
        if self._budget is not None:
            allowance = self._budget - (self._clock() - started)
        deadline = current_deadline()
        if deadline is not None:
            remaining = deadline.remaining()
            allowance = (remaining if allowance is None
                         else min(allowance, remaining))
        return allowance

    def _retry(self, call: Callable[[], Result]) -> Result:
        started = self._clock()
        delay = self._base_delay
        for attempt in range(1, self._max_attempts + 1):
            try:
                result = call()
            except TransientStorageError:
                self._stats.increment(RETRY_ATTEMPTS)
                if attempt == self._max_attempts:
                    self._stats.increment(RETRY_GIVEUPS)
                    raise
                pause = min(delay, self._max_delay)
                pause *= 1.0 + self._jitter * self._random.random()
                allowance = self._time_allowance(started)
                if allowance is not None and pause >= allowance:
                    # Sleeping would overshoot the caller's window:
                    # hand back the remaining time instead of burning
                    # it on a backoff the caller can't wait out.
                    self._stats.increment(RETRY_BUDGET_EXHAUSTED)
                    self._stats.increment(RETRY_GIVEUPS)
                    raise
                self._sleep(pause)
                delay *= 2.0
            else:
                if attempt > 1:
                    self._stats.increment(RETRY_RECOVERIES)
                return result
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    def put_postings(self, strategy: str, keyword: str,
                     postings: Sequence[EncodedPosting]) -> None:
        self._retry(lambda: self._inner.put_postings(strategy, keyword,
                                                     postings))

    def get_postings(self, strategy: str, keyword: str,
                     ) -> list[EncodedPosting]:
        # The span covers every attempt and each backoff sleep, so the
        # profile shows what a flaky backend really costs the caller.
        with self.tracer.span("storage.read", keyword=keyword):
            return self._retry(
                lambda: self._inner.get_postings(strategy, keyword))

    def keywords(self, strategy: str) -> Iterator[str]:
        # Materialized under retry: a generator could fault mid-stream,
        # after items were already consumed.
        return iter(self._retry(
            lambda: list(self._inner.keywords(strategy))))

    def posting_count(self, strategy: str, keyword: str) -> int:
        return self._retry(
            lambda: self._inner.posting_count(strategy, keyword))

    # ------------------------------------------------------------------
    def put_document(self, doc_id: int, xml_text: str) -> None:
        self._retry(lambda: self._inner.put_document(doc_id, xml_text))

    def get_document(self, doc_id: int) -> str:
        return self._retry(lambda: self._inner.get_document(doc_id))

    def document_ids(self) -> Iterator[int]:
        return iter(self._retry(
            lambda: list(self._inner.document_ids())))

    def delete_document(self, doc_id: int) -> None:
        self._retry(lambda: self._inner.delete_document(doc_id))

    # ------------------------------------------------------------------
    def put_metadata(self, key: str, value: str) -> None:
        self._retry(lambda: self._inner.put_metadata(key, value))

    def get_metadata(self, key: str, default: str | None = None,
                     ) -> str | None:
        return self._retry(lambda: self._inner.get_metadata(key, default))

    def metadata_keys(self) -> Iterator[str]:
        return iter(self._retry(
            lambda: list(self._inner.metadata_keys())))

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._inner.close()
