"""Integrity manifests and crash-safe index builds.

A persisted XOnto-DIL index is only trustworthy if we can tell, after
the fact, that (a) the build that wrote it ran to completion and (b)
nothing has silently changed since. The manifest is a small set of
metadata entries written by the build and checked by
:func:`verify_manifest` / ``python -m repro verify-index``:

``manifest.version``
    Format version of the manifest itself.
``manifest.build_complete``
    ``"0"`` while a build is writing, ``"1"`` only after everything
    else (postings, documents, parameters, checksums) has landed.
    Written *last*, so a build killed at any point leaves a store that
    loaders reject.
``manifest.checksum.<strategy>``
    SHA-256 over the canonical JSON form of every posting list of the
    strategy, recomputed from the store after the build -- truncation
    or tampering of any list changes it.
``manifest.corpus_fingerprint``
    SHA-256 over the serialized documents the index was built from.
    Lets the engine refuse an index built from a different corpus, and
    lets ``verify-index`` detect damaged documents without the corpus.

Crash safety of ``python -m repro index`` is completed by
:func:`atomic_sqlite_build`: the database is written to a temporary
sibling path and atomically renamed over the target only on success,
so an interrupted build never leaves a partial file at the published
path at all.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from .errors import CorruptIndexError, StorageError
from .interface import EncodedPosting, IndexStore
from .sqlite_store import SQLiteStore

MANIFEST_VERSION_KEY = "manifest.version"
MANIFEST_VERSION = "1"
BUILD_COMPLETE_KEY = "manifest.build_complete"
BUILD_COMPLETE = "1"
BUILD_IN_PROGRESS = "0"
CORPUS_FINGERPRINT_KEY = "manifest.corpus_fingerprint"
CHECKSUM_KEY_PREFIX = "manifest.checksum."


# ----------------------------------------------------------------------
# Checksums
# ----------------------------------------------------------------------
def postings_checksum(
        lists: Mapping[str, Sequence[EncodedPosting]]) -> str:
    """SHA-256 over the canonical JSON form of keyword → posting list.

    Keys are sorted and floats use Python's shortest round-trip repr,
    so two stores hold checksum-equal postings iff the lists are
    value-identical (same contract as
    :func:`~repro.storage.interface.canonical_dump`).
    """
    payload = {keyword: [[dewey, float(score)] for dewey, score in entry]
               for keyword, entry in lists.items()}
    encoded = json.dumps(payload, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def store_checksum(store: IndexStore, strategy: str) -> str:
    """Checksum of one strategy's posting lists as the store holds them."""
    return postings_checksum(
        {keyword: store.get_postings(strategy, keyword)
         for keyword in store.keywords(strategy)})


def corpus_fingerprint(documents: Iterable[tuple[int, str]]) -> str:
    """SHA-256 over ``(doc_id, serialized XML)`` pairs, order-free."""
    payload = [[doc_id, text] for doc_id, text in sorted(documents)]
    encoded = json.dumps(payload, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


# ----------------------------------------------------------------------
# Build protocol
# ----------------------------------------------------------------------
def mark_build_started(store: IndexStore) -> None:
    """First write of a build: flip the store to *incomplete* so a
    crash anywhere after this point leaves a rejectable store."""
    store.put_metadata(BUILD_COMPLETE_KEY, BUILD_IN_PROGRESS)


def finalize_manifest(store: IndexStore, strategy: str,
                      fingerprint: str) -> None:
    """Last writes of a build, completion marker strictly last."""
    store.put_metadata(MANIFEST_VERSION_KEY, MANIFEST_VERSION)
    store.put_metadata(CHECKSUM_KEY_PREFIX + strategy,
                       store_checksum(store, strategy))
    store.put_metadata(CORPUS_FINGERPRINT_KEY, fingerprint)
    store.put_metadata(BUILD_COMPLETE_KEY, BUILD_COMPLETE)


def manifest_strategies(store: IndexStore) -> list[str]:
    """Strategies with a recorded posting-list checksum."""
    return sorted(key[len(CHECKSUM_KEY_PREFIX):]
                  for key in store.metadata_keys()
                  if key.startswith(CHECKSUM_KEY_PREFIX))


def is_complete(store: IndexStore) -> bool:
    return store.get_metadata(BUILD_COMPLETE_KEY) == BUILD_COMPLETE


def require_complete(store: IndexStore) -> None:
    """Raise :class:`CorruptIndexError` unless the completion marker is
    set -- the load-time gate against interrupted builds."""
    marker = store.get_metadata(BUILD_COMPLETE_KEY)
    if marker == BUILD_COMPLETE:
        return
    if marker == BUILD_IN_PROGRESS:
        raise CorruptIndexError(
            "index store was written by a build that never completed "
            "(manifest.build_complete=0); rebuild it with "
            "`python -m repro index`")
    raise CorruptIndexError(
        "index store has no build-completion marker (interrupted or "
        "pre-manifest build); rebuild it with `python -m repro index`")


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------
@dataclass
class ManifestReport:
    """Outcome of an end-to-end manifest check."""

    problems: list[str] = field(default_factory=list)
    #: strategy → number of posting lists whose checksum was verified.
    strategies: dict[str, int] = field(default_factory=dict)
    #: strategy/namespace → the recorded SHA-256 the check ran against
    #: (so operators can quote and compare checksums across replicas).
    checksums: dict[str, str] = field(default_factory=dict)
    documents: int = 0
    #: Benign observations that do not fail the check -- tombstones
    #: awaiting compaction, orphaned rows left by a crashed append or
    #: compaction (invisible to queries, reclaimed by compaction).
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def describe(self) -> list[str]:
        lines = []
        for strategy in sorted(self.strategies):
            checksum = self.checksums.get(strategy)
            suffix = (f" (sha256 {checksum[:12]})" if checksum else "")
            lines.append(f"strategy {strategy}: "
                         f"{self.strategies[strategy]} posting lists "
                         f"checksum-verified{suffix}")
        lines.append(f"documents: {self.documents} fingerprint-checked")
        for note in self.notes:
            lines.append(f"manifest: NOTE - {note}")
        if self.ok:
            lines.append("manifest: OK")
        else:
            for problem in self.problems:
                lines.append(f"manifest: FAIL - {problem}")
        return lines


def verify_manifest(store: IndexStore,
                    strategies: Sequence[str] | None = None,
                    ) -> ManifestReport:
    """Check a store's manifest end to end.

    Verifies the completion marker, recomputes every per-strategy
    posting-list checksum and the corpus fingerprint from the stored
    documents, and reports every divergence (it does not stop at the
    first problem -- operators want the full damage picture).

    A *segmented* store (one holding a ``segments.catalog``) is checked
    segment-aware instead: every live segment's checksum is recomputed
    over its own namespace, the live-document fingerprint is checked
    against the catalog, and leftovers of crash-interrupted mutations
    (orphaned rows/namespaces, tombstones awaiting compaction) are
    surfaced as notes -- they are invisible to queries, not damage.
    """
    from .segments import load_catalog
    report = ManifestReport()
    marker = store.get_metadata(BUILD_COMPLETE_KEY)
    if marker != BUILD_COMPLETE:
        report.problems.append(
            "build-completion marker missing or unset "
            f"(found {marker!r}); the build was interrupted or predates "
            "manifests")
    if store.get_metadata(MANIFEST_VERSION_KEY) != MANIFEST_VERSION:
        report.problems.append("manifest version missing or unsupported")
    catalog = None
    try:
        catalog = load_catalog(store)
    except CorruptIndexError as exc:
        report.problems.append(str(exc))
    names = list(strategies) if strategies else manifest_strategies(store)
    if catalog is not None:
        _verify_segments(store, catalog, report)
        # The catalog supersedes the plain checksum/fingerprint entries
        # for its own strategy: appends leave those stale by design
        # (refreshing them would cost a whole-index checksum per
        # append); compaction brings them back in sync.
        names = [name for name in names if name != catalog.strategy]
    elif not names:
        report.problems.append("no per-strategy checksums recorded")
    for strategy in names:
        expected = store.get_metadata(CHECKSUM_KEY_PREFIX + strategy)
        if expected is None:
            report.problems.append(
                f"no checksum recorded for strategy {strategy!r}")
            continue
        lists = {keyword: store.get_postings(strategy, keyword)
                 for keyword in store.keywords(strategy)}
        if postings_checksum(lists) != expected:
            report.problems.append(
                f"posting-list checksum mismatch for strategy "
                f"{strategy!r} ({len(lists)} lists)")
        report.strategies[strategy] = len(lists)
        report.checksums[strategy] = expected
    if catalog is None:
        expected_fingerprint = store.get_metadata(CORPUS_FINGERPRINT_KEY)
        documents = [(doc_id, store.get_document(doc_id))
                     for doc_id in store.document_ids()]
        report.documents = len(documents)
        if expected_fingerprint is None:
            report.problems.append("no corpus fingerprint recorded")
        elif corpus_fingerprint(documents) != expected_fingerprint:
            report.problems.append(
                "corpus fingerprint mismatch: stored documents differ "
                "from the corpus the index was built from")
    return report


def _verify_segments(store: IndexStore, catalog,
                     report: ManifestReport) -> None:
    """The segment-aware arm of :func:`verify_manifest`."""
    from .segments import segment_namespace
    for record in catalog.segments:
        lists = {keyword: store.get_postings(record.namespace, keyword)
                 for keyword in store.keywords(record.namespace)}
        if postings_checksum(lists) != record.checksum:
            report.problems.append(
                f"posting-list checksum mismatch for segment "
                f"{record.segment_id} ({record.namespace!r}, "
                f"{len(lists)} lists)")
        report.strategies[record.namespace] = len(lists)
        report.checksums[record.namespace] = record.checksum
    live_documents = []
    missing = []
    for doc_id in sorted(catalog.live_set):
        try:
            live_documents.append((doc_id, store.get_document(doc_id)))
        except StorageError:
            missing.append(doc_id)
    report.documents = len(live_documents)
    if missing:
        report.problems.append(
            f"live documents missing from the store: {missing}")
    elif corpus_fingerprint(live_documents) != catalog.live_fingerprint:
        report.problems.append(
            "live-corpus fingerprint mismatch: stored documents differ "
            "from the documents the segments were built from")
    tombstones = catalog.tombstone_count
    if tombstones:
        report.notes.append(
            f"{tombstones} tombstoned document(s) awaiting compaction")
    orphan_rows = sorted(set(store.document_ids())
                         - catalog.segment_doc_ids())
    if orphan_rows:
        report.notes.append(
            f"orphaned document rows {orphan_rows} from an interrupted "
            f"append; invisible to queries, reclaimed by compaction")
    known = {record.namespace for record in catalog.segments}
    for probe_id in range(catalog.next_id + 2):
        namespace = segment_namespace(catalog.strategy, probe_id)
        if namespace in known:
            continue
        if next(iter(store.keywords(namespace)), None) is not None:
            report.notes.append(
                f"orphaned posting namespace {namespace!r} from an "
                f"interrupted append or compaction; invisible to "
                f"queries, reclaimed by compaction")


# ----------------------------------------------------------------------
# Crash-safe file builds
# ----------------------------------------------------------------------
@contextmanager
def atomic_sqlite_build(path: str) -> Iterator[SQLiteStore]:
    """Build a SQLite index at ``path`` via temp-file + atomic rename.

    The store handed to the ``with`` body lives at ``path + ".building"``
    (same directory, so the final ``os.replace`` is atomic on POSIX).
    On success the temp file replaces ``path``; on any error -- or a
    process kill, which simply never reaches the rename -- the
    published path is untouched and the temp file is removed (or left
    behind by a kill, where the next build discards it).
    """
    temp_path = path + ".building"
    if os.path.exists(temp_path):
        os.remove(temp_path)
    store = SQLiteStore(temp_path)
    try:
        yield store
    except BaseException:
        store.close()
        with contextlib.suppress(OSError):
            os.remove(temp_path)
        raise
    store.close()
    os.replace(temp_path, path)
