"""SQLite-backed :class:`IndexStore` implementation.

The durable counterpart of :class:`~repro.storage.memory_store.MemoryStore`
and the stand-in for the paper's SQL Server deployment. Posting lists are
stored row-per-posting with a composite primary key so partial scans and
counts stay in the database; writes are batched per keyword inside a
transaction.
"""

from __future__ import annotations

import sqlite3
from typing import Iterator, Sequence

from .interface import EncodedPosting, IndexStore, StorageError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS postings (
    strategy  TEXT NOT NULL,
    keyword   TEXT NOT NULL,
    position  INTEGER NOT NULL,
    dewey     TEXT NOT NULL,
    score     REAL NOT NULL,
    PRIMARY KEY (strategy, keyword, position)
);
CREATE TABLE IF NOT EXISTS documents (
    doc_id    INTEGER PRIMARY KEY,
    xml_text  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS metadata (
    key       TEXT PRIMARY KEY,
    value     TEXT NOT NULL
);
"""


class SQLiteStore(IndexStore):
    """Stores indexes in a SQLite database file (or ``":memory:"``)."""

    def __init__(self, path: str = ":memory:") -> None:
        self._connection = sqlite3.connect(path)
        self._connection.executescript(_SCHEMA)
        self._connection.commit()

    # ------------------------------------------------------------------
    def put_postings(self, strategy: str, keyword: str,
                     postings: Sequence[EncodedPosting]) -> None:
        with self._connection:
            self._connection.execute(
                "DELETE FROM postings WHERE strategy = ? AND keyword = ?",
                (strategy, keyword))
            self._connection.executemany(
                "INSERT INTO postings "
                "(strategy, keyword, position, dewey, score) "
                "VALUES (?, ?, ?, ?, ?)",
                ((strategy, keyword, position, dewey, float(score))
                 for position, (dewey, score) in enumerate(postings)))

    def get_postings(self, strategy: str, keyword: str,
                     ) -> list[EncodedPosting]:
        rows = self._connection.execute(
            "SELECT dewey, score FROM postings "
            "WHERE strategy = ? AND keyword = ? ORDER BY position",
            (strategy, keyword))
        return [(dewey, score) for dewey, score in rows]

    def keywords(self, strategy: str) -> Iterator[str]:
        rows = self._connection.execute(
            "SELECT DISTINCT keyword FROM postings WHERE strategy = ?",
            (strategy,))
        for (keyword,) in rows:
            yield keyword

    def posting_count(self, strategy: str, keyword: str) -> int:
        row = self._connection.execute(
            "SELECT COUNT(*) FROM postings "
            "WHERE strategy = ? AND keyword = ?",
            (strategy, keyword)).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    def put_document(self, doc_id: int, xml_text: str) -> None:
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO documents (doc_id, xml_text) "
                "VALUES (?, ?)", (doc_id, xml_text))

    def get_document(self, doc_id: int) -> str:
        row = self._connection.execute(
            "SELECT xml_text FROM documents WHERE doc_id = ?",
            (doc_id,)).fetchone()
        if row is None:
            raise StorageError(f"no stored document {doc_id}")
        return row[0]

    def document_ids(self) -> Iterator[int]:
        rows = self._connection.execute(
            "SELECT doc_id FROM documents ORDER BY doc_id")
        for (doc_id,) in rows:
            yield int(doc_id)

    # ------------------------------------------------------------------
    def put_metadata(self, key: str, value: str) -> None:
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO metadata (key, value) "
                "VALUES (?, ?)", (key, value))

    def get_metadata(self, key: str, default: str | None = None,
                     ) -> str | None:
        row = self._connection.execute(
            "SELECT value FROM metadata WHERE key = ?", (key,)).fetchone()
        return default if row is None else row[0]

    def metadata_keys(self) -> Iterator[str]:
        rows = self._connection.execute(
            "SELECT key FROM metadata ORDER BY key")
        for (key,) in rows:
            yield key

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._connection.close()
