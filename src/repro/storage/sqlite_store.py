"""SQLite-backed :class:`IndexStore` implementation.

The durable counterpart of :class:`~repro.storage.memory_store.MemoryStore`
and the stand-in for the paper's SQL Server deployment. Posting lists are
stored row-per-posting with a composite primary key so partial scans and
counts stay in the database; writes are batched per keyword inside a
transaction.

Resilience contract (see :mod:`repro.storage.errors`):

* no raw ``sqlite3`` exception escapes -- every driver error is
  translated at the API boundary (locked/busy handles become
  :class:`TransientStorageError`, damaged files become
  :class:`CorruptIndexError`, the rest :class:`StorageError`);
* the file is probed at *open* time, so pointing the store at garbage
  fails immediately with the path in the message instead of at the
  first query;
* ``read_only=True`` opens the database through a ``mode=ro`` URI and
  requires the file (and the index schema) to already exist -- the
  query path can never silently create an empty index;
* one connection is shared across threads (``check_same_thread=False``)
  behind an internal lock, so concurrent readers -- e.g. the request
  threads of a server front-end -- are safe.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .errors import (CorruptIndexError, StorageError,
                     TransientStorageError)
from .interface import EncodedPosting, IndexStore

_SCHEMA = """
CREATE TABLE IF NOT EXISTS postings (
    strategy  TEXT NOT NULL,
    keyword   TEXT NOT NULL,
    position  INTEGER NOT NULL,
    dewey     TEXT NOT NULL,
    score     REAL NOT NULL,
    PRIMARY KEY (strategy, keyword, position)
);
CREATE TABLE IF NOT EXISTS documents (
    doc_id    INTEGER PRIMARY KEY,
    xml_text  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS metadata (
    key       TEXT PRIMARY KEY,
    value     TEXT NOT NULL
);
"""

_TABLES = frozenset({"postings", "documents", "metadata"})

#: ``sqlite3.OperationalError`` messages that mark a retryable fault.
_TRANSIENT_MARKERS = ("locked", "busy")

#: Messages that mark a damaged database regardless of exception class.
_CORRUPT_MARKERS = ("malformed", "not a database", "corrupt")


def translate_sqlite_error(exc: sqlite3.Error, path: str) -> StorageError:
    """Map a raw ``sqlite3`` exception onto the storage taxonomy."""
    message = str(exc) or exc.__class__.__name__
    lowered = message.lower()
    if any(marker in lowered for marker in _CORRUPT_MARKERS):
        return CorruptIndexError(f"{path}: {message}")
    if isinstance(exc, sqlite3.OperationalError):
        if any(marker in lowered for marker in _TRANSIENT_MARKERS):
            return TransientStorageError(f"{path}: {message}")
        return StorageError(f"{path}: {message}")
    if isinstance(exc, sqlite3.DatabaseError):
        # DatabaseError outside the Operational subtree means the file
        # itself is unreadable as a database.
        return CorruptIndexError(f"{path}: {message}")
    return StorageError(f"{path}: {message}")


class SQLiteStore(IndexStore):
    """Stores indexes in a SQLite database file (or ``":memory:"``).

    ``tracer`` (any :class:`~repro.core.obs.tracer.Tracer`-shaped
    object) wraps each posting-list read in a ``storage.sqlite.read``
    span so ``--profile`` attributes query latency to the backend.
    """

    def __init__(self, path: str = ":memory:",
                 read_only: bool = False, tracer=None) -> None:
        if tracer is None:
            from ..core.obs.tracer import NULL_TRACER
            tracer = NULL_TRACER
        self.tracer = tracer
        self._path = path
        self._lock = threading.RLock()
        if read_only:
            if path == ":memory:":
                raise StorageError(
                    "read-only mode needs an existing database file")
            if not os.path.exists(path):
                raise StorageError(f"no index store at {path}")
            self._recover_hot_journal(path)
            uri = f"{Path(path).resolve().as_uri()}?mode=ro"
            connect_args: tuple = (uri,)
            connect_kwargs = {"uri": True, "check_same_thread": False}
        else:
            connect_args = (path,)
            connect_kwargs = {"check_same_thread": False}
        try:
            self._connection = sqlite3.connect(*connect_args,
                                               **connect_kwargs)
        except sqlite3.Error as exc:
            raise translate_sqlite_error(exc, path) from exc
        self._probe(read_only)

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        return self._path

    @staticmethod
    def _recover_hot_journal(path: str) -> None:
        """Roll back a crashed writer's hot journal before a read-only
        open.

        Incremental appends and compactions mutate the published store
        in place, so a SIGKILLed writer can leave ``<path>-journal``
        behind. SQLite recovers it (restoring the last committed
        state) on the next access -- but recovery is a write, which a
        ``mode=ro`` connection refuses. One throwaway writable open
        performs the rollback; if the file is on read-only media the
        attempt fails silently and the read-only open reports the
        original condition.
        """
        if not os.path.exists(path + "-journal"):
            return
        try:
            recovery = sqlite3.connect(path)
            try:
                recovery.execute("PRAGMA schema_version").fetchone()
            finally:
                recovery.close()
        except sqlite3.Error:
            pass

    def _probe(self, read_only: bool) -> None:
        """Validate the file at open time; create the schema if allowed.

        A truncated or garbage file passes ``sqlite3.connect`` (the
        driver opens lazily) but fails the first real read, so we force
        one here -- a corrupt store raises :class:`CorruptIndexError`
        with the path immediately instead of at an arbitrary later
        query.
        """
        try:
            self._connection.execute("PRAGMA schema_version").fetchone()
            if read_only:
                rows = self._connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'")
                missing = _TABLES - {name for (name,) in rows}
                if missing:
                    raise CorruptIndexError(
                        f"{self._path}: not an index store "
                        f"(missing tables: {', '.join(sorted(missing))})")
            else:
                self._connection.executescript(_SCHEMA)
                self._connection.commit()
        except sqlite3.Error as exc:
            self._connection.close()
            raise translate_sqlite_error(exc, self._path) from exc
        except StorageError:
            self._connection.close()
            raise

    @contextmanager
    def _guarded(self):
        """Serialize access to the shared connection and translate any
        driver exception into the storage taxonomy."""
        with self._lock:
            try:
                yield
            except sqlite3.Error as exc:
                raise translate_sqlite_error(exc, self._path) from exc

    # ------------------------------------------------------------------
    def put_postings(self, strategy: str, keyword: str,
                     postings: Sequence[EncodedPosting]) -> None:
        with self._guarded(), self._connection:
            self._connection.execute(
                "DELETE FROM postings WHERE strategy = ? AND keyword = ?",
                (strategy, keyword))
            self._connection.executemany(
                "INSERT INTO postings "
                "(strategy, keyword, position, dewey, score) "
                "VALUES (?, ?, ?, ?, ?)",
                ((strategy, keyword, position, dewey, float(score))
                 for position, (dewey, score) in enumerate(postings)))

    def put_postings_many(
            self, strategy: str,
            items: Iterable[tuple[str, Sequence[EncodedPosting]]]) -> None:
        # One transaction for the whole batch: per-list transactions
        # commit (fsync) each list and cap throughput at a few hundred
        # lists per second, which the ontology indexes (10^5+ keys per
        # build) cannot afford.
        with self._guarded(), self._connection:
            for keyword, postings in items:
                self._connection.execute(
                    "DELETE FROM postings "
                    "WHERE strategy = ? AND keyword = ?",
                    (strategy, keyword))
                self._connection.executemany(
                    "INSERT INTO postings "
                    "(strategy, keyword, position, dewey, score) "
                    "VALUES (?, ?, ?, ?, ?)",
                    ((strategy, keyword, position, dewey, float(score))
                     for position, (dewey, score) in enumerate(postings)))

    def get_postings(self, strategy: str, keyword: str,
                     ) -> list[EncodedPosting]:
        with self.tracer.span("storage.sqlite.read",
                              keyword=keyword) as span:
            with self._guarded():
                rows = self._connection.execute(
                    "SELECT dewey, score FROM postings "
                    "WHERE strategy = ? AND keyword = ? ORDER BY position",
                    (strategy, keyword)).fetchall()
            span.annotate(rows=len(rows))
        return [(dewey, score) for dewey, score in rows]

    def keywords(self, strategy: str) -> Iterator[str]:
        with self._guarded():
            rows = self._connection.execute(
                "SELECT DISTINCT keyword FROM postings WHERE strategy = ?",
                (strategy,)).fetchall()
        for (keyword,) in rows:
            yield keyword

    def posting_count(self, strategy: str, keyword: str) -> int:
        with self._guarded():
            row = self._connection.execute(
                "SELECT COUNT(*) FROM postings "
                "WHERE strategy = ? AND keyword = ?",
                (strategy, keyword)).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    def put_document(self, doc_id: int, xml_text: str) -> None:
        with self._guarded(), self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO documents (doc_id, xml_text) "
                "VALUES (?, ?)", (doc_id, xml_text))

    def get_document(self, doc_id: int) -> str:
        with self._guarded():
            row = self._connection.execute(
                "SELECT xml_text FROM documents WHERE doc_id = ?",
                (doc_id,)).fetchone()
        if row is None:
            raise StorageError(f"no stored document {doc_id}")
        return row[0]

    def document_ids(self) -> Iterator[int]:
        with self._guarded():
            rows = self._connection.execute(
                "SELECT doc_id FROM documents ORDER BY doc_id").fetchall()
        for (doc_id,) in rows:
            yield int(doc_id)

    def delete_document(self, doc_id: int) -> None:
        with self._guarded(), self._connection:
            self._connection.execute(
                "DELETE FROM documents WHERE doc_id = ?", (doc_id,))

    # ------------------------------------------------------------------
    def put_metadata(self, key: str, value: str) -> None:
        with self._guarded(), self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO metadata (key, value) "
                "VALUES (?, ?)", (key, value))

    def put_metadata_many(self,
                          items: Iterable[tuple[str, str]]) -> None:
        with self._guarded(), self._connection:
            self._connection.executemany(
                "INSERT OR REPLACE INTO metadata (key, value) "
                "VALUES (?, ?)", items)

    def get_metadata(self, key: str, default: str | None = None,
                     ) -> str | None:
        with self._guarded():
            row = self._connection.execute(
                "SELECT value FROM metadata WHERE key = ?",
                (key,)).fetchone()
        return default if row is None else row[0]

    def metadata_keys(self) -> Iterator[str]:
        with self._guarded():
            rows = self._connection.execute(
                "SELECT key FROM metadata ORDER BY key").fetchall()
        for (key,) in rows:
            yield key

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._connection.close()
