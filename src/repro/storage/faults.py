"""Deterministic fault injection for storage resilience tests.

:class:`FaultInjectingStore` decorates any
:class:`~repro.storage.interface.IndexStore` with seeded chaos:

* **transient faults** -- each guarded call fails with
  :class:`TransientStorageError` with probability ``transient_rate``
  (a seeded PRNG, so a given seed always produces the same fault
  pattern and tests are reproducible);
* **corruption** -- posting lists of ``corrupt_keywords`` come back
  with mangled Dewey IDs, modeling on-disk damage that only shows at
  decode time;
* **latency** -- every guarded call sleeps ``latency`` seconds first
  (the sleep function is injectable so tests just count calls);
* **simulated crashes** -- after ``fail_after_writes`` successful write
  operations, every further write raises a permanent
  :class:`StorageError`, which aborts a build mid-flight exactly the
  way a killed process would: with the completion marker never set.

The injected-fault counters land in a
:class:`~repro.core.stats.StatsRegistry` under ``faults.injected.*`` so
assertions can check that a test actually exercised the fault path.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Collection, Iterator, Sequence

from ..core.stats import (FAULTS_CORRUPTION, FAULTS_CRASHES,
                          FAULTS_LATENCY, FAULTS_TRANSIENT,
                          StatsRegistry)
from .errors import StorageError, TransientStorageError
from .interface import EncodedPosting, IndexStore

#: Dewey string injected in place of real ones for corrupt keywords;
#: guaranteed unparseable by :meth:`repro.xmldoc.dewey.DeweyID.parse`.
CORRUPT_DEWEY = "corrupt.posting.!"

_WRITE_OPERATIONS = frozenset(
    {"put_postings", "put_document", "put_metadata",
     "delete_document"})


class FaultInjectingStore(IndexStore):
    """Seeded chaos decorator around any :class:`IndexStore`."""

    def __init__(self, inner: IndexStore, seed: int = 0,
                 transient_rate: float = 0.0,
                 corrupt_keywords: Collection[str] = (),
                 latency: float = 0.0,
                 fail_after_writes: int | None = None,
                 operations: Collection[str] | None = None,
                 stats: StatsRegistry | None = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if not 0.0 <= transient_rate < 1.0:
            raise ValueError("transient_rate must lie in [0, 1)")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if fail_after_writes is not None and fail_after_writes < 0:
            raise ValueError("fail_after_writes must be None or >= 0")
        self._inner = inner
        self._random = random.Random(seed)
        self._transient_rate = transient_rate
        self._corrupt_keywords = frozenset(corrupt_keywords)
        self._latency = latency
        self._fail_after_writes = fail_after_writes
        self._operations = (frozenset(operations)
                            if operations is not None else None)
        self._stats = stats if stats is not None else StatsRegistry()
        self._sleep = sleep
        self._writes = 0

    # ------------------------------------------------------------------
    @property
    def inner(self) -> IndexStore:
        return self._inner

    @property
    def registry(self) -> StatsRegistry:
        return self._stats

    @property
    def writes(self) -> int:
        """Write operations that reached the inner store."""
        return self._writes

    def _guard(self, operation: str) -> None:
        if (self._operations is not None
                and operation not in self._operations):
            return
        if self._latency > 0:
            self._stats.increment(FAULTS_LATENCY)
            self._sleep(self._latency)
        if (operation in _WRITE_OPERATIONS
                and self._fail_after_writes is not None
                and self._writes >= self._fail_after_writes):
            self._stats.increment(FAULTS_CRASHES)
            raise StorageError(
                f"injected permanent write failure in {operation} "
                f"(simulated crash after {self._writes} writes)")
        if (self._transient_rate
                and self._random.random() < self._transient_rate):
            self._stats.increment(FAULTS_TRANSIENT)
            raise TransientStorageError(
                f"injected transient fault in {operation}")
        if operation in _WRITE_OPERATIONS:
            self._writes += 1

    # ------------------------------------------------------------------
    def put_postings(self, strategy: str, keyword: str,
                     postings: Sequence[EncodedPosting]) -> None:
        self._guard("put_postings")
        self._inner.put_postings(strategy, keyword, postings)

    def get_postings(self, strategy: str, keyword: str,
                     ) -> list[EncodedPosting]:
        self._guard("get_postings")
        postings = self._inner.get_postings(strategy, keyword)
        if keyword in self._corrupt_keywords:
            self._stats.increment(FAULTS_CORRUPTION)
            if not postings:
                return [(CORRUPT_DEWEY, 1.0)]
            return [(CORRUPT_DEWEY, score) for _, score in postings]
        return postings

    def keywords(self, strategy: str) -> Iterator[str]:
        self._guard("keywords")
        return iter(list(self._inner.keywords(strategy)))

    def posting_count(self, strategy: str, keyword: str) -> int:
        self._guard("posting_count")
        return self._inner.posting_count(strategy, keyword)

    # ------------------------------------------------------------------
    def put_document(self, doc_id: int, xml_text: str) -> None:
        self._guard("put_document")
        self._inner.put_document(doc_id, xml_text)

    def get_document(self, doc_id: int) -> str:
        self._guard("get_document")
        return self._inner.get_document(doc_id)

    def document_ids(self) -> Iterator[int]:
        self._guard("document_ids")
        return iter(list(self._inner.document_ids()))

    def delete_document(self, doc_id: int) -> None:
        self._guard("delete_document")
        self._inner.delete_document(doc_id)

    # ------------------------------------------------------------------
    def put_metadata(self, key: str, value: str) -> None:
        self._guard("put_metadata")
        self._inner.put_metadata(key, value)

    def get_metadata(self, key: str, default: str | None = None,
                     ) -> str | None:
        self._guard("get_metadata")
        return self._inner.get_metadata(key, default)

    def metadata_keys(self) -> Iterator[str]:
        self._guard("metadata_keys")
        return iter(list(self._inner.metadata_keys()))

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._inner.close()
