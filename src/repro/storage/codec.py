"""Compact binary posting blocks (the XPB1 codec).

A :class:`~repro.core.index.dil.DeweyInvertedList` is, at rest, a list
of ``(dewey, score)`` pairs sorted by Dewey ID.  Storing each posting
as a Python tuple costs a few hundred bytes of object headers per
posting and forces a full deserialize before the first byte of query
work; the top-k engine then throws 91-100% of those postings away
unread.  This module packs a whole posting list into one flat binary
*block* that

* delta-encodes Dewey IDs (varint document-id gaps in a directory,
  prefix-shared path components inside each per-document run),
* keeps a *document directory* up front -- ``(doc_id, posting count,
  run byte-length, doc max score)`` per document -- so bounded top-k
  reads its pruning bounds **without touching a single posting**, and
* decodes lazily, one document run at a time, behind the existing
  ``DeweyInvertedList`` API.

The byte layout is normatively specified in ``docs/STORAGE.md``; this
docstring is a summary, the spec wins.  In short::

    block   := header payload
    header  := magic "XPB1" | version u8 | reserved[3] |
               crc32(payload) u32le | len(payload) u32le
    payload := varint n_docs | varint n_postings |
               directory[n_docs] | run[n_docs]
    dirent  := varint doc_id_delta | varint run_postings |
               varint run_bytes | doc_max f64le
    run     := posting[run_postings]
    posting := varint reuse | varint extend |
               varint component[extend] | score f64le

Scores are verbatim IEEE-754 doubles, so a decode round-trips the
exact float the builder produced -- the property the byte-identical
``canonical_dump`` differential gate rests on.  The codec is pure and
dependency-free: it must not import ``repro.core.index`` (the DIL
module imports *us* to build lazy lists).
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, Sequence

from repro.storage.errors import CorruptIndexError, IncompatibleIndexError

#: Leading bytes of every posting block ("XOnto Posting Block").
MAGIC = b"XPB1"

#: Current (and only) payload format version.
FORMAT_VERSION = 1

#: ``magic | version | reserved*3 | crc32 | payload_length``
_HEADER = struct.Struct("<4sB3sII")

#: Fixed-size header length in bytes.
HEADER_SIZE = _HEADER.size

_SCORE = struct.Struct("<d")
_SCORE_SIZE = _SCORE.size


class UnencodablePostings(ValueError):
    """The posting list violates the codec's preconditions (unsorted,
    duplicate, or non-canonical Dewey strings).  Writers catch this and
    fall back to a raw record; it never signals corruption."""


# ----------------------------------------------------------------------
# varints (unsigned LEB128)
# ----------------------------------------------------------------------

def _append_varint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(buf, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    try:
        while True:
            byte = buf[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value, pos
            shift += 7
            if shift > 63:
                raise CorruptIndexError(
                    "posting block varint exceeds 64 bits")
    except IndexError:
        raise CorruptIndexError(
            "posting block truncated inside a varint") from None


# ----------------------------------------------------------------------
# Dewey parsing (canonical dotted-decimal only)
# ----------------------------------------------------------------------

def _parse_dewey(text: str) -> tuple[int, tuple[int, ...]]:
    """``"3.0.2" -> (3, (0, 2))``, rejecting anything whose re-encoding
    would not be byte-identical (leading zeros, signs, blanks)."""
    parts = text.split(".")
    values = []
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise UnencodablePostings(
                f"non-canonical dewey component {part!r} in {text!r}")
        values.append(int(part))
    return values[0], tuple(values[1:])


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def encode_postings(postings: Sequence[tuple[str, float]]) -> bytes:
    """Pack an encoded posting list into one binary block.

    ``postings`` must be sorted strictly ascending by
    ``(doc_id, path)`` -- the invariant every ``DeweyInvertedList``
    already maintains -- and every Dewey string must be canonical
    dotted-decimal.  Raises :class:`UnencodablePostings` otherwise (the
    mmap writer falls back to a raw record for such lists, preserving
    the store contract bit-for-bit).
    """
    runs: list[tuple[int, int, bytes, float]] = []  # doc, count, bytes, max
    run = bytearray()
    run_count = 0
    run_max = 0.0
    current_doc = -1
    previous_path: tuple[int, ...] = ()
    previous_key: tuple[int, tuple[int, ...]] | None = None
    total = 0

    def flush() -> None:
        nonlocal run, run_count
        if run_count:
            runs.append((current_doc, run_count, bytes(run), run_max))
        run = bytearray()
        run_count = 0

    for dewey, score in postings:
        doc_id, path = _parse_dewey(dewey)
        key = (doc_id, path)
        if previous_key is not None and key <= previous_key:
            raise UnencodablePostings(
                f"postings not strictly ascending at {dewey!r}")
        previous_key = key
        score = float(score)
        if doc_id != current_doc:
            flush()
            current_doc = doc_id
            previous_path = ()
            run_max = score
        elif score > run_max:
            run_max = score
        reuse = 0
        limit = min(len(previous_path), len(path))
        while reuse < limit and previous_path[reuse] == path[reuse]:
            reuse += 1
        _append_varint(run, reuse)
        _append_varint(run, len(path) - reuse)
        for component in path[reuse:]:
            _append_varint(run, component)
        run += _SCORE.pack(score)
        previous_path = path
        run_count += 1
        total += 1
    flush()

    payload = bytearray()
    _append_varint(payload, len(runs))
    _append_varint(payload, total)
    previous_doc = 0
    for index, (doc_id, count, run_bytes, doc_max) in enumerate(runs):
        _append_varint(payload, doc_id if index == 0
                       else doc_id - previous_doc)
        previous_doc = doc_id
        _append_varint(payload, count)
        _append_varint(payload, len(run_bytes))
        payload += _SCORE.pack(doc_max)
    for _, _, run_bytes, _ in runs:
        payload += run_bytes

    header = _HEADER.pack(MAGIC, FORMAT_VERSION, b"\x00\x00\x00",
                          zlib.crc32(payload) & 0xFFFFFFFF, len(payload))
    return header + bytes(payload)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------

class PostingBlock:
    """Zero-copy reader over one encoded posting block.

    Construction validates the header, version, and payload checksum
    and parses the document directory; posting runs are decoded only
    on demand (:meth:`doc_postings`, :meth:`items`).  Instances are
    immutable and safe to share across threads -- they may wrap a
    ``memoryview`` into a live ``mmap``, in which case they keep the
    mapping alive until garbage-collected.
    """

    __slots__ = ("_payload", "posting_count", "doc_count", "_doc_ids",
                 "_doc_maxes", "_run_counts", "_run_offsets",
                 "_run_lengths", "_doc_index")

    def __init__(self, data) -> None:
        view = memoryview(data)
        if len(view) < HEADER_SIZE:
            raise CorruptIndexError(
                f"posting block shorter than its {HEADER_SIZE}-byte "
                f"header ({len(view)} bytes)")
        magic, version, _, crc, length = _HEADER.unpack_from(view)
        if magic != MAGIC:
            raise CorruptIndexError(
                f"bad posting-block magic {bytes(magic)!r}")
        if version != FORMAT_VERSION:
            raise IncompatibleIndexError(
                f"posting block format v{version} is not supported "
                f"(this build reads v{FORMAT_VERSION})")
        payload = view[HEADER_SIZE:HEADER_SIZE + length]
        if len(payload) != length:
            raise CorruptIndexError(
                f"posting block truncated: header promises {length} "
                f"payload bytes, {len(payload)} present")
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise CorruptIndexError("posting block checksum mismatch")
        self._payload = payload

        pos = 0
        self.doc_count, pos = _read_varint(payload, pos)
        self.posting_count, pos = _read_varint(payload, pos)
        doc_ids: list[int] = []
        maxes: list[float] = []
        counts: list[int] = []
        lengths: list[int] = []
        doc_id = 0
        for index in range(self.doc_count):
            delta, pos = _read_varint(payload, pos)
            doc_id = delta if index == 0 else doc_id + delta
            count, pos = _read_varint(payload, pos)
            length, pos = _read_varint(payload, pos)
            if pos + _SCORE_SIZE > len(payload):
                raise CorruptIndexError(
                    "posting block directory truncated")
            maxes.append(_SCORE.unpack_from(payload, pos)[0])
            pos += _SCORE_SIZE
            doc_ids.append(doc_id)
            counts.append(count)
            lengths.append(length)
        offsets = []
        for length in lengths:
            offsets.append(pos)
            pos += length
        if pos != len(payload):
            raise CorruptIndexError(
                f"posting block size mismatch: directory describes "
                f"{pos} payload bytes, {len(payload)} present")
        if sum(counts) != self.posting_count:
            raise CorruptIndexError(
                "posting block directory counts disagree with the "
                "posting total")
        self._doc_ids = doc_ids
        self._doc_maxes = maxes
        self._run_counts = counts
        self._run_offsets = offsets
        self._run_lengths = lengths
        self._doc_index = {d: i for i, d in enumerate(doc_ids)}

    # -- directory reads (never decode postings) -----------------------

    def doc_ids(self) -> list[int]:
        return list(self._doc_ids)

    def doc_max_scores(self) -> dict[int, float]:
        """The bounded-top-k pruning sidecar, straight from the
        directory."""
        return dict(zip(self._doc_ids, self._doc_maxes))

    def size_bytes(self) -> int:
        return HEADER_SIZE + len(self._payload)

    # -- run decoding ---------------------------------------------------

    def _decode_run(self, index: int) -> list[tuple[tuple[int, ...],
                                                    float]]:
        payload = self._payload
        pos = self._run_offsets[index]
        end = pos + self._run_lengths[index]
        path: tuple[int, ...] = ()
        out = []
        for _ in range(self._run_counts[index]):
            reuse, pos = _read_varint(payload, pos)
            extend, pos = _read_varint(payload, pos)
            if reuse > len(path):
                raise CorruptIndexError(
                    "posting run reuses a longer prefix than exists")
            components = []
            for _ in range(extend):
                component, pos = _read_varint(payload, pos)
                components.append(component)
            if pos + _SCORE_SIZE > end:
                raise CorruptIndexError("posting run truncated")
            score = _SCORE.unpack_from(payload, pos)[0]
            pos += _SCORE_SIZE
            path = path[:reuse] + tuple(components)
            out.append((path, score))
        if pos != end:
            raise CorruptIndexError(
                "posting run decoded past its directory length")
        return out

    def doc_postings(self, doc_id: int) -> list[tuple[tuple[int, ...],
                                                      float]]:
        """Decode exactly one document's run: ``[(path, score), ...]``.
        Returns ``[]`` for absent documents."""
        index = self._doc_index.get(doc_id)
        if index is None:
            return []
        return self._decode_run(index)

    def items(self) -> Iterator[tuple[int, tuple[int, ...], float]]:
        """Sequentially decode the whole block as
        ``(doc_id, path, score)`` triples, in Dewey order."""
        for index, doc_id in enumerate(self._doc_ids):
            for path, score in self._decode_run(index):
                yield doc_id, path, score

    def encoded(self) -> list[tuple[str, float]]:
        """The dotted-decimal ``(dewey, score)`` list -- byte-identical
        to what :func:`encode_postings` was given."""
        out = []
        for doc_id, path, score in self.items():
            if path:
                dewey = f"{doc_id}." + ".".join(map(str, path))
            else:
                dewey = str(doc_id)
            out.append((dewey, score))
        return out


def decode_postings(block: bytes) -> list[tuple[str, float]]:
    """One-shot inverse of :func:`encode_postings`."""
    return PostingBlock(block).encoded()
