"""Memory-mapped, read-only :class:`IndexStore` (the XMS1 container).

The SQLite backend pays per-row query cost on every posting read and
keeps a private page cache per process.  For serving -- many processes,
one immutable index -- the better shape is a single append-only file of
compact posting blocks plus a JSON table of contents at the tail:

* **O(1) open.**  ``MmapStore(path)`` maps the file, reads the
  fixed-size trailer, checksums and parses the TOC, and is ready; no
  posting bytes are touched until a query asks for them.
* **Shared page cache.**  N serving processes mapping one file share
  the OS page cache; posting blocks are served as ``memoryview`` slices
  of the mapping, so a read copies nothing.
* **Immutable by construction.**  There is no write path on the
  reader; rebuilds publish a whole new file atomically (temp sibling +
  ``os.replace``), the same crash-safety contract as
  :func:`~repro.storage.manifest.atomic_sqlite_build`.

The byte layout (container header, record region, TOC, 16-byte
trailer) is normatively specified in ``docs/STORAGE.md``.  Posting
lists are stored as compact XPB1 blocks (:mod:`repro.storage.codec`)
when the list satisfies the codec's preconditions, and as canonical
JSON *raw records* otherwise -- so the store contract (arbitrary
encoded posting lists round-trip verbatim) holds bit-for-bit and
``canonical_dump`` equality against the other backends is universal.

Writes go through :class:`MmapStoreWriter` (an in-memory store that
serializes everything on :meth:`~MmapStoreWriter.finalize`) or the
:func:`atomic_mmap_build` context manager the CLI uses.
"""

from __future__ import annotations

import contextlib
import json
import mmap
import os
import struct
import zlib
from typing import Iterator, Sequence

from .codec import PostingBlock, UnencodablePostings, encode_postings
from .errors import (CorruptIndexError, IncompatibleIndexError,
                     StorageError)
from .interface import EncodedPosting, IndexStore
from .memory_store import MemoryStore

#: Leading bytes of every mmap store file ("XOnto Mmap Store").
FILE_MAGIC = b"XMS1"

#: Trailing bytes of the 16-byte trailer ("... Footer").
TRAILER_MAGIC = b"XMSF"

#: Current (and only) container format version.
CONTAINER_VERSION = 1

_FILE_HEADER = struct.Struct("<4sI")      # magic | container version
_TRAILER = struct.Struct("<QI4s")         # toc offset | toc crc32 | magic

#: TOC record kinds for posting lists.
KIND_BLOCK = "xpb"
KIND_RAW = "raw"


def _null_tracer():
    from ..core.obs.tracer import NULL_TRACER  # lazy: avoids a cycle
    return NULL_TRACER


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
class MmapStore(IndexStore):
    """Read-only store over one memory-mapped XMS1 file.

    All state after construction is immutable, so every read method is
    thread-safe without locking -- the concurrent-readers property the
    serving layer relies on.  Mutating methods raise
    :class:`StorageError`; rebuild and republish instead.

    ``close()`` releases the file descriptor immediately; the mapping
    itself is released once the last outstanding
    :class:`~repro.storage.codec.PostingBlock` (which may hold a
    ``memoryview`` into it) is garbage-collected.
    """

    def __init__(self, path: str, tracer=None) -> None:
        self.path = path
        self.tracer = tracer if tracer is not None else _null_tracer()
        self._closed = False
        with self.tracer.span("storage.mmap.open") as span:
            try:
                self._file = open(path, "rb")
            except OSError as exc:
                raise StorageError(
                    f"cannot open mmap store {path!r}: {exc}") from exc
            try:
                self._mmap = mmap.mmap(self._file.fileno(), 0,
                                       access=mmap.ACCESS_READ)
            except (OSError, ValueError) as exc:
                self._file.close()
                raise CorruptIndexError(
                    f"cannot map store {path!r}: {exc}") from exc
            self._view = memoryview(self._mmap)
            try:
                self._load_toc()
            except BaseException:
                self._release()
                raise
            span.annotate(
                blocks=sum(len(lists)
                           for lists in self._postings.values()),
                documents=len(self._documents))

    # -- open-time parsing ---------------------------------------------

    def _load_toc(self) -> None:
        view = self._view
        size = len(view)
        if size < _FILE_HEADER.size + _TRAILER.size:
            raise CorruptIndexError(
                f"mmap store {self.path!r} is shorter than its header "
                f"and trailer ({size} bytes)")
        magic, version = _FILE_HEADER.unpack_from(view, 0)
        if magic != FILE_MAGIC:
            raise CorruptIndexError(
                f"{self.path!r} is not an mmap index store "
                f"(bad magic {bytes(magic)!r})")
        if version != CONTAINER_VERSION:
            raise IncompatibleIndexError(
                f"mmap store container v{version} is not supported "
                f"(this build reads v{CONTAINER_VERSION})")
        toc_offset, toc_crc, trailer_magic = _TRAILER.unpack_from(
            view, size - _TRAILER.size)
        if trailer_magic != TRAILER_MAGIC:
            raise CorruptIndexError(
                f"mmap store {self.path!r} has no trailer -- the file "
                f"is truncated or was not finalized")
        if not _FILE_HEADER.size <= toc_offset <= size - _TRAILER.size:
            raise CorruptIndexError(
                f"mmap store TOC offset {toc_offset} is outside the "
                f"file")
        toc_bytes = view[toc_offset:size - _TRAILER.size]
        if zlib.crc32(toc_bytes) & 0xFFFFFFFF != toc_crc:
            raise CorruptIndexError(
                "mmap store TOC checksum mismatch")
        try:
            toc = json.loads(bytes(toc_bytes).decode("utf-8"))
            postings = {
                strategy: {keyword: tuple(entry)
                           for keyword, entry in lists.items()}
                for strategy, lists in toc["postings"].items()}
            documents = {int(doc_id): tuple(entry)
                         for doc_id, entry in toc["documents"].items()}
            metadata = dict(toc["metadata"])
        except (KeyError, TypeError, ValueError,
                UnicodeDecodeError) as exc:
            raise CorruptIndexError(
                f"mmap store TOC is malformed: {exc}") from exc
        data_end = size - _TRAILER.size
        for lists in postings.values():
            for offset, length, _, kind in lists.values():
                if kind not in (KIND_BLOCK, KIND_RAW):
                    raise CorruptIndexError(
                        f"unknown posting record kind {kind!r}")
                if not 0 <= offset <= offset + length <= data_end:
                    raise CorruptIndexError(
                        "posting record lies outside the file")
        for offset, length in documents.values():
            if not 0 <= offset <= offset + length <= data_end:
                raise CorruptIndexError(
                    "document record lies outside the file")
        self._postings = postings
        self._documents = documents
        self._metadata = metadata

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError(
                f"mmap store {self.path!r} is closed")

    def _read_only(self) -> StorageError:
        return StorageError(
            f"mmap store {self.path!r} is immutable: rebuild with "
            f"`python -m repro index --store-format mmap` instead of "
            f"writing in place")

    # -- posting lists --------------------------------------------------

    def put_postings(self, strategy: str, keyword: str,
                     postings: Sequence[EncodedPosting]) -> None:
        raise self._read_only()

    def get_postings(self, strategy: str, keyword: str,
                     ) -> list[EncodedPosting]:
        self._require_open()
        entry = self._postings.get(strategy, {}).get(keyword)
        if entry is None:
            return []
        with self.tracer.span("storage.mmap.read",
                              keyword=keyword) as span:
            rows = self._decode_entry(entry)
            span.annotate(rows=len(rows))
            return rows

    def _decode_entry(self, entry) -> list[EncodedPosting]:
        offset, length, _, kind = entry
        record = self._view[offset:offset + length]
        if kind == KIND_BLOCK:
            return PostingBlock(record).encoded()
        try:
            return [(dewey, float(score))
                    for dewey, score in json.loads(
                        bytes(record).decode("utf-8"))]
        except (TypeError, ValueError, UnicodeDecodeError) as exc:
            raise CorruptIndexError(
                f"malformed raw posting record: {exc}") from exc

    def get_posting_block(self, strategy: str, keyword: str,
                          ) -> PostingBlock | None:
        """The compact block of a keyword, *undecoded* -- a zero-copy
        ``memoryview`` slice of the mapping.  ``None`` when the keyword
        is absent or stored as a raw record (callers fall back to
        :meth:`get_postings`)."""
        self._require_open()
        entry = self._postings.get(strategy, {}).get(keyword)
        if entry is None or entry[3] != KIND_BLOCK:
            return None
        offset, length, _, _ = entry
        return PostingBlock(self._view[offset:offset + length])

    def keywords(self, strategy: str) -> Iterator[str]:
        self._require_open()
        return iter(list(self._postings.get(strategy, {})))

    def posting_count(self, strategy: str, keyword: str) -> int:
        self._require_open()
        entry = self._postings.get(strategy, {}).get(keyword)
        return 0 if entry is None else entry[2]

    # -- documents ------------------------------------------------------

    def put_document(self, doc_id: int, xml_text: str) -> None:
        raise self._read_only()

    def get_document(self, doc_id: int) -> str:
        self._require_open()
        entry = self._documents.get(doc_id)
        if entry is None:
            raise StorageError(f"no stored document {doc_id}")
        offset, length = entry
        return bytes(self._view[offset:offset + length]).decode("utf-8")

    def document_ids(self) -> Iterator[int]:
        self._require_open()
        return iter(sorted(self._documents))

    def delete_document(self, doc_id: int) -> None:
        raise self._read_only()

    # -- metadata -------------------------------------------------------

    def put_metadata(self, key: str, value: str) -> None:
        raise self._read_only()

    def get_metadata(self, key: str, default: str | None = None,
                     ) -> str | None:
        self._require_open()
        return self._metadata.get(key, default)

    def metadata_keys(self) -> Iterator[str]:
        self._require_open()
        return iter(sorted(self._metadata))

    # -- verification ---------------------------------------------------

    def block_report(self) -> tuple[dict[str, int], int, list[str]]:
        """Validate every posting record's own checksum.

        Returns ``(blocks per strategy, raw record count, problems)``.
        A compact block is checked by constructing its
        :class:`PostingBlock` (magic, version, crc32, directory); a raw
        record must parse as canonical JSON.  This is the per-block arm
        of ``verify-index``, complementary to the manifest's
        per-strategy SHA-256 (which checks *values*; this checks
        *bytes*, and localizes damage to one keyword).
        """
        self._require_open()
        per_strategy: dict[str, int] = {}
        raw = 0
        problems: list[str] = []
        for strategy in sorted(self._postings):
            per_strategy[strategy] = 0
            for keyword in sorted(self._postings[strategy]):
                entry = self._postings[strategy][keyword]
                try:
                    if entry[3] == KIND_BLOCK:
                        block = PostingBlock(
                            self._view[entry[0]:entry[0] + entry[1]])
                        if block.posting_count != entry[2]:
                            raise CorruptIndexError(
                                "TOC posting count disagrees with "
                                "the block directory")
                        per_strategy[strategy] += 1
                    else:
                        self._decode_entry(entry)
                        raw += 1
                except StorageError as exc:
                    problems.append(
                        f"posting record {strategy}/{keyword!r}: {exc}")
        return per_strategy, raw, problems

    # -- lifecycle ------------------------------------------------------

    def _release(self) -> None:
        self._view.release()
        with contextlib.suppress(BufferError):
            # Outstanding PostingBlocks hold memoryviews into the
            # mapping; it stays alive until they are collected.
            self._mmap.close()
        self._file.close()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._release()


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class MmapStoreWriter(MemoryStore):
    """Build-side store for the mmap backend.

    Accumulates postings/documents/metadata in memory (it *is* a
    :class:`MemoryStore`, so build pipelines and the manifest protocol
    work unchanged) and serializes the XMS1 file on :meth:`finalize` --
    written to a temp sibling and atomically renamed, so a build killed
    at any point leaves the published path untouched.
    """

    def __init__(self, path: str, tracer=None) -> None:
        super().__init__()
        self.path = path
        self.tracer = tracer if tracer is not None else _null_tracer()
        self._finalized = False

    def abandon(self) -> None:
        """Drop the build: :meth:`close` will no longer publish."""
        self._finalized = True

    def finalize(self) -> None:
        """Serialize and atomically publish the store file."""
        if self._finalized:
            return
        with self.tracer.span("storage.mmap.write") as span:
            blocks, raw, size = _write_file(
                self.path, self._postings, self._documents,
                self._metadata)
            span.annotate(blocks=blocks, raw_records=raw, bytes=size)
        self._finalized = True

    def close(self) -> None:
        self.finalize()


def _write_file(path: str, postings, documents, metadata,
                ) -> tuple[int, int, int]:
    """Serialize one XMS1 file; returns (blocks, raw records, bytes)."""
    temp_path = path + ".building"
    blocks = raw = 0
    try:
        with open(temp_path, "wb") as handle:
            handle.write(_FILE_HEADER.pack(FILE_MAGIC,
                                           CONTAINER_VERSION))
            offset = _FILE_HEADER.size
            toc_postings: dict[str, dict[str, list]] = {}
            for strategy, keyword in sorted(postings):
                encoded = postings[(strategy, keyword)]
                try:
                    record = encode_postings(encoded)
                    kind = KIND_BLOCK
                    blocks += 1
                except UnencodablePostings:
                    record = json.dumps(
                        [[dewey, float(score)]
                         for dewey, score in encoded],
                        sort_keys=True,
                        separators=(",", ":")).encode("utf-8")
                    kind = KIND_RAW
                    raw += 1
                handle.write(record)
                toc_postings.setdefault(strategy, {})[keyword] = [
                    offset, len(record), len(encoded), kind]
                offset += len(record)
            toc_documents: dict[str, list] = {}
            for doc_id in sorted(documents):
                record = documents[doc_id].encode("utf-8")
                handle.write(record)
                toc_documents[str(doc_id)] = [offset, len(record)]
                offset += len(record)
            toc = json.dumps(
                {"postings": toc_postings, "documents": toc_documents,
                 "metadata": dict(metadata)},
                sort_keys=True, separators=(",", ":")).encode("utf-8")
            handle.write(toc)
            handle.write(_TRAILER.pack(offset,
                                       zlib.crc32(toc) & 0xFFFFFFFF,
                                       TRAILER_MAGIC))
            handle.flush()
            os.fsync(handle.fileno())
            size = offset + len(toc) + _TRAILER.size
    except BaseException:
        with contextlib.suppress(OSError):
            os.remove(temp_path)
        raise
    os.replace(temp_path, path)
    return blocks, raw, size


@contextlib.contextmanager
def atomic_mmap_build(path: str, tracer=None,
                      ) -> Iterator[MmapStoreWriter]:
    """Build an mmap index at ``path``; publish only on success.

    The ``with`` body writes into an in-memory
    :class:`MmapStoreWriter`; the file appears at ``path`` (temp
    sibling + atomic rename) only when the body completes without
    raising.  The mmap analogue of
    :func:`~repro.storage.manifest.atomic_sqlite_build`.
    """
    writer = MmapStoreWriter(path, tracer=tracer)
    try:
        yield writer
    except BaseException:
        writer.abandon()
        raise
    writer.finalize()


def write_mmap_store(path: str, store: IndexStore,
                     strategies: Sequence[str], tracer=None) -> None:
    """Convert any store's contents into an XMS1 file at ``path``."""
    with atomic_mmap_build(path, tracer=tracer) as writer:
        for strategy in strategies:
            for keyword in store.keywords(strategy):
                writer.put_postings(strategy, keyword,
                                    store.get_postings(strategy,
                                                       keyword))
        for doc_id in store.document_ids():
            writer.put_document(doc_id, store.get_document(doc_id))
        for key in store.metadata_keys():
            value = store.get_metadata(key)
            if value is not None:
                writer.put_metadata(key, value)


# ----------------------------------------------------------------------
# Format detection
# ----------------------------------------------------------------------
def sniff_store_format(path: str) -> str:
    """``"mmap"``, ``"sqlite"``, or ``"unknown"`` from a file's leading
    bytes (missing/unreadable files sniff as ``"unknown"``)."""
    try:
        with open(path, "rb") as handle:
            head = handle.read(16)
    except OSError:
        return "unknown"
    if head[:4] == FILE_MAGIC:
        return "mmap"
    if head == b"SQLite format 3\x00":
        return "sqlite"
    return "unknown"


def open_read_store(path: str, tracer=None) -> IndexStore:
    """Open an index file read-only, whichever backend wrote it.

    Mmap files open as :class:`MmapStore`; everything else -- including
    missing or damaged paths, whose errors the SQLite backend already
    reports well -- opens as a read-only
    :class:`~repro.storage.sqlite_store.SQLiteStore`.
    """
    if sniff_store_format(path) == "mmap":
        return MmapStore(path, tracer=tracer)
    from .sqlite_store import SQLiteStore
    return SQLiteStore(path, read_only=True, tracer=tracer)
