"""LSM-style segment bookkeeping for incrementally grown indexes.

An incrementally maintained index is a stack of *immutable segments*:
the base build is segment 0 (living in the plain strategy namespace),
every append writes a fresh segment into its own posting namespace
(``<strategy>.seg000001``, ...), and deletions only mark documents dead
(*tombstones*). One metadata entry -- the **catalog** under
:data:`CATALOG_KEY` -- is the single atomic commit point: it lists the
live segments, their document sets and per-segment checksums, and the
set of live document ids. All posting and document rows of a mutation
land *before* the catalog is rewritten, so a crash at any point leaves
the previous catalog in force and the half-written rows invisible
(orphans, reported by ``verify-index`` and reclaimed by compaction).

The *logical* index -- what queries, checksums and
:func:`~repro.storage.interface.canonical_dump` see -- is the
newest-wins merge of the live segments with tombstoned documents
masked, presented by :class:`SegmentView` under the plain strategy
name. Two stores hold the same logical index iff their dumps are
byte-identical, whether they were grown segment by segment or built
from scratch: the incremental-vs-rebuild differential contract.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

from ..xmldoc.dewey import DeweyID
from .errors import CorruptIndexError, StorageError
from .interface import EncodedPosting, IndexStore
from .manifest import (CHECKSUM_KEY_PREFIX, CORPUS_FINGERPRINT_KEY,
                       corpus_fingerprint, postings_checksum)

#: The catalog's metadata key -- the one entry whose rewrite commits a
#: mutation. Everything else written by an append/remove/compact is
#: unreachable until the catalog names it.
CATALOG_KEY = "segments.catalog"

#: Format version of the catalog payload itself.
CATALOG_VERSION = 1


def segment_namespace(strategy: str, segment_id: int) -> str:
    """Posting namespace of one segment.

    Segment 0 *is* the base build, so it keeps the plain strategy
    namespace -- a store that never mutates is indistinguishable from a
    classic full build.
    """
    if segment_id == 0:
        return strategy
    return f"{strategy}.seg{segment_id:06d}"


@dataclass(frozen=True)
class SegmentRecord:
    """One immutable segment: its namespace, documents and checksum."""

    segment_id: int
    namespace: str
    doc_ids: tuple[int, ...]
    checksum: str


@dataclass(frozen=True)
class SegmentCatalog:
    """The committed state of a segmented index."""

    strategy: str
    next_id: int
    live: tuple[int, ...]
    live_fingerprint: str
    segments: tuple[SegmentRecord, ...]

    @property
    def live_set(self) -> frozenset[int]:
        return frozenset(self.live)

    @property
    def tombstone_count(self) -> int:
        """Documents still held by some segment but no longer live."""
        held = {doc_id for record in self.segments
                for doc_id in record.doc_ids}
        return len(held - self.live_set)

    def segment_doc_ids(self) -> frozenset[int]:
        return frozenset(doc_id for record in self.segments
                         for doc_id in record.doc_ids)

    def with_segment(self, record: SegmentRecord,
                     live: Iterable[int],
                     live_fingerprint: str) -> "SegmentCatalog":
        return replace(
            self, next_id=max(self.next_id, record.segment_id + 1),
            live=tuple(sorted(live)), live_fingerprint=live_fingerprint,
            segments=self.segments + (record,))

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "version": CATALOG_VERSION,
            "strategy": self.strategy,
            "next_id": self.next_id,
            "live": list(self.live),
            "live_fingerprint": self.live_fingerprint,
            "segments": [{"id": record.segment_id,
                          "namespace": record.namespace,
                          "docs": list(record.doc_ids),
                          "checksum": record.checksum}
                         for record in self.segments],
        }
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, raw: str) -> "SegmentCatalog":
        try:
            payload = json.loads(raw)
            if payload["version"] != CATALOG_VERSION:
                raise ValueError(
                    f"unsupported catalog version {payload['version']!r}")
            segments = tuple(
                SegmentRecord(segment_id=int(entry["id"]),
                              namespace=str(entry["namespace"]),
                              doc_ids=tuple(int(doc_id)
                                            for doc_id in entry["docs"]),
                              checksum=str(entry["checksum"]))
                for entry in payload["segments"])
            return cls(strategy=str(payload["strategy"]),
                       next_id=int(payload["next_id"]),
                       live=tuple(int(doc_id)
                                  for doc_id in payload["live"]),
                       live_fingerprint=str(payload["live_fingerprint"]),
                       segments=segments)
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptIndexError(
                f"segment catalog is unreadable: {exc}") from exc


def load_catalog(store: IndexStore) -> SegmentCatalog | None:
    """The committed catalog, or ``None`` for an unsegmented store."""
    raw = store.get_metadata(CATALOG_KEY)
    if raw is None:
        return None
    return SegmentCatalog.from_json(raw)


def save_catalog(store: IndexStore, catalog: SegmentCatalog) -> None:
    """THE commit point: one metadata write publishes the mutation."""
    store.put_metadata(CATALOG_KEY, catalog.to_json())


# ----------------------------------------------------------------------
# Newest-wins posting merge
# ----------------------------------------------------------------------
def _keyed_postings(rows: Sequence[EncodedPosting], segment_id: int,
                    ) -> Iterator[tuple[DeweyID, int, str, float]]:
    """Sort keys for one segment's already-dewey-sorted posting list.

    The second component prefers the *newest* segment when two segments
    hold the same Dewey ID (a re-added document), matching LSM
    semantics: the most recent write wins.
    """
    for dewey, score in rows:
        yield (DeweyID.parse(dewey), -segment_id, dewey, float(score))


def merged_postings(store: IndexStore, catalog: SegmentCatalog,
                    keyword: str) -> list[EncodedPosting]:
    """One keyword's logical posting list: live segments streamed
    through ``heapq.merge``, duplicates resolved newest-wins, and
    tombstoned documents masked."""
    streams = []
    for record in catalog.segments:
        rows = store.get_postings(record.namespace, keyword)
        if rows:
            streams.append(_keyed_postings(rows, record.segment_id))
    live = catalog.live_set
    merged: list[EncodedPosting] = []
    previous: DeweyID | None = None
    for parsed, _, dewey, score in heapq.merge(*streams):
        if parsed == previous:
            continue  # an older segment's copy of a re-added document
        previous = parsed
        if parsed.doc_id in live:
            merged.append((dewey, score))
    return merged


def merged_keywords(store: IndexStore,
                    catalog: SegmentCatalog) -> list[str]:
    """Sorted union of the keywords held by any live segment (some may
    merge to an empty, hence absent, logical list)."""
    keywords: set[str] = set()
    for record in catalog.segments:
        keywords.update(store.keywords(record.namespace))
    return sorted(keywords)


def merged_lists(store: IndexStore, catalog: SegmentCatalog,
                 ) -> dict[str, list[EncodedPosting]]:
    """Every non-empty logical posting list, keyed by keyword."""
    lists: dict[str, list[EncodedPosting]] = {}
    for keyword in merged_keywords(store, catalog):
        rows = merged_postings(store, catalog, keyword)
        if rows:
            lists[keyword] = rows
    return lists


# ----------------------------------------------------------------------
# The logical view
# ----------------------------------------------------------------------
class SegmentView(IndexStore):
    """Read-only logical view of a segmented store.

    Presents the newest-wins merge of the live segments under the plain
    strategy name, masks tombstoned documents, hides the catalog entry,
    and synthesizes the manifest checksum/fingerprint of the *logical*
    index -- so integrity checks and :func:`canonical_dump` compare a
    grown store against a from-scratch build without special cases.
    Posting namespaces of other strategies pass through untouched.
    """

    def __init__(self, inner: IndexStore,
                 catalog: SegmentCatalog) -> None:
        self._inner = inner
        self.catalog = catalog
        self._checksum: str | None = None
        self._fingerprint: str | None = None

    @property
    def inner(self) -> IndexStore:
        return self._inner

    def _read_only(self) -> StorageError:
        return StorageError(
            "SegmentView is read-only; mutate through the index "
            "lifecycle (add_documents / remove_documents / compact)")

    # ------------------------------------------------------------------
    def put_postings(self, strategy: str, keyword: str,
                     postings: Sequence[EncodedPosting]) -> None:
        raise self._read_only()

    def get_postings(self, strategy: str, keyword: str,
                     ) -> list[EncodedPosting]:
        if strategy == self.catalog.strategy:
            return merged_postings(self._inner, self.catalog, keyword)
        return self._inner.get_postings(strategy, keyword)

    def keywords(self, strategy: str) -> Iterator[str]:
        if strategy != self.catalog.strategy:
            yield from self._inner.keywords(strategy)
            return
        for keyword in merged_keywords(self._inner, self.catalog):
            if merged_postings(self._inner, self.catalog, keyword):
                yield keyword

    def posting_count(self, strategy: str, keyword: str) -> int:
        return len(self.get_postings(strategy, keyword))

    # ------------------------------------------------------------------
    def put_document(self, doc_id: int, xml_text: str) -> None:
        raise self._read_only()

    def get_document(self, doc_id: int) -> str:
        if doc_id not in self.catalog.live_set:
            raise StorageError(f"no stored document {doc_id}")
        return self._inner.get_document(doc_id)

    def document_ids(self) -> Iterator[int]:
        live = self.catalog.live_set
        return iter(sorted(doc_id
                           for doc_id in self._inner.document_ids()
                           if doc_id in live))

    def delete_document(self, doc_id: int) -> None:
        raise self._read_only()

    # ------------------------------------------------------------------
    def put_metadata(self, key: str, value: str) -> None:
        raise self._read_only()

    def get_metadata(self, key: str, default: str | None = None,
                     ) -> str | None:
        if key == CATALOG_KEY:
            return default
        if key == CHECKSUM_KEY_PREFIX + self.catalog.strategy:
            if self._checksum is None:
                self._checksum = postings_checksum(
                    merged_lists(self._inner, self.catalog))
            return self._checksum
        if key == CORPUS_FINGERPRINT_KEY:
            if self._fingerprint is None:
                self._fingerprint = corpus_fingerprint(
                    (doc_id, self._inner.get_document(doc_id))
                    for doc_id in self.document_ids())
            return self._fingerprint
        return self._inner.get_metadata(key, default)

    def metadata_keys(self) -> Iterator[str]:
        keys = set(self._inner.metadata_keys())
        keys.discard(CATALOG_KEY)
        keys.add(CHECKSUM_KEY_PREFIX + self.catalog.strategy)
        keys.add(CORPUS_FINGERPRINT_KEY)
        return iter(sorted(keys))

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._inner.close()


def segment_view(store: IndexStore) -> IndexStore:
    """The logical view of a store: a :class:`SegmentView` when it
    holds a segment catalog, the store itself otherwise."""
    if isinstance(store, SegmentView):
        return store
    catalog = load_catalog(store)
    if catalog is None:
        return store
    return SegmentView(store, catalog)
