"""Error taxonomy of the storage layer (the index's failure model).

The paper assumed a reliable SQL Server behind the XOnto-DIL index; the
production north star treats the store as a failure domain of its own.
Every storage fault surfaces as a :class:`StorageError` subclass so
callers can choose a policy per *kind* of failure instead of per
backend exception type:

* :class:`TransientStorageError` -- likely to succeed on retry (a
  locked/busy database, an injected chaos fault). The
  :class:`~repro.storage.retrying.RetryingStore` retries exactly these.
* :class:`CorruptIndexError` -- the store's bytes or contents are
  damaged or incomplete (truncated file, garbage posting list, a build
  that never set its completion marker). Retrying cannot help; the
  index must be rebuilt or restored.
* :class:`IncompatibleIndexError` -- the store is internally consistent
  but was built with different parameters (strategy, decay, threshold,
  ``t``) or from a different corpus than the engine loading it. Loading
  it would *silently* return wrong rankings, which is worse than
  failing.

Backends translate their native exceptions (e.g. ``sqlite3.*``) into
this taxonomy at the API boundary; no raw driver exception escapes an
:class:`~repro.storage.interface.IndexStore`.
"""

from __future__ import annotations


class StorageError(RuntimeError):
    """Base class: malformed or inconsistent store contents, or a
    failed storage operation of any kind."""


class TransientStorageError(StorageError):
    """A fault that is expected to clear on retry (locks, busy
    handles, transient I/O); see
    :class:`~repro.storage.retrying.RetryingStore`."""


class CorruptIndexError(StorageError):
    """The store's contents are damaged, truncated, or were written by
    a build that never completed."""


class IncompatibleIndexError(StorageError):
    """A valid store built with different parameters or a different
    corpus than the engine trying to load it."""
