"""Persistent index storage interface (substitute for SQL Server 2000).

The paper's prototype used "Microsoft SQL Server 2000 for the persistent
storage of indexes". We define a small storage interface with two
implementations: an in-memory store (fast, test-friendly) and a SQLite
store (durable, inspectable with any SQLite client). The Index Creation
Module writes XOnto-DIL posting lists through this interface; the Query
Module reads them back.

Postings are stored in their encoded form -- ``(dewey_string, score)``
pairs, sorted by Dewey ID -- keeping this layer independent of the core
index structures.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Sequence

from .errors import (CorruptIndexError, IncompatibleIndexError,
                     StorageError, TransientStorageError)

__all__ = ["CorruptIndexError", "EncodedPosting", "IncompatibleIndexError",
           "IndexStore", "PROVENANCE_METADATA_KEYS", "StorageError",
           "TransientStorageError", "canonical_dump"]

#: Encoded posting: (dotted-decimal Dewey ID, node score).
EncodedPosting = tuple[str, float]

#: Metadata keys recording *how* an index was built (worker count,
#: shard count, pool mode). Excluded from :func:`canonical_dump` --
#: they legitimately differ between a serial and a parallel build of
#: the same index, while everything else must be identical.
PROVENANCE_METADATA_KEYS = frozenset(
    {"build_workers", "build_chunks", "build_mode"})


class IndexStore(ABC):
    """Keyed storage of posting lists, documents and metadata.

    Posting lists are namespaced by *strategy* (``xrank``, ``graph``,
    ``taxonomy``, ``relationships``) so one store can hold the indexes
    of all four approaches side by side, as the experiments require.
    """

    # ------------------------------------------------------------------
    # Posting lists
    # ------------------------------------------------------------------
    @abstractmethod
    def put_postings(self, strategy: str, keyword: str,
                     postings: Sequence[EncodedPosting]) -> None:
        """Store the full posting list of a keyword (replacing any)."""

    @abstractmethod
    def get_postings(self, strategy: str, keyword: str,
                     ) -> list[EncodedPosting]:
        """Posting list of a keyword; empty when the keyword is unknown."""

    @abstractmethod
    def keywords(self, strategy: str) -> Iterator[str]:
        """All keywords with stored posting lists for a strategy."""

    @abstractmethod
    def posting_count(self, strategy: str, keyword: str) -> int:
        """Number of postings without materializing the list."""

    def put_postings_many(
            self, strategy: str,
            items: Iterable[tuple[str, Sequence[EncodedPosting]]]) -> None:
        """Store many posting lists of one strategy.

        Semantically equivalent to calling :meth:`put_postings` per
        item; the default does exactly that. Transactional backends
        override this to land the whole batch under one transaction --
        the difference between hundreds and hundreds of thousands of
        lists per second, which the ontology index build (10^5+ keys)
        depends on.
        """
        for keyword, postings in items:
            self.put_postings(strategy, keyword, postings)

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    @abstractmethod
    def put_document(self, doc_id: int, xml_text: str) -> None:
        """Store a document's serialized XML."""

    @abstractmethod
    def get_document(self, doc_id: int) -> str:
        """Serialized XML of a document; raises on unknown ids."""

    @abstractmethod
    def document_ids(self) -> Iterator[int]:
        """All stored document ids, ascending."""

    @abstractmethod
    def delete_document(self, doc_id: int) -> None:
        """Remove a stored document; unknown ids are a no-op (the
        compactor garbage-collects rows that may already be gone)."""

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @abstractmethod
    def put_metadata(self, key: str, value: str) -> None:
        """Store one configuration/bookkeeping entry."""

    @abstractmethod
    def get_metadata(self, key: str, default: str | None = None,
                     ) -> str | None:
        """Read one metadata entry."""

    @abstractmethod
    def metadata_keys(self) -> Iterator[str]:
        """All stored metadata keys (any order)."""

    def put_metadata_many(self,
                          items: Iterable[tuple[str, str]]) -> None:
        """Store many metadata entries; same batching contract as
        :meth:`put_postings_many` (default loops, transactional
        backends override with one transaction)."""
        for key, value in items:
            self.put_metadata(key, value)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release resources; default is a no-op."""

    def __enter__(self) -> "IndexStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def canonical_dump(store: IndexStore, strategies: Sequence[str],
                   include_provenance: bool = False) -> bytes:
    """A deterministic byte serialization of a store's contents.

    Two stores hold the same index if and only if their dumps are
    byte-identical, regardless of backend (memory vs SQLite), page
    layout or insertion order -- the comparison form of the
    parallel-vs-serial determinism contract. Build-provenance metadata
    (:data:`PROVENANCE_METADATA_KEYS`) is excluded unless requested,
    since worker counts may differ between equivalent builds.

    A segmented store (one holding a ``segments.catalog``) is dumped
    through its *logical* view -- live segments merged, tombstoned
    documents masked, segment bookkeeping hidden -- so an incrementally
    grown index and a from-scratch build of the same corpus compare
    equal. That is the incremental-vs-rebuild differential contract.
    """
    from .segments import segment_view  # local import: avoids a cycle
    store = segment_view(store)
    postings = {
        strategy: {keyword: store.get_postings(strategy, keyword)
                   for keyword in store.keywords(strategy)}
        for strategy in sorted(set(strategies))}
    documents = {str(doc_id): store.get_document(doc_id)
                 for doc_id in store.document_ids()}
    metadata: dict[str, str] = {}
    for key in sorted(store.metadata_keys()):
        if include_provenance or key not in PROVENANCE_METADATA_KEYS:
            value = store.get_metadata(key)
            if value is not None:
                metadata[key] = value
    payload = {"postings": postings, "documents": documents,
               "metadata": metadata}
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
