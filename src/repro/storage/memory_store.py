"""In-memory :class:`IndexStore` implementation."""

from __future__ import annotations

from typing import Iterator, Sequence

from .interface import EncodedPosting, IndexStore, StorageError


class MemoryStore(IndexStore):
    """Dictionary-backed store; the default for tests and experiments."""

    def __init__(self) -> None:
        self._postings: dict[tuple[str, str], list[EncodedPosting]] = {}
        self._documents: dict[int, str] = {}
        self._metadata: dict[str, str] = {}

    # ------------------------------------------------------------------
    def put_postings(self, strategy: str, keyword: str,
                     postings: Sequence[EncodedPosting]) -> None:
        # An empty list means "absent", matching the SQLite backend
        # (whose DELETE + zero INSERTs leaves no rows for the keyword).
        if not postings:
            self._postings.pop((strategy, keyword), None)
            return
        self._postings[(strategy, keyword)] = [
            (dewey, float(score)) for dewey, score in postings]

    def get_postings(self, strategy: str, keyword: str,
                     ) -> list[EncodedPosting]:
        return list(self._postings.get((strategy, keyword), ()))

    def keywords(self, strategy: str) -> Iterator[str]:
        for stored_strategy, keyword in self._postings:
            if stored_strategy == strategy:
                yield keyword

    def posting_count(self, strategy: str, keyword: str) -> int:
        return len(self._postings.get((strategy, keyword), ()))

    # ------------------------------------------------------------------
    def put_document(self, doc_id: int, xml_text: str) -> None:
        self._documents[doc_id] = xml_text

    def get_document(self, doc_id: int) -> str:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise StorageError(f"no stored document {doc_id}") from None

    def document_ids(self) -> Iterator[int]:
        return iter(sorted(self._documents))

    def delete_document(self, doc_id: int) -> None:
        self._documents.pop(doc_id, None)

    # ------------------------------------------------------------------
    def put_metadata(self, key: str, value: str) -> None:
        self._metadata[key] = value

    def get_metadata(self, key: str, default: str | None = None,
                     ) -> str | None:
        return self._metadata.get(key, default)

    def metadata_keys(self) -> Iterator[str]:
        return iter(sorted(self._metadata))
