"""Storage substrate: persistent XOnto-DIL stores (SQL Server stand-in)."""

from .interface import EncodedPosting, IndexStore, StorageError
from .memory_store import MemoryStore
from .sqlite_store import SQLiteStore

__all__ = ["EncodedPosting", "IndexStore", "MemoryStore", "SQLiteStore",
           "StorageError"]
