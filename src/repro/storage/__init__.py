"""Storage substrate: persistent XOnto-DIL stores (SQL Server stand-in)
plus the resilience layer (error taxonomy, integrity manifests, retry
and fault-injection decorators)."""

from .errors import (CorruptIndexError, IncompatibleIndexError,
                     StorageError, TransientStorageError)
from .faults import FaultInjectingStore
from .interface import (PROVENANCE_METADATA_KEYS, EncodedPosting,
                        IndexStore, canonical_dump)
from .manifest import (BUILD_COMPLETE_KEY, CHECKSUM_KEY_PREFIX,
                       CORPUS_FINGERPRINT_KEY, ManifestReport,
                       atomic_sqlite_build, corpus_fingerprint,
                       finalize_manifest, manifest_strategies,
                       mark_build_started, postings_checksum,
                       require_complete, store_checksum, verify_manifest)
from .codec import (PostingBlock, UnencodablePostings, decode_postings,
                    encode_postings)
from .memory_store import MemoryStore
from .mmap_store import (MmapStore, MmapStoreWriter, atomic_mmap_build,
                         open_read_store, sniff_store_format,
                         write_mmap_store)
from .retrying import RetryingStore
from .segments import (CATALOG_KEY, SegmentCatalog, SegmentRecord,
                       SegmentView, load_catalog, save_catalog,
                       segment_namespace, segment_view)
from .sqlite_store import SQLiteStore

__all__ = [
    "BUILD_COMPLETE_KEY", "CATALOG_KEY", "CHECKSUM_KEY_PREFIX",
    "CORPUS_FINGERPRINT_KEY", "CorruptIndexError", "EncodedPosting",
    "FaultInjectingStore", "IncompatibleIndexError", "IndexStore",
    "ManifestReport", "MemoryStore", "MmapStore", "MmapStoreWriter",
    "PROVENANCE_METADATA_KEYS", "PostingBlock", "RetryingStore",
    "SQLiteStore", "SegmentCatalog", "SegmentRecord", "SegmentView",
    "StorageError", "TransientStorageError", "UnencodablePostings",
    "atomic_mmap_build", "atomic_sqlite_build", "canonical_dump",
    "corpus_fingerprint", "decode_postings", "encode_postings",
    "finalize_manifest", "load_catalog", "manifest_strategies",
    "mark_build_started", "open_read_store", "postings_checksum",
    "require_complete", "save_catalog", "segment_namespace",
    "segment_view", "sniff_store_format", "store_checksum",
    "verify_manifest", "write_mmap_store",
]
