"""Storage substrate: persistent XOnto-DIL stores (SQL Server stand-in)."""

from .interface import (PROVENANCE_METADATA_KEYS, EncodedPosting,
                        IndexStore, StorageError, canonical_dump)
from .memory_store import MemoryStore
from .sqlite_store import SQLiteStore

__all__ = ["EncodedPosting", "IndexStore", "MemoryStore",
           "PROVENANCE_METADATA_KEYS", "SQLiteStore", "StorageError",
           "canonical_dump"]
