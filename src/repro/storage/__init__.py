"""Storage substrate: persistent XOnto-DIL stores (SQL Server stand-in)
plus the resilience layer (error taxonomy, integrity manifests, retry
and fault-injection decorators)."""

from .errors import (CorruptIndexError, IncompatibleIndexError,
                     StorageError, TransientStorageError)
from .faults import FaultInjectingStore
from .interface import (PROVENANCE_METADATA_KEYS, EncodedPosting,
                        IndexStore, canonical_dump)
from .manifest import (BUILD_COMPLETE_KEY, CHECKSUM_KEY_PREFIX,
                       CORPUS_FINGERPRINT_KEY, ManifestReport,
                       atomic_sqlite_build, corpus_fingerprint,
                       finalize_manifest, manifest_strategies,
                       mark_build_started, postings_checksum,
                       require_complete, store_checksum, verify_manifest)
from .memory_store import MemoryStore
from .retrying import RetryingStore
from .segments import (CATALOG_KEY, SegmentCatalog, SegmentRecord,
                       SegmentView, load_catalog, save_catalog,
                       segment_namespace, segment_view)
from .sqlite_store import SQLiteStore

__all__ = [
    "BUILD_COMPLETE_KEY", "CATALOG_KEY", "CHECKSUM_KEY_PREFIX",
    "CORPUS_FINGERPRINT_KEY", "CorruptIndexError", "EncodedPosting",
    "FaultInjectingStore", "IncompatibleIndexError", "IndexStore",
    "ManifestReport", "MemoryStore", "PROVENANCE_METADATA_KEYS",
    "RetryingStore", "SQLiteStore", "SegmentCatalog", "SegmentRecord",
    "SegmentView", "StorageError", "TransientStorageError",
    "atomic_sqlite_build", "canonical_dump", "corpus_fingerprint",
    "finalize_manifest", "load_catalog", "manifest_strategies",
    "mark_build_started", "postings_checksum", "require_complete",
    "save_catalog", "segment_namespace", "segment_view",
    "store_checksum", "verify_manifest",
]
