"""Subtree extraction and structural queries over labeled trees.

These helpers back the Database Access Module (Section V-A), which turns
the Dewey IDs produced by the query phase into the XML fragments shown to
the user (e.g. the answer fragment of Figure 4).
"""

from __future__ import annotations

from typing import Callable, Iterator

from .dewey import DeweyID, node_at
from .model import Corpus, XMLDocument, XMLNode


def copy_subtree(node: XMLNode) -> XMLNode:
    """Deep-copy a subtree, detached from its original parent."""
    clone = XMLNode(node.tag, dict(node.attributes), text=node.text,
                    tail="", reference=node.reference)
    for child in node.children:
        child_clone = copy_subtree(child)
        child_clone.tail = child.tail
        clone.append(child_clone)
    return clone


def extract_fragment(corpus: Corpus, dewey: DeweyID) -> XMLNode:
    """Resolve a Dewey ID against a corpus and deep-copy its subtree."""
    document = corpus.get(dewey.doc_id)
    return copy_subtree(node_at(document, dewey))


def path_to_root(document: XMLDocument, dewey: DeweyID) -> list[XMLNode]:
    """Nodes on the root-to-target path, root first."""
    node = node_at(document, dewey)
    path = [node, *node.ancestors()]
    path.reverse()
    return path


def iter_matching(document: XMLDocument,
                  predicate: Callable[[XMLNode], bool]) -> Iterator[XMLNode]:
    """Document-order iterator over nodes satisfying ``predicate``."""
    for node in document.iter():
        if predicate(node):
            yield node


def subtree_size(node: XMLNode) -> int:
    """Number of elements in the subtree rooted at ``node``."""
    return sum(1 for _ in node.iter())


def tree_depth(node: XMLNode) -> int:
    """Height of the subtree rooted at ``node`` (single node → 0)."""
    best = 0
    stack: list[tuple[XMLNode, int]] = [(node, 0)]
    while stack:
        current, depth = stack.pop()
        best = max(best, depth)
        for child in current.children:
            stack.append((child, depth + 1))
    return best


def prune_to_paths(root: XMLNode, targets: list[XMLNode]) -> XMLNode:
    """Copy of ``root``'s subtree keeping only paths to ``targets``.

    Produces the minimal connecting fragment of the result subtree that
    still contains every target node (useful for presenting compact result
    snippets, in the spirit of Figure 4). Each target's full subtree is
    preserved; unrelated siblings are dropped.
    """
    keep: set[int] = set()
    target_set = {id(target) for target in targets}
    for target in targets:
        node: XMLNode | None = target
        while node is not None:
            keep.add(id(node))
            if node is root:
                break
            node = node.parent
    if id(root) not in keep:
        raise ValueError("targets must lie inside the subtree of root")

    def clone(node: XMLNode, inside_target: bool) -> XMLNode:
        copy = XMLNode(node.tag, dict(node.attributes), text=node.text,
                       reference=node.reference)
        for child in node.children:
            child_inside = inside_target or id(child) in target_set
            if child_inside or id(child) in keep:
                child_copy = clone(child, child_inside)
                child_copy.tail = child.tail
                copy.append(child_copy)
        return copy

    return clone(root, id(root) in target_set)
