"""XML substrate: labeled trees, Dewey IDs, parsing and serialization.

This package implements the paper's view of XML data (Section III): a
document is a labeled tree whose nodes carry textual descriptions and
optional ontological references, addressed by Dewey IDs (Section V).
"""

from .dewey import DeweyID, assign_dewey_ids, document_order, node_at
from .model import (Corpus, DEFAULT_TEXT_POLICY, OntologicalReference,
                    TextPolicy, XMLDocument, XMLNode)
from .navigation import (copy_subtree, extract_fragment, iter_matching,
                         path_to_root, prune_to_paths, subtree_size,
                         tree_depth)
from .parser import (XMLParseError, XMLParser, cda_reference_extractor,
                     no_reference_extractor, parse_document)
from .serializer import XMLSerializer, serialize
from .sharding import (HASH, ROUND_ROBIN, SHARDING_POLICIES,
                       ShardedCorpus, hash_shard)

__all__ = [
    "Corpus", "DEFAULT_TEXT_POLICY", "DeweyID", "HASH",
    "OntologicalReference", "ROUND_ROBIN", "SHARDING_POLICIES",
    "ShardedCorpus", "TextPolicy", "XMLDocument", "XMLNode",
    "XMLParseError", "XMLParser", "XMLSerializer", "assign_dewey_ids",
    "cda_reference_extractor", "copy_subtree", "document_order",
    "extract_fragment", "hash_shard", "iter_matching",
    "no_reference_extractor", "node_at", "parse_document",
    "path_to_root", "prune_to_paths", "serialize", "subtree_size",
    "tree_depth",
]
