"""Serialization of labeled trees back to XML text.

The writer is the inverse of :class:`repro.xmldoc.parser.XMLParser` up to
insignificant whitespace: parse → serialize → parse is the identity on
tags, attributes, references, text and tail content (a property test pins
this down).
"""

from __future__ import annotations

from .model import XMLDocument, XMLNode

_ESCAPES_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ESCAPES_ATTR = {**_ESCAPES_TEXT, '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    for char, entity in _ESCAPES_TEXT.items():
        value = value.replace(char, entity)
    return value


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    for char, entity in _ESCAPES_ATTR.items():
        value = value.replace(char, entity)
    return value


class XMLSerializer:
    """Writes :class:`XMLNode` trees as XML text.

    ``indent`` of ``None`` produces a compact single-line document whose
    re-parse is exactly the original tree; a non-``None`` indent produces
    pretty-printed output for human inspection (indentation whitespace is
    only added around elements that contain no character data, so the
    round-trip property still holds for stripped re-parses).
    """

    def __init__(self, indent: str | None = None,
                 xml_declaration: bool = True) -> None:
        self._indent = indent
        self._xml_declaration = xml_declaration

    def serialize(self, document: XMLDocument | XMLNode) -> str:
        root = document.root if isinstance(document, XMLDocument) else document
        pieces: list[str] = []
        if self._xml_declaration:
            pieces.append('<?xml version="1.0" encoding="UTF-8"?>')
            if self._indent is not None:
                pieces.append("\n")
        self._write(root, pieces, level=0)
        return "".join(pieces)

    # ------------------------------------------------------------------
    def _write(self, node: XMLNode, pieces: list[str], level: int) -> None:
        indent = self._indent
        if indent is not None and level > 0:
            pieces.append("\n" + indent * level)
        pieces.append(f"<{node.tag}")
        for name, value in node.attributes.items():
            pieces.append(f' {name}="{escape_attribute(value)}"')
        if not node.children and not node.text:
            pieces.append("/>")
        else:
            pieces.append(">")
            has_character_data = bool(node.text) or any(
                child.tail for child in node.children)
            if node.text:
                pieces.append(escape_text(node.text))
            for child in node.children:
                saved = self._indent
                if has_character_data:
                    # Mixed content: never inject whitespace.
                    self._indent = None
                self._write(child, pieces, level + 1)
                self._indent = saved
                if child.tail:
                    pieces.append(escape_text(child.tail))
            if (indent is not None and node.children
                    and not has_character_data):
                pieces.append("\n" + indent * level)
            pieces.append(f"</{node.tag}>")
        if node.tail and level == 0:
            pieces.append(escape_text(node.tail))


def serialize(document: XMLDocument | XMLNode, indent: str | None = None,
              xml_declaration: bool = True) -> str:
    """One-shot convenience wrapper around :class:`XMLSerializer`."""
    serializer = XMLSerializer(indent=indent, xml_declaration=xml_declaration)
    return serializer.serialize(document)
