"""Labeled-tree model for XML documents (paper Section III).

The paper views an XML document as a labeled tree where each node has

* a *textual description* -- the concatenation of its tag name, attribute
  names and values, and text content, minus attributes an expert marked as
  non-textual (code strings, OIDs, identifiers); and
* an optional *ontological reference* -- a pair of integer codes
  ``(system_code, concept_code)`` naming a concept in a domain ontology.

Nodes carrying an ontological reference are called *code nodes*.

This module is deliberately independent of any concrete XML syntax; the
:mod:`repro.xmldoc.parser` module builds these trees from XML text and
:mod:`repro.xmldoc.serializer` writes them back out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping


@dataclass(frozen=True)
class OntologicalReference:
    """A reference from an XML node to a concept in an ontology.

    ``system_code`` identifies the ontological system (e.g. SNOMED CT is
    identified in CDA documents by the OID ``2.16.840.1.113883.6.96``) and
    ``concept_code`` identifies the concept within that system (e.g.
    ``195967001`` for *Asthma*).
    """

    system_code: str
    concept_code: str

    def __str__(self) -> str:
        return f"{self.system_code}:{self.concept_code}"


class XMLNode:
    """A node of the labeled XML tree.

    Attributes
    ----------
    tag:
        The element tag name.
    attributes:
        Attribute name/value mapping, in document order.
    text:
        Character data directly contained in this element (before any
        child element).
    tail:
        Character data following this element inside its parent, matching
        the convention of :mod:`xml.etree.ElementTree`.
    children:
        Child elements in document order.
    parent:
        The parent element, or ``None`` for the root.
    reference:
        Optional :class:`OntologicalReference` making this a *code node*.
    """

    __slots__ = ("tag", "attributes", "text", "tail", "children", "parent",
                 "reference")

    def __init__(self, tag: str, attributes: Mapping[str, str] | None = None,
                 text: str = "", tail: str = "",
                 reference: OntologicalReference | None = None) -> None:
        if not tag:
            raise ValueError("XMLNode requires a non-empty tag")
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.text = text
        self.tail = tail
        self.children: list[XMLNode] = []
        self.parent: XMLNode | None = None
        self.reference = reference

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def append(self, child: "XMLNode") -> "XMLNode":
        """Attach ``child`` as the last child of this node and return it."""
        if child.parent is not None:
            raise ValueError(f"<{child.tag}> already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    def add(self, tag: str, attributes: Mapping[str, str] | None = None,
            text: str = "",
            reference: OntologicalReference | None = None) -> "XMLNode":
        """Create a child element and attach it; convenience for builders."""
        return self.append(XMLNode(tag, attributes, text=text,
                                   reference=reference))

    def detach(self) -> "XMLNode":
        """Remove this node from its parent and return it."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def iter(self) -> Iterator["XMLNode"]:
        """Yield this node and all descendants in document (pre-) order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants(self) -> Iterator["XMLNode"]:
        """Yield proper descendants in document order."""
        nodes = self.iter()
        next(nodes)  # skip self
        yield from nodes

    def ancestors(self) -> Iterator["XMLNode"]:
        """Yield proper ancestors from parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "XMLNode":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def depth(self) -> int:
        """Number of containment edges between this node and the root."""
        return sum(1 for _ in self.ancestors())

    def find(self, tag: str) -> "XMLNode | None":
        """First descendant-or-self with the given tag, document order."""
        for node in self.iter():
            if node.tag == tag:
                return node
        return None

    def findall(self, tag: str) -> list["XMLNode"]:
        """All descendant-or-self nodes with the given tag."""
        return [node for node in self.iter() if node.tag == tag]

    def child_index(self) -> int:
        """Position of this node among its siblings (0-based)."""
        if self.parent is None:
            return 0
        return self.parent.children.index(self)

    # ------------------------------------------------------------------
    # Paper semantics
    # ------------------------------------------------------------------
    @property
    def is_code_node(self) -> bool:
        """Whether the node carries an ontological reference (Section III)."""
        return self.reference is not None

    def textual_description(self,
                            policy: "TextPolicy | None" = None) -> str:
        """The node's textual description per Section III.

        Concatenates tag name, attribute names and values, and direct text
        content. Attributes excluded by ``policy`` (code strings and the
        like, which "are unlikely to be used in a query keyword") do not
        contribute their values.
        """
        policy = policy or DEFAULT_TEXT_POLICY
        parts = [self.tag]
        for name, value in self.attributes.items():
            parts.append(name)
            if policy.includes(self.tag, name):
                parts.append(value)
        if self.text:
            parts.append(self.text)
        for child in self.children:
            if child.tail:
                parts.append(child.tail)
        return " ".join(part for part in parts if part)

    def subtree_text(self, policy: "TextPolicy | None" = None) -> str:
        """Concatenated textual descriptions of the whole subtree."""
        return " ".join(node.textual_description(policy)
                        for node in self.iter())

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ref = f" ref={self.reference}" if self.reference else ""
        return (f"<XMLNode {self.tag} attrs={len(self.attributes)} "
                f"children={len(self.children)}{ref}>")


class TextPolicy:
    """Expert-specified exclusion of attributes from textual descriptions.

    Section III: "some attribute values like code strings are not included
    [...] since these are unlikely to be used in a query keyword. An expert
    specifies the attributes that should not be included."

    A policy is a set of attribute names excluded everywhere plus a set of
    ``(tag, attribute)`` pairs excluded only on a given element, plus an
    optional predicate hook for custom rules.
    """

    def __init__(self, excluded_attributes: Iterable[str] = (),
                 excluded_pairs: Iterable[tuple[str, str]] = (),
                 predicate: Callable[[str, str], bool] | None = None) -> None:
        self._excluded = frozenset(excluded_attributes)
        self._excluded_pairs = frozenset(excluded_pairs)
        self._predicate = predicate

    def includes(self, tag: str, attribute: str) -> bool:
        """Whether the value of ``attribute`` on ``tag`` is indexable text."""
        if attribute in self._excluded:
            return False
        if (tag, attribute) in self._excluded_pairs:
            return False
        if self._predicate is not None and not self._predicate(tag, attribute):
            return False
        return True


#: The policy used throughout the paper's CDA experiments: numeric concept
#: codes, code-system OIDs, instance identifiers and schema noise carry no
#: query-relevant text. ``displayName`` *is* kept -- it is the main carrier
#: of clinical terms in CDA entries.
DEFAULT_TEXT_POLICY = TextPolicy(
    excluded_attributes=(
        "code", "codeSystem", "codeSystemName", "root", "extension",
        "templateId", "typeCode", "classCode", "moodCode",
        "xmlns", "xmlns:voc", "xmlns:xsi", "xsi:type", "xsi:schemaLocation",
        "ID", "IDREF",
    ),
)


@dataclass
class XMLDocument:
    """A parsed XML document: a root element plus corpus bookkeeping.

    ``doc_id`` is the integer identifier used as the first component of
    Dewey IDs (Section V: "the first component of each Dewey ID is the
    document ID").
    """

    doc_id: int
    root: XMLNode
    source_name: str = ""
    metadata: dict[str, str] = field(default_factory=dict)

    def iter(self) -> Iterator[XMLNode]:
        return self.root.iter()

    def node_count(self) -> int:
        return sum(1 for _ in self.iter())

    def code_nodes(self) -> list[XMLNode]:
        """All nodes carrying ontological references."""
        return [node for node in self.iter() if node.is_code_node]

    def referenced_systems(self) -> set[str]:
        """The ontological systems collection contributed by this document."""
        return {node.reference.system_code for node in self.code_nodes()
                if node.reference is not None}


class Corpus:
    """A collection of XML documents with stable integer document IDs."""

    def __init__(self, documents: Iterable[XMLDocument] = ()) -> None:
        self._documents: dict[int, XMLDocument] = {}
        self._version = 0
        for document in documents:
            self.add(document)

    @property
    def version(self) -> int:
        """Monotonic membership counter, bumped by :meth:`add` and
        :meth:`remove` -- lets caches keyed on corpus contents detect
        that a remove-then-add left the length unchanged."""
        return self._version

    def add(self, document: XMLDocument) -> XMLDocument:
        if document.doc_id in self._documents:
            raise ValueError(f"duplicate document id {document.doc_id}")
        self._documents[document.doc_id] = document
        self._version += 1
        return document

    def remove(self, doc_id: int) -> XMLDocument:
        try:
            document = self._documents.pop(doc_id)
        except KeyError:
            raise KeyError(f"no document with id {doc_id}") from None
        self._version += 1
        return document

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[XMLDocument]:
        return iter(sorted(self._documents.values(),
                           key=lambda document: document.doc_id))

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._documents

    def get(self, doc_id: int) -> XMLDocument:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise KeyError(f"no document with id {doc_id}") from None

    def referenced_systems(self) -> set[str]:
        """Union of ontological systems referenced across the corpus."""
        systems: set[str] = set()
        for document in self:
            systems |= document.referenced_systems()
        return systems

    def total_nodes(self) -> int:
        return sum(document.node_count() for document in self)
