"""XML parsing into the labeled-tree model.

Built directly on :mod:`xml.parsers.expat` so that namespace prefixes and
attribute order survive verbatim (HL7 CDA documents lean heavily on both,
and :mod:`xml.etree.ElementTree` rewrites prefixed names into Clark
notation, which would pollute textual descriptions).

Ontological references (Section III) are recognized by a pluggable
:class:`ReferenceExtractor`. The default extractor implements the CDA
convention: any element carrying ``code`` and ``codeSystem`` attributes
references concept ``code`` in system ``codeSystem``.
"""

from __future__ import annotations

import xml.parsers.expat
from typing import Callable, Mapping

from .model import OntologicalReference, XMLDocument, XMLNode

#: Signature of a reference extractor: given a tag and its attributes,
#: return the ontological reference the element carries, if any.
ReferenceExtractor = Callable[[str, Mapping[str, str]],
                              OntologicalReference | None]


def cda_reference_extractor(tag: str, attributes: Mapping[str, str],
                            ) -> OntologicalReference | None:
    """The HL7 CDA coding convention.

    ``<code code="195967001" codeSystem="2.16.840.1.113883.6.96" .../>``
    and ``<value xsi:type="CD" code=... codeSystem=.../>`` elements carry
    ontological references; the pair of attributes is what matters, not
    the tag.
    """
    code = attributes.get("code")
    system = attributes.get("codeSystem")
    if code and system:
        return OntologicalReference(system_code=system, concept_code=code)
    return None


def no_reference_extractor(tag: str, attributes: Mapping[str, str],
                           ) -> OntologicalReference | None:
    """Extractor for plain XML corpora without ontological annotations."""
    return None


class XMLParseError(ValueError):
    """Raised when a document is not well-formed XML."""


class XMLParser:
    """Parses XML text into :class:`XMLDocument` trees."""

    def __init__(self, reference_extractor: ReferenceExtractor | None = None,
                 keep_whitespace_text: bool = False) -> None:
        self._extract_reference = reference_extractor or cda_reference_extractor
        self._keep_whitespace_text = keep_whitespace_text

    # ------------------------------------------------------------------
    def parse(self, text: str, doc_id: int = 0,
              source_name: str = "") -> XMLDocument:
        """Parse a full XML document string."""
        root = self._parse_tree(text)
        return XMLDocument(doc_id=doc_id, root=root, source_name=source_name)

    def parse_file(self, path: str, doc_id: int = 0) -> XMLDocument:
        with open(path, "r", encoding="utf-8") as handle:
            return self.parse(handle.read(), doc_id=doc_id, source_name=path)

    def parse_fragment(self, text: str) -> XMLNode:
        """Parse a rooted XML fragment and return the root node only."""
        return self._parse_tree(text)

    # ------------------------------------------------------------------
    def _parse_tree(self, text: str) -> XMLNode:
        parser = xml.parsers.expat.ParserCreate()
        parser.buffer_text = True
        parser.ordered_attributes = True

        root: list[XMLNode] = []
        stack: list[XMLNode] = []
        keep_ws = self._keep_whitespace_text

        def start_element(tag: str, attribute_list: list[str]) -> None:
            attributes = {attribute_list[index]: attribute_list[index + 1]
                          for index in range(0, len(attribute_list), 2)}
            reference = self._extract_reference(tag, attributes)
            node = XMLNode(tag, attributes, reference=reference)
            if stack:
                stack[-1].append(node)
            else:
                root.append(node)
            stack.append(node)

        def end_element(tag: str) -> None:
            stack.pop()

        def character_data(data: str) -> None:
            if not stack:
                return
            if not keep_ws and not data.strip():
                return
            node = stack[-1]
            if node.children:
                node.children[-1].tail += data
            else:
                node.text += data

        parser.StartElementHandler = start_element
        parser.EndElementHandler = end_element
        parser.CharacterDataHandler = character_data
        try:
            parser.Parse(text, True)
        except xml.parsers.expat.ExpatError as error:
            raise XMLParseError(f"malformed XML: {error}") from error
        if not root:
            raise XMLParseError("document has no root element")
        return root[0]


def parse_document(text: str, doc_id: int = 0,
                   reference_extractor: ReferenceExtractor | None = None,
                   ) -> XMLDocument:
    """One-shot convenience wrapper around :class:`XMLParser`."""
    return XMLParser(reference_extractor).parse(text, doc_id=doc_id)
