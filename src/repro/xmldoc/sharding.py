"""Deterministic document partitioning for shard-parallel search.

Large patient-record collections are served from partitions; a
:class:`ShardedCorpus` splits a :class:`~repro.xmldoc.model.Corpus`
into N sub-corpora whose union is the original and whose assignment is
a pure function of the document IDs (and, for round-robin, their sorted
order) -- never of insertion order, process, or time. Documents keep
their global ``doc_id``, so Dewey IDs (whose first component is the
document ID, Section V) are globally unique across shards and a
federated merge of per-shard rankings needs no ID translation.

Two policies:

* ``hash`` (default) -- ``crc32(doc_id) mod N``. Assignment of a
  document never changes when other documents come or go, the right
  policy for an evolving collection.
* ``round_robin`` -- position in doc-ID order, modulo N. Perfectly
  balanced shard sizes for a fixed collection.
"""

from __future__ import annotations

import zlib
from typing import Iterator

from .model import Corpus, XMLDocument

HASH = "hash"
ROUND_ROBIN = "round_robin"
SHARDING_POLICIES = (HASH, ROUND_ROBIN)


def hash_shard(doc_id: int, shard_count: int) -> int:
    """The ``hash`` policy's stable assignment (CRC32, not Python's
    per-process-salted ``hash``)."""
    return zlib.crc32(str(doc_id).encode("ascii")) % shard_count


class ShardedCorpus:
    """A corpus partitioned into N deterministic sub-corpora."""

    def __init__(self, corpus: Corpus, shard_count: int,
                 policy: str = HASH) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if policy not in SHARDING_POLICIES:
            raise ValueError(
                f"unknown sharding policy {policy!r}; "
                f"choose from {SHARDING_POLICIES}")
        self.corpus = corpus
        self.policy = policy
        self._assignment: dict[int, int] = {}
        self.shards: list[Corpus] = [Corpus()
                                     for _ in range(shard_count)]
        # Corpus iteration is sorted by doc_id, which is what makes
        # round-robin deterministic.
        for position, document in enumerate(corpus):
            if policy == HASH:
                shard = hash_shard(document.doc_id, shard_count)
            else:
                shard = position % shard_count
            self._assignment[document.doc_id] = shard
            self.shards[shard].add(document)

    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, doc_id: int) -> int:
        """The shard index holding ``doc_id``."""
        try:
            return self._assignment[doc_id]
        except KeyError:
            raise KeyError(f"no document with id {doc_id}") from None

    def shard_doc_ids(self, shard: int) -> frozenset[int]:
        """The document IDs assigned to one shard."""
        return frozenset(doc_id for doc_id, index
                         in self._assignment.items() if index == shard)

    def assignment(self) -> dict[int, int]:
        """A copy of the full doc_id → shard map."""
        return dict(self._assignment)

    # ------------------------------------------------------------------
    # Incremental membership (hash policy only)
    # ------------------------------------------------------------------
    def route(self, doc_id: int) -> int:
        """The shard a document id belongs to: its recorded assignment,
        or -- for a new id under the ``hash`` policy -- its stable hash
        shard. Round-robin assignment is position-dependent, so new ids
        cannot be routed incrementally under it."""
        shard = self._assignment.get(doc_id)
        if shard is not None:
            return shard
        if self.policy != HASH:
            raise ValueError(
                "incremental routing requires the 'hash' policy; "
                "'round_robin' assignment depends on the position of "
                "every other document")
        return hash_shard(doc_id, self.shard_count)

    def record(self, doc_id: int, shard: int) -> None:
        """Record the assignment of a document whose shard corpus was
        populated by the caller (the federated append path, where the
        shard engine's lifecycle owns the corpus mutation)."""
        if doc_id in self._assignment:
            raise ValueError(f"document {doc_id} is already assigned")
        if not 0 <= shard < self.shard_count:
            raise ValueError(f"no shard {shard}")
        self._assignment[doc_id] = shard

    def forget(self, doc_id: int) -> int:
        """Drop the assignment of a document the caller removed from
        its shard corpus; returns the shard it occupied."""
        shard = self.shard_of(doc_id)
        del self._assignment[doc_id]
        return shard

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[Corpus]:
        return iter(self.shards)

    def documents(self) -> Iterator[XMLDocument]:
        """Every document, in global doc-ID order."""
        return iter(self.corpus)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(shard) for shard in self.shards]
        return (f"<ShardedCorpus {len(self.corpus)} docs -> "
                f"{self.shard_count} shards {sizes} ({self.policy})>")
