"""Dewey IDs for XML nodes (paper Section V, Figures 9-10).

A Dewey ID encodes the root-to-node path of an XML element as a tuple of
sibling positions, prefixed by the document ID: the root of document 7 is
``7``, its second child is ``7.1``, and so on. Dewey IDs give three
properties the XRANK/XOntoRank machinery relies on:

* lexicographic order of Dewey IDs equals document order of nodes;
* ancestor/descendant tests are prefix tests;
* the longest common prefix of two IDs is the Dewey ID of their lowest
  common ancestor (when it is longer than just the document component).

IDs are immutable value objects, ordered, hashable, and have a compact
string form (``"7.0.2.1"``) used by the persistent stores.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .model import XMLDocument, XMLNode


@total_ordering
class DeweyID:
    """Immutable Dewey identifier: a document ID plus a component path."""

    __slots__ = ("doc_id", "path")

    def __init__(self, doc_id: int, path: Iterable[int] = ()) -> None:
        if doc_id < 0:
            raise ValueError("document id must be non-negative")
        path = tuple(path)
        if any(component < 0 for component in path):
            raise ValueError("Dewey components must be non-negative")
        self.doc_id = doc_id
        self.path = path

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, encoded: str) -> "DeweyID":
        """Parse the string form produced by :meth:`encode`."""
        parts = encoded.split(".")
        try:
            numbers = [int(part) for part in parts]
        except ValueError:
            raise ValueError(f"malformed Dewey ID {encoded!r}") from None
        if not numbers:
            raise ValueError("empty Dewey ID")
        return cls(numbers[0], numbers[1:])

    def encode(self) -> str:
        """Compact dotted-decimal form, e.g. ``'7.0.2.1'``."""
        return ".".join(str(part) for part in (self.doc_id, *self.path))

    def child(self, position: int) -> "DeweyID":
        """Dewey ID of the child at the given sibling position."""
        return DeweyID(self.doc_id, self.path + (position,))

    def parent(self) -> "DeweyID":
        """Dewey ID of the parent element.

        Raises :class:`ValueError` on a document root, which has no parent.
        """
        if not self.path:
            raise ValueError("document root has no parent")
        return DeweyID(self.doc_id, self.path[:-1])

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of containment edges from the document root."""
        return len(self.path)

    def is_ancestor_of(self, other: "DeweyID") -> bool:
        """Proper ancestor test (same document, strict prefix)."""
        return (self.doc_id == other.doc_id
                and len(self.path) < len(other.path)
                and other.path[:len(self.path)] == self.path)

    def is_descendant_of(self, other: "DeweyID") -> bool:
        return other.is_ancestor_of(self)

    def contains(self, other: "DeweyID") -> bool:
        """Ancestor-or-self test."""
        return self == other or self.is_ancestor_of(other)

    def distance_to_descendant(self, other: "DeweyID") -> int:
        """Number of containment edges down to a descendant-or-self node.

        This is the exponent ``d(v, u)`` of the decay factor in the
        paper's score-propagation formula (Eq. 2).
        """
        if not self.contains(other):
            raise ValueError(f"{other.encode()} is not contained "
                             f"in {self.encode()}")
        return len(other.path) - len(self.path)

    def common_ancestor(self, other: "DeweyID") -> "DeweyID | None":
        """Lowest common ancestor, or ``None`` across documents."""
        if self.doc_id != other.doc_id:
            return None
        prefix: list[int] = []
        for ours, theirs in zip(self.path, other.path):
            if ours != theirs:
                break
            prefix.append(ours)
        return DeweyID(self.doc_id, prefix)

    # ------------------------------------------------------------------
    # Value-object protocol
    # ------------------------------------------------------------------
    def _key(self) -> tuple[int, tuple[int, ...]]:
        return (self.doc_id, self.path)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeweyID):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other: "DeweyID") -> bool:
        if not isinstance(other, DeweyID):
            return NotImplemented
        return self._key() < other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"DeweyID({self.encode()!r})"


def assign_dewey_ids(document: "XMLDocument") -> dict["XMLNode", DeweyID]:
    """Assign Dewey IDs to every node of a document, in document order.

    Returns a mapping from node object to its :class:`DeweyID`. The root
    receives ``DeweyID(doc_id)``; each child receives its parent's ID
    extended with its 0-based sibling position (paper Figure 9).
    """
    ids: dict["XMLNode", DeweyID] = {}
    root_id = DeweyID(document.doc_id)
    stack: list[tuple["XMLNode", DeweyID]] = [(document.root, root_id)]
    while stack:
        node, dewey = stack.pop()
        ids[node] = dewey
        for position, child in enumerate(node.children):
            stack.append((child, dewey.child(position)))
    return ids


def node_at(document: "XMLDocument", dewey: DeweyID) -> "XMLNode":
    """Resolve a Dewey ID back to the node of ``document`` it addresses.

    This is the Database Access Module operation of Section V-A: "obtains
    the appropriate XML fragments addressed by the resulting Dewey IDs".
    """
    if dewey.doc_id != document.doc_id:
        raise ValueError(f"Dewey ID {dewey.encode()} does not belong to "
                         f"document {document.doc_id}")
    node = document.root
    for component in dewey.path:
        try:
            node = node.children[component]
        except IndexError:
            raise LookupError(f"no node at {dewey.encode()} in document "
                              f"{document.doc_id}") from None
    return node


def document_order(ids: Iterable[DeweyID]) -> Iterator[DeweyID]:
    """Yield Dewey IDs sorted into global document order."""
    return iter(sorted(ids))
