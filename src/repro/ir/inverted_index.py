"""Positional full-text index over abstract retrieval units.

The paper computes IR scores in two places with the same machinery: over
XML elements viewed as documents ("We view each XML element as a document
to apply the IR function", Section III) and over ontology concepts viewed
as documents (the seeds of OntoScore expansion, Section IV). This index
is therefore generic over an opaque hashable unit identifier.

Positions are kept so that quoted phrase keywords match only consecutive
occurrences (Section VII's workload contains phrases such as
``"cardiac arrest"``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterator

from .tokenizer import Keyword, tokenize

UnitId = Hashable


class PositionalIndex:
    """An in-memory positional inverted index.

    Units are added once with their full text; the index records, per
    token, the units containing it and the token positions within each
    unit. Phrase postings are derived from positions and cached.
    """

    def __init__(self) -> None:
        self._postings: dict[str, dict[UnitId, list[int]]] = defaultdict(dict)
        self._lengths: dict[UnitId, int] = {}
        self._total_length = 0
        self._phrase_cache: dict[tuple[str, ...], dict[UnitId, int]] = {}

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add(self, unit_id: UnitId, text: str) -> int:
        """Index one unit; returns its token length.

        Re-adding an existing unit id is an error: the index has no
        notion of update, matching the paper's batch pre-processing
        phase.
        """
        if unit_id in self._lengths:
            raise ValueError(f"unit {unit_id!r} already indexed")
        tokens = tokenize(text)
        for position, token in enumerate(tokens):
            self._postings[token].setdefault(unit_id, []).append(position)
        self._lengths[unit_id] = len(tokens)
        self._total_length += len(tokens)
        self._phrase_cache.clear()
        return len(tokens)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        return len(self._lengths)

    @property
    def average_length(self) -> float:
        if not self._lengths:
            return 0.0
        return self._total_length / len(self._lengths)

    def __contains__(self, unit_id: UnitId) -> bool:
        return unit_id in self._lengths

    def length(self, unit_id: UnitId) -> int:
        """Token length of a unit (0 for unknown units)."""
        return self._lengths.get(unit_id, 0)

    def units(self) -> Iterator[UnitId]:
        return iter(self._lengths)

    def vocabulary(self) -> set[str]:
        return set(self._postings)

    # ------------------------------------------------------------------
    # Token-level access
    # ------------------------------------------------------------------
    def token_postings(self, token: str) -> dict[UnitId, list[int]]:
        """Units containing ``token`` with their position lists."""
        return dict(self._postings.get(token, {}))

    def document_frequency(self, token: str) -> int:
        return len(self._postings.get(token, {}))

    def term_frequency(self, unit_id: UnitId, token: str) -> int:
        return len(self._postings.get(token, {}).get(unit_id, ()))

    # ------------------------------------------------------------------
    # Keyword-level access (phrase-aware)
    # ------------------------------------------------------------------
    def keyword_frequencies(self, keyword: Keyword) -> dict[UnitId, int]:
        """Occurrences of ``keyword`` per unit.

        For a single-token keyword this is plain term frequency. For a
        phrase, an occurrence is a run of consecutive positions matching
        the phrase tokens in order.
        """
        if len(keyword.tokens) == 1:
            token = keyword.tokens[0]
            return {unit: len(positions) for unit, positions
                    in self._postings.get(token, {}).items()}
        return dict(self._phrase_frequencies(keyword.tokens))

    def keyword_document_frequency(self, keyword: Keyword) -> int:
        """Number of units containing the keyword at least once."""
        return len(self.keyword_frequencies(keyword))

    def _phrase_frequencies(self, phrase: tuple[str, ...],
                            ) -> dict[UnitId, int]:
        cached = self._phrase_cache.get(phrase)
        if cached is not None:
            return cached
        first, *rest = phrase
        frequencies: dict[UnitId, int] = {}
        for unit_id, start_positions in self._postings.get(first,
                                                           {}).items():
            count = 0
            for start in start_positions:
                if all((unit_id in self._postings.get(token, {})
                        and start + offset + 1
                        in self._position_set(token, unit_id))
                       for offset, token in enumerate(rest)):
                    count += 1
            if count:
                frequencies[unit_id] = count
        self._phrase_cache[phrase] = frequencies
        return frequencies

    def _position_set(self, token: str, unit_id: UnitId) -> set[int]:
        # Local memoization via tuple keys would churn; the lists are
        # short (clinical text), so a set per call is fine for phrases,
        # but we still cache whole-phrase results above.
        return set(self._postings.get(token, {}).get(unit_id, ()))
