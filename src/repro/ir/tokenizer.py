"""Tokenization and keyword-query parsing.

Query keywords in the paper are either single words or quoted phrases
("Note that some keywords are phrases enclosed in quotes", Section VII —
e.g. ``"cardiac arrest" amiodarone``). A :class:`Keyword` models both; a
phrase matches only where its tokens occur consecutively.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

# Underscores are word characters: the DL view's syntactic restriction
# names (``Exists_finding_site_of_Bronchial_Structure``) must tokenize
# as single terms so ordinary keywords do not match them (Section IV-C).
_TOKEN_PATTERN = re.compile(r"[a-z0-9_]+(?:'[a-z0-9_]+)?")

#: Words too common to be useful query terms. Kept deliberately small --
#: clinical text is terse and most words carry signal.
DEFAULT_STOPWORDS = frozenset({
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from",
    "has", "in", "is", "it", "of", "on", "or", "that", "the", "to",
    "was", "were", "with",
})


def tokenize(text: str) -> list[str]:
    """Lowercased alphanumeric tokens of ``text``, in order."""
    return _TOKEN_PATTERN.findall(text.lower())


def tokenize_without_stopwords(
        text: str,
        stopwords: frozenset[str] = DEFAULT_STOPWORDS) -> list[str]:
    """Tokens of ``text`` minus stopwords (used for vocabulary building)."""
    return [token for token in tokenize(text) if token not in stopwords]


def normalize_term(term: str) -> str:
    """Canonical form of a term for exact-match lookup.

    This is the *single* normalization both the persisted
    :class:`~repro.ontology.indexes.NameIndex` keys and the
    :class:`~repro.ontology.api.TerminologyService` graph-side term
    index use, so a query-side term always hits the same bucket its
    ontology-side twin was filed under. Hyphenated clinical terms
    ("X-ray", "super-morbidly obese") normalize to their split tokens
    ("x ray") on both sides by construction.
    """
    return " ".join(tokenize(term))


@dataclass(frozen=True)
class Keyword:
    """One query keyword: a single token or a quoted phrase.

    ``tokens`` is never empty; a phrase keyword requires its tokens to be
    adjacent and in order wherever it matches.
    """

    tokens: tuple[str, ...]
    is_phrase: bool = False

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("a keyword needs at least one token")
        if any(not token for token in self.tokens):
            raise ValueError("keyword tokens must be non-empty")

    @classmethod
    def from_text(cls, text: str) -> "Keyword":
        """Build a keyword from raw text; multi-word text is a phrase."""
        tokens = tuple(tokenize(text))
        if not tokens:
            raise ValueError(f"no indexable tokens in {text!r}")
        return cls(tokens=tokens, is_phrase=len(tokens) > 1)

    @property
    def text(self) -> str:
        """Canonical text form (used as the index key)."""
        return " ".join(self.tokens)

    def __str__(self) -> str:
        if self.is_phrase:
            return f'"{self.text}"'
        return self.text


@dataclass(frozen=True)
class KeywordQuery:
    """An ordered set of keywords ``q = {w1, ..., wk}`` (Section III)."""

    keywords: tuple[Keyword, ...]

    def __post_init__(self) -> None:
        if not self.keywords:
            raise ValueError("a query needs at least one keyword")

    @classmethod
    def parse(cls, text: str) -> "KeywordQuery":
        """Parse query syntax: whitespace-separated terms, quoted phrases.

        ``'"cardiac arrest" amiodarone'`` →
        ``[Keyword(cardiac arrest, phrase), Keyword(amiodarone)]``.
        """
        keywords: list[Keyword] = []
        for is_phrase, raw in _split_query(text):
            tokens = tuple(tokenize(raw))
            if not tokens:
                continue
            keywords.append(Keyword(tokens=tokens,
                                    is_phrase=is_phrase or len(tokens) > 1))
        if not keywords:
            raise ValueError(f"no indexable keywords in query {text!r}")
        return cls(tuple(keywords))

    @classmethod
    def of(cls, *terms: str) -> "KeywordQuery":
        """Build a query from pre-split terms (phrases stay phrases)."""
        return cls(tuple(Keyword.from_text(term) for term in terms))

    def __len__(self) -> int:
        return len(self.keywords)

    def __iter__(self):
        return iter(self.keywords)

    def __str__(self) -> str:
        return " ".join(str(keyword) for keyword in self.keywords)


def _split_query(text: str) -> list[tuple[bool, str]]:
    """Split raw query text into (is_quoted, chunk) pairs."""
    chunks: list[tuple[bool, str]] = []
    pattern = re.compile(r'"([^"]*)"|(\S+)')
    for match in pattern.finditer(text):
        quoted, bare = match.groups()
        if quoted is not None:
            chunks.append((True, quoted))
        else:
            chunks.append((False, bare))
    return chunks


def contains_phrase(tokens: Iterable[str], phrase: tuple[str, ...]) -> bool:
    """Whether ``phrase`` occurs consecutively within ``tokens``."""
    token_list = list(tokens)
    width = len(phrase)
    if width == 0 or width > len(token_list):
        return False
    phrase_list = list(phrase)
    for start in range(len(token_list) - width + 1):
        if token_list[start:start + width] == phrase_list:
            return True
    return False
