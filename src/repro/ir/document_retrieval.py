"""Whole-document retrieval: the unstructured-CDA fallback.

Section II: the CDA body "can be either an unstructured segment or an
XML fragment. We focus on structured CDA documents, which provide a
better opportunity for high-quality information discovery. Traditional
Information Retrieval (IR) approaches [17], [18] can be applied to the
unstructured scenario."

This module is that traditional approach: each document is one retrieval
unit, scored by summed BM25 over the query keywords, optionally requiring
every keyword to occur (conjunctive mode). It serves corpora whose
documents carry ``nonXMLBody`` narrative, and doubles as a coarse
baseline for the structured engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..xmldoc.model import Corpus, TextPolicy
from .bm25 import BM25Scorer
from .inverted_index import PositionalIndex
from .tokenizer import KeywordQuery


@dataclass(frozen=True)
class DocumentHit:
    """One ranked document."""

    doc_id: int
    score: float
    keyword_scores: tuple[float, ...]


class DocumentSearcher:
    """BM25 retrieval over whole documents."""

    def __init__(self, corpus: Corpus,
                 text_policy: TextPolicy | None = None,
                 k1: float = 1.2, b: float = 0.75,
                 conjunctive: bool = True) -> None:
        self._corpus = corpus
        self._conjunctive = conjunctive
        self._index = PositionalIndex()
        for document in corpus:
            self._index.add(document.doc_id,
                            document.root.subtree_text(text_policy))
        self._scorer = BM25Scorer(self._index, k1=k1, b=b)

    # ------------------------------------------------------------------
    def search(self, query: str | KeywordQuery,
               k: int | None = None) -> list[DocumentHit]:
        parsed = (KeywordQuery.parse(query) if isinstance(query, str)
                  else query)
        per_keyword = [self._scorer.normalized_scores(keyword)
                       for keyword in parsed]
        if self._conjunctive:
            doc_ids = set(self._index.units())
            for scores in per_keyword:
                doc_ids &= set(scores)
        else:
            doc_ids = set()
            for scores in per_keyword:
                doc_ids |= set(scores)
        hits = []
        for doc_id in doc_ids:
            keyword_scores = tuple(scores.get(doc_id, 0.0)
                                   for scores in per_keyword)
            hits.append(DocumentHit(doc_id=doc_id,
                                    score=sum(keyword_scores),
                                    keyword_scores=keyword_scores))
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return hits[:k] if k is not None else hits

    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        return self._index.document_count
