"""Okapi BM25 relevance scoring (Robertson & Walker [19]).

The paper: "ξ(v, w | D) is the IR score of a document v given keyword w
within the collection D. [...] In our experiments we use the BM25 [19]
function", and scores are "normalized to [0, 1]".

Phrase keywords are scored as virtual terms: their document frequency is
the number of units containing the phrase, their term frequency the
number of phrase occurrences in the unit.
"""

from __future__ import annotations

import math
from typing import Hashable

from .inverted_index import PositionalIndex
from .tokenizer import Keyword

UnitId = Hashable


class BM25Scorer:
    """BM25 over a :class:`PositionalIndex`.

    Uses the non-negative "plus 1" idf variant
    ``log(1 + (N - df + 0.5) / (df + 0.5))`` so that scores of very
    common terms cannot go negative (negative relevance would break the
    paper's max-combination in Eq. 5).
    """

    def __init__(self, index: PositionalIndex, k1: float = 1.2,
                 b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0 <= b <= 1:
            raise ValueError("b must lie in [0, 1]")
        self._index = index
        self.k1 = k1
        self.b = b

    # ------------------------------------------------------------------
    def idf(self, keyword: Keyword) -> float:
        """Inverse document frequency of a (possibly phrase) keyword."""
        df = self._index.keyword_document_frequency(keyword)
        if df == 0:
            return 0.0
        n = self._index.document_count
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score(self, unit_id: UnitId, keyword: Keyword) -> float:
        """Raw BM25 score of one unit for one keyword."""
        frequencies = self._index.keyword_frequencies(keyword)
        tf = frequencies.get(unit_id, 0)
        if tf == 0:
            return 0.0
        return self._score_from_tf(tf, unit_id) * self.idf(keyword)

    def scores(self, keyword: Keyword) -> dict[UnitId, float]:
        """Raw BM25 scores of every matching unit."""
        idf = self.idf(keyword)
        if idf == 0.0:
            return {}
        return {unit_id: self._score_from_tf(tf, unit_id) * idf
                for unit_id, tf
                in self._index.keyword_frequencies(keyword).items()}

    def normalized_scores(self, keyword: Keyword) -> dict[UnitId, float]:
        """Scores rescaled into (0, 1] by the per-keyword maximum.

        The paper normalizes both IR scores and OntoScores to [0, 1]
        before combining them in Eq. 5; dividing by the per-keyword
        maximum preserves the ranking and makes the strongest textual
        match exactly 1.
        """
        raw = self.scores(keyword)
        if not raw:
            return {}
        maximum = max(raw.values())
        if maximum <= 0.0:
            return {}
        return {unit_id: value / maximum for unit_id, value in raw.items()}

    # ------------------------------------------------------------------
    def _score_from_tf(self, tf: int, unit_id: UnitId) -> float:
        average = self._index.average_length
        if average <= 0:
            return 0.0
        length_ratio = self._index.length(unit_id) / average
        denominator = tf + self.k1 * (1 - self.b + self.b * length_ratio)
        if denominator <= 0:
            return 0.0
        return tf * (self.k1 + 1) / denominator
