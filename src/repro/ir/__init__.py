"""IR substrate: tokenization, positional indexing, BM25 and TF-IDF.

Generic over the retrieval unit: the same machinery scores XML elements
as documents (Eq. 5's IRS term) and ontology concepts as documents (the
OntoScore expansion seeds of Section IV).
"""

from .bm25 import BM25Scorer
from .document_retrieval import DocumentHit, DocumentSearcher
from .inverted_index import PositionalIndex
from .tfidf import RelevanceScorer, TfIdfScorer
from .tokenizer import (DEFAULT_STOPWORDS, Keyword, KeywordQuery,
                        contains_phrase, tokenize,
                        tokenize_without_stopwords)

__all__ = [
    "BM25Scorer", "DEFAULT_STOPWORDS", "DocumentHit", "DocumentSearcher",
    "Keyword", "KeywordQuery",
    "PositionalIndex", "RelevanceScorer", "TfIdfScorer", "contains_phrase",
    "tokenize", "tokenize_without_stopwords",
]
