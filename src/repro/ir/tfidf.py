"""TF-IDF relevance scoring, the classic alternative to BM25.

The paper's framework is parametric in the IR function ("popular IR
functions [17], [19], [20]"); TF-IDF implements the same scorer protocol
as :class:`repro.ir.bm25.BM25Scorer`, so either can back Eq. 5. The index
builder also uses it for the "Full-text Indexing" stage, which "computes
the TF-IDF score" (Section V-B).
"""

from __future__ import annotations

import math
from typing import Hashable, Protocol

from .inverted_index import PositionalIndex
from .tokenizer import Keyword

UnitId = Hashable


class RelevanceScorer(Protocol):
    """The scorer interface Eq. 5 consumes (BM25 and TF-IDF satisfy it)."""

    def score(self, unit_id: UnitId, keyword: Keyword) -> float:
        """Raw relevance of one unit for one keyword."""
        ...  # pragma: no cover - protocol definition

    def scores(self, keyword: Keyword) -> dict[UnitId, float]:
        """Raw relevance of every matching unit."""
        ...  # pragma: no cover - protocol definition

    def normalized_scores(self, keyword: Keyword) -> dict[UnitId, float]:
        """Per-keyword max-normalized relevance in (0, 1]."""
        ...  # pragma: no cover - protocol definition


class TfIdfScorer:
    """Log-scaled TF-IDF: ``(1 + log tf) · log(1 + N / df)``."""

    def __init__(self, index: PositionalIndex) -> None:
        self._index = index

    # ------------------------------------------------------------------
    def idf(self, keyword: Keyword) -> float:
        df = self._index.keyword_document_frequency(keyword)
        if df == 0:
            return 0.0
        return math.log(1.0 + self._index.document_count / df)

    def score(self, unit_id: UnitId, keyword: Keyword) -> float:
        tf = self._index.keyword_frequencies(keyword).get(unit_id, 0)
        if tf == 0:
            return 0.0
        return (1.0 + math.log(tf)) * self.idf(keyword)

    def scores(self, keyword: Keyword) -> dict[UnitId, float]:
        idf = self.idf(keyword)
        if idf == 0.0:
            return {}
        return {unit_id: (1.0 + math.log(tf)) * idf
                for unit_id, tf
                in self._index.keyword_frequencies(keyword).items()}

    def normalized_scores(self, keyword: Keyword) -> dict[UnitId, float]:
        raw = self.scores(keyword)
        if not raw:
            return {}
        maximum = max(raw.values())
        if maximum <= 0.0:
            return {}
        return {unit_id: value / maximum for unit_id, value in raw.items()}
