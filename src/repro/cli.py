"""Command-line interface: the full pipeline as a tool.

Four subcommands mirror the system's phases::

    python -m repro generate --out DIR [--patients 40] [--seed 7]
        Build the synthetic SNOMED (flat files) and the CDA corpus
        (one XML file per patient) under DIR.

    python -m repro build-ontology --store FILE.db
        [--data DIR | --scale F | --target-concepts N]
        [--store-format sqlite|mmap] [--profile]
        Build the persisted concept indexes of the ontology service:
        exact + per-token name/synonym lookup, cross-references into
        foreign code systems, and the is-a ancestor/descendant closure
        with depths. With --data the ontology under DIR/ontology is
        indexed; without it a synthetic SNOMED is *streamed* into the
        build (--target-concepts 100000 never materializes the graph).

    python -m repro index --data DIR --store FILE.db
        [--strategy relationships] [--radius 2] [--workers N]
        [--store-format sqlite|mmap] [--append] [--ontology-cache F.db]
        [--profile] [--metrics-out F.jsonl] [--trace-out F.json]
        Pre-processing phase: build XOnto-DILs for the experiment
        vocabulary and persist them (plus the documents). The default
        backend is SQLite; ``--store-format mmap`` writes the compact
        memory-mapped container instead (read-only, O(1) open, shared
        OS page cache -- see docs/STORAGE.md). ``--workers N`` (N > 1)
        builds on a worker pool; the persisted index is identical to
        the serial build. ``build-index`` is an alias for this
        subcommand. ``search``/``serve``/``verify-index`` detect the
        backend from the file itself; no flag is needed to read.

        With ``--ontology-cache F.db`` OntoScore expansions are read
        through a persisted cache keyed by (ontology fingerprint,
        strategy, expansion parameters); a second build of the same
        configuration starts warm, and a mismatched cache generation
        is invalidated instead of reused.

        With ``--append`` the store must already exist: documents in
        DIR that the store does not yet hold are indexed as one
        immutable LSM segment -- no existing posting list is rebuilt --
        and published by a single atomic catalog write (a crash leaves
        the previous index intact). New corpus files must sort after
        the existing ones (document ids are positional).

    python -m repro compact --store FILE.db [--shards N]
        Fold an incrementally grown store's segments back into one,
        dropping tombstoned documents and any orphan rows left by
        crashed appends. The logical index (and every query answer) is
        unchanged; with --shards N every shard store is compacted.

    python -m repro search --data DIR "QUERY" [--store FILE.db]
        [--strategy relationships] [--top-k 10] [--explain] [--cache-size N]
        [--retries N] [--strict | --no-fallback] [--verbose]
        [--profile] [--metrics-out F.jsonl] [--trace-out F.json]
        Query phase: run a keyword query, print ranked fragments; with
        --store, posting lists are loaded instead of rebuilt. The store
        must exist, is opened read-only, its manifest is validated
        (strategy/decay/threshold/t/corpus fingerprint), and transient
        faults are retried. By default the engine *degrades* on storage
        failure -- a bad posting list (or a whole invalid store) is
        rebuilt from the corpus with a warning; --strict/--no-fallback
        fail fast instead. Prints DIL-cache counters after the query;
        --verbose adds retry/fallback/integrity counters.

    python -m repro verify-index --store FILE.db
        Check a persisted index's integrity end to end: a
        human-readable format/version line, per-block checksums (mmap
        stores carry a crc32 per posting block), per-strategy
        posting-list checksums, build-completion marker, corpus
        fingerprint over the stored documents. Exit 0 when intact,
        1 when damaged, 2 when the file is missing.

    python -m repro evaluate --data DIR [--k 5]
        Run the Table-I survey over the published workload with the
        relevance oracle and print per-strategy counts.

    python -m repro stats --data DIR
        Print ontology/corpus/vocabulary statistics.

``index`` and ``search`` also accept --decay/--threshold/--t to move
the paper's parameters off their published defaults. ``index`` writes
the database to a temporary sibling path and atomically renames it into
place, so a killed build never publishes a partial store.

Both subcommands accept ``--shards N`` (and ``--shard-workers M`` for a
thread-pool fan-out): the corpus is hash-partitioned into N shards,
``index`` writes one store per shard at ``STORE.shardII-of-NN`` (each
with its own crash-safe manifest), and ``search`` federates the query
across the shards and k-way-merges per-shard rankings. Federated
rankings are byte-identical to the single-engine ranking; a damaged
shard store degrades only its own shard.

Observability (see docs/OBSERVABILITY.md for the instrument catalog):
--profile traces the hot paths through :mod:`repro.core.obs` and prints
a per-phase timing table (parse / OntoScore / DIL merge / storage);
--metrics-out dumps every counter and timer as JSON lines; --trace-out
writes the span buffer in Chrome-trace format for chrome://tracing or
https://ui.perfetto.dev. Either output flag implies tracing; without
any of the three, the engine runs on the no-op tracer and pays nothing.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import Sequence

from .cda.generator import build_cda_corpus
from .core.config import (ALL_STRATEGIES, RELATIONSHIPS,
                          XOntoRankConfig)
from .core.obs import (Tracer, render_profile, write_chrome_trace,
                       write_metrics_jsonl)
from .core.query.engine import XOntoRankEngine, build_engines
from .core.stats import (ONTOLOGY_CACHE_HITS,
                         ONTOLOGY_CACHE_INVALIDATIONS,
                         ONTOLOGY_CACHE_MISSES, StatsRegistry)
from .core.query.federated import FederatedEngine, shard_store_path
from .emr.synth import generate_cardiac_emr
from .evaluation.metrics import run_survey
from .evaluation.oracle import RelevanceOracle
from .evaluation.workload import table1_queries
from .ontology.api import TerminologyService
from .ontology.indexes import build_ontology_indexes
from .ontology.io import load_ontology, save_ontology
from .ontology.snomed import (SNOMED_NAME, SNOMED_SYSTEM_CODE,
                              SyntheticSnomedBuilder,
                              build_synthetic_snomed)
from .storage.errors import StorageError
from .storage.manifest import (CHECKSUM_KEY_PREFIX, MANIFEST_VERSION_KEY,
                               atomic_sqlite_build, verify_manifest)
from .storage.mmap_store import (MmapStore, atomic_mmap_build,
                                 open_read_store, sniff_store_format)
from .storage.retrying import RetryingStore
from .storage.sqlite_store import SQLiteStore
from .xmldoc.model import Corpus
from .xmldoc.parser import XMLParser
from .xmldoc.serializer import serialize

ONTOLOGY_DIR = "ontology"
CORPUS_DIR = "corpus"


# ----------------------------------------------------------------------
# Data-directory helpers
# ----------------------------------------------------------------------
def _load_data_directory(data_dir: str):
    ontology = load_ontology(os.path.join(data_dir, ONTOLOGY_DIR))
    corpus_dir = os.path.join(data_dir, CORPUS_DIR)
    parser = XMLParser()
    corpus = Corpus()
    names = sorted(name for name in os.listdir(corpus_dir)
                   if name.endswith(".xml"))
    if not names:
        raise FileNotFoundError(f"no .xml documents under {corpus_dir}")
    for doc_id, name in enumerate(names):
        document = parser.parse_file(os.path.join(corpus_dir, name),
                                     doc_id=doc_id)
        corpus.add(document)
    return ontology, corpus


def _config_from(args: argparse.Namespace) -> XOntoRankConfig:
    return XOntoRankConfig(decay=args.decay, threshold=args.threshold,
                           t=args.t,
                           dil_cache_capacity=getattr(args, "cache_size",
                                                      None))


def _add_parameter_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--decay", type=float, default=0.5,
                        help="score attenuation per edge (paper: 0.5)")
    parser.add_argument("--threshold", type=float, default=0.1,
                        help="OntoScore pruning bound (paper: 0.1)")
    parser.add_argument("--t", type=float, default=0.5,
                        help="dotted-link decay (paper: 0.5)")


def _add_profiling_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", action="store_true",
                        help="trace the hot paths and print a "
                             "per-phase timing table")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write counters and timers as JSON lines "
                             "(implies --profile)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write spans as a Chrome-trace JSON file "
                             "for chrome://tracing / Perfetto "
                             "(implies --profile)")


def _tracer_from(args: argparse.Namespace) -> Tracer | None:
    """A live tracer when any profiling flag was given, else ``None``
    (the engine then runs on the zero-cost null tracer)."""
    if args.profile or args.metrics_out or args.trace_out:
        return Tracer()
    return None


def _emit_profile(args: argparse.Namespace,
                  engine: "XOntoRankEngine | FederatedEngine",
                  tracer: Tracer | None) -> None:
    if tracer is None:
        return
    if args.profile:
        print(render_profile(engine.stats, tracer))
    if args.metrics_out:
        count = write_metrics_jsonl(engine.stats, args.metrics_out)
        print(f"metrics: {count} instruments -> {args.metrics_out}")
    if args.trace_out:
        count = write_chrome_trace(tracer, args.trace_out)
        print(f"trace: {count} spans -> {args.trace_out} "
              f"(open in chrome://tracing or ui.perfetto.dev)")


def _make_engine(args: argparse.Namespace, corpus, ontology,
                 tracer: Tracer | None,
                 ) -> XOntoRankEngine | FederatedEngine:
    """One engine (``--shards 1``, the default) or a federated facade
    over N shard engines. Both expose the same search/index surface and
    produce byte-identical rankings."""
    ontology = ontology if args.strategy != "xrank" else None
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        raise SystemExit(2)
    if args.shards > 1:
        return FederatedEngine(corpus, ontology, strategy=args.strategy,
                               config=_config_from(args),
                               shards=args.shards,
                               shard_workers=args.shard_workers,
                               tracer=tracer)
    return XOntoRankEngine(corpus, ontology, strategy=args.strategy,
                           config=_config_from(args), tracer=tracer)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def command_generate(args: argparse.Namespace) -> int:
    ontology = build_synthetic_snomed(scale=args.scale,
                                      seed=args.ontology_seed)
    terminology = TerminologyService([ontology])
    database = generate_cardiac_emr(n_patients=args.patients,
                                    seed=args.seed, ontology=ontology)
    corpus, report = build_cda_corpus(database, terminology)

    save_ontology(ontology, os.path.join(args.out, ONTOLOGY_DIR))
    corpus_dir = os.path.join(args.out, CORPUS_DIR)
    os.makedirs(corpus_dir, exist_ok=True)
    for document in corpus:
        path = os.path.join(corpus_dir, f"patient-{document.doc_id:04d}.xml")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(serialize(document, indent="  "))
    print(f"ontology: {ontology.stats()}")
    print(f"corpus: {report.documents} documents, "
          f"{report.average_elements:.0f} elements/doc, "
          f"{report.average_references:.0f} references/doc -> "
          f"{corpus_dir}")
    return 0


def _atomic_build(path: str, store_format: str):
    """The crash-safe build context for the chosen backend."""
    if store_format == "mmap":
        return atomic_mmap_build(path)
    return atomic_sqlite_build(path)


def command_build_ontology(args: argparse.Namespace) -> int:
    """``repro build-ontology``: persist the concept indexes
    (name/synonym, cross-reference, hierarchy closure) of an ontology
    into a store, so terminology resolution never loads the graph."""
    tracer = _tracer_from(args)
    stats = StatsRegistry()
    if tracer is not None:
        tracer.registry = stats
    with _atomic_build(args.store, args.store_format) as store:
        if args.data:
            ontology = load_ontology(os.path.join(args.data,
                                                  ONTOLOGY_DIR))
            indexes = build_ontology_indexes(ontology, store,
                                             tracer=tracer)
        else:
            # Streamed: the 10^5+-concept synthetic SNOMED flows
            # straight into the index builder, never materialized.
            builder = SyntheticSnomedBuilder(
                scale=args.scale, seed=args.ontology_seed,
                target_concepts=args.target_concepts)
            indexes = build_ontology_indexes(
                builder.stream(), store,
                system_code=SNOMED_SYSTEM_CODE, name=SNOMED_NAME,
                tracer=tracer)
        concepts = indexes.concept_count
        fingerprint = indexes.fingerprint
    print(f"built ontology indexes: {concepts} concepts -> "
          f"{args.store}")
    print(f"ontology fingerprint: {fingerprint}")
    print(f"audit with `python -m repro verify-index "
          f"--store {args.store}`")
    if tracer is not None and args.profile:
        print(render_profile(stats, tracer))
    return 0


def command_index(args: argparse.Namespace) -> int:
    ontology, corpus = _load_data_directory(args.data)
    tracer = _tracer_from(args)
    engine = _make_engine(args, corpus, ontology, tracer)
    ontology_cache = None
    if getattr(args, "ontology_cache", None):
        if isinstance(engine, FederatedEngine):
            print("note: --ontology-cache is ignored with --shards > 1",
                  file=sys.stderr)
        else:
            cache_store = SQLiteStore(args.ontology_cache)
            ontology_cache = engine.attach_ontology_cache(cache_store)
            if ontology_cache is None:  # xrank has nothing to cache
                cache_store.close()
    if args.append:
        return _append_to_stores(args, engine, tracer)
    # Crash safety: every store is written to a ".building" sibling and
    # atomically renamed into place only after its manifest's
    # completion marker has landed. With --shards N, each shard gets
    # its own store (and manifest) at a derived sibling path.
    if isinstance(engine, FederatedEngine):
        paths = [shard_store_path(args.store, shard, args.shards)
                 for shard in range(args.shards)]
        with contextlib.ExitStack() as stack:
            stores = [stack.enter_context(
                _atomic_build(path, args.store_format))
                      for path in paths]
            index = engine.build_index(radius=args.radius,
                                       stores=stores,
                                       workers=args.workers)
            workers = stores[0].get_metadata("build_workers")
            mode = stores[0].get_metadata("build_mode")
            chunks = stores[0].get_metadata("build_chunks")
            checksum = stores[0].get_metadata(CHECKSUM_KEY_PREFIX
                                              + args.strategy) or ""
        destination = (f"{paths[0]} .. {paths[-1]} "
                       f"({args.shards} shards)")
        audit_path = paths[0]
    else:
        with _atomic_build(args.store, args.store_format) as store:
            index = engine.build_index(radius=args.radius, store=store,
                                       workers=args.workers)
            workers = store.get_metadata("build_workers")
            mode = store.get_metadata("build_mode")
            chunks = store.get_metadata("build_chunks")
            checksum = store.get_metadata(CHECKSUM_KEY_PREFIX
                                          + args.strategy) or ""
        destination = args.store
        audit_path = args.store
    print(f"built {len(index)} XOnto-DILs "
          f"({index.total_postings()} postings, "
          f"{index.total_size_bytes() / 1024:.1f} KB) -> {destination}")
    print(f"build: workers={workers} mode={mode} chunks={chunks}")
    print(f"manifest: complete checksum={checksum[:12]} "
          f"(audit with `python -m repro verify-index "
          f"--store {audit_path}`)")
    print(f"dil-cache: {engine.cache_stats().render()}")
    if ontology_cache is not None:
        counters = engine.stats.snapshot()
        print(f"ontology-cache: "
              f"hits={counters.get(ONTOLOGY_CACHE_HITS, 0)} "
              f"misses={counters.get(ONTOLOGY_CACHE_MISSES, 0)} "
              f"invalidations="
              f"{counters.get(ONTOLOGY_CACHE_INVALIDATIONS, 0)} "
              f"epoch={ontology_cache.epoch} "
              f"-> {args.ontology_cache}")
        ontology_cache.close()
    _emit_profile(args, engine, tracer)
    return 0


def _append_to_stores(args: argparse.Namespace,
                      engine: "XOntoRankEngine | FederatedEngine",
                      tracer: Tracer | None) -> int:
    """``index --append``: one immutable segment per store holding the
    data directory's documents the store has not indexed yet."""
    from .core.stats import (APPEND_KEYWORDS_BUILT,
                             APPEND_KEYWORDS_SKIPPED, SEGMENTS_LIVE)
    from .storage.errors import IncompatibleIndexError
    from .storage.segments import load_catalog
    if isinstance(engine, FederatedEngine):
        paths = [shard_store_path(args.store, shard, args.shards)
                 for shard in range(args.shards)]
    else:
        paths = [args.store]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"error: --append needs an existing store; missing: "
              f"{', '.join(missing)} -- build one with `python -m repro "
              f"index --data {args.data} --store {args.store}`",
              file=sys.stderr)
        return 2
    immutable = [path for path in paths
                 if sniff_store_format(path) == "mmap"]
    if immutable:
        print(f"error: {', '.join(immutable)}: mmap stores are "
              f"immutable; rebuild with `python -m repro index` "
              f"(--store-format mmap), or keep an appendable index in "
              f"sqlite format", file=sys.stderr)
        return 2
    with contextlib.ExitStack() as stack:
        stores = [stack.enter_context(SQLiteStore(path,
                                                  tracer=engine.tracer))
                  for path in paths]
        held: set[int] = set()
        for store in stores:
            catalog = load_catalog(store)
            held |= (set(catalog.live) if catalog is not None
                     else set(store.document_ids()))
        new_docs = [document for document in engine.corpus
                    if document.doc_id not in held]
        if not new_docs:
            print(f"nothing to append: every document of {args.data} "
                  f"is already live in the store")
            return 0
        try:
            if isinstance(engine, FederatedEngine):
                engine.add_documents(new_docs, stores,
                                     radius=args.radius)
            else:
                engine.add_documents(new_docs, stores[0],
                                     radius=args.radius)
        except (StorageError, ValueError) as exc:
            print(f"error: cannot append to {args.store}: {exc}",
                  file=sys.stderr)
            return 2
    built = engine.stats.value(APPEND_KEYWORDS_BUILT)
    skipped = engine.stats.value(APPEND_KEYWORDS_SKIPPED)
    print(f"appended {len(new_docs)} document(s) as new segment(s) "
          f"-> {args.store}")
    print(f"append: segments_live={engine.stats.value(SEGMENTS_LIVE)} "
          f"keywords_built={built} keywords_skipped={skipped}")
    print(f"(compact with `python -m repro compact "
          f"--store {args.store}`)")
    _emit_profile(args, engine, tracer)
    return 0


def command_compact(args: argparse.Namespace) -> int:
    from .core.index.segments import compact_store
    if args.shards > 1:
        paths = [shard_store_path(args.store, shard, args.shards)
                 for shard in range(args.shards)]
    else:
        paths = [args.store]
    exit_code = 0
    for path in paths:
        if not os.path.exists(path):
            print(f"error: no index store at {path}", file=sys.stderr)
            exit_code = 2
            continue
        if sniff_store_format(path) == "mmap":
            print(f"error: cannot compact {path}: mmap stores are "
                  f"immutable (a rebuild is already fully compact)",
                  file=sys.stderr)
            exit_code = 2
            continue
        try:
            with SQLiteStore(path) as store:
                catalog = compact_store(store)
                lists = (len(list(store.keywords(
                    catalog.segments[0].namespace)))
                    if catalog is not None else 0)
        except StorageError as exc:
            print(f"error: cannot compact {path}: {exc}",
                  file=sys.stderr)
            exit_code = 2
            continue
        if catalog is None:
            print(f"{path}: no segment catalog; nothing to compact")
        else:
            record = catalog.segments[0]
            print(f"{path}: compacted into segment "
                  f"{record.segment_id} ({len(catalog.live)} live "
                  f"documents, {lists} posting lists)")
    return exit_code


def _load_store_or_degrade(engine: XOntoRankEngine, path: str,
                           args: argparse.Namespace,
                           build_hint: str | None = None) -> int:
    """Load one persisted index into one engine per the chosen policy.

    Returns an exit code: 0 on success (including degraded operation),
    2 on a fail-fast error. Fail-fast is chosen by --strict or
    --no-fallback; the default degrades -- a store that is missing a
    posting list falls back per keyword, a store that fails validation
    outright is discarded with a warning and the engine serves from
    the corpus. For a federated search this runs once per shard, so a
    damaged shard store degrades only that shard.
    """
    fail_fast = args.strict or args.no_fallback
    if not os.path.exists(path):
        hint = build_hint or (f"python -m repro index "
                              f"--data {args.data} --store {args.store}")
        print(f"error: no index store at {path} -- build one "
              f"with `{hint}`", file=sys.stderr)
        return 2
    store = None
    try:
        store = open_read_store(path, tracer=engine.tracer)
        reader = store
        # Retries target the SQLite backend's transient faults (locked
        # or busy databases). An mmap store has none -- and wrapping it
        # would hide the zero-copy posting-block fast path.
        if args.retries > 0 and not isinstance(store, MmapStore):
            reader = RetryingStore(store, max_attempts=args.retries + 1,
                                   stats=engine.stats,
                                   tracer=engine.tracer)
        loaded = engine.load_index(reader, fallback=not fail_fast)
        print(f"loaded {loaded} posting lists from {path}")
        return 0
    except StorageError as exc:
        from .core.stats import FALLBACK_STORE_DISCARDS
        if fail_fast:
            print(f"error: cannot use index store {path}: {exc}",
                  file=sys.stderr)
            return 2
        engine.stats.increment(FALLBACK_STORE_DISCARDS)
        print(f"warning: ignoring index store {path} ({exc}); "
              f"building posting lists from the corpus",
              file=sys.stderr)
        return 0
    finally:
        if store is not None:
            store.close()


def _load_stores(engine: "XOntoRankEngine | FederatedEngine",
                 args: argparse.Namespace) -> int:
    """Load --store into the engine; per shard when federated."""
    if isinstance(engine, FederatedEngine):
        hint = (f"python -m repro index --data {args.data} "
                f"--store {args.store} --shards {args.shards}")
        for shard, shard_engine in enumerate(engine.shard_engines):
            path = shard_store_path(args.store, shard, args.shards)
            code = _load_store_or_degrade(shard_engine, path, args,
                                          build_hint=hint)
            if code != 0:
                return code
        return 0
    return _load_store_or_degrade(engine, args.store, args)


def command_search(args: argparse.Namespace) -> int:
    ontology, corpus = _load_data_directory(args.data)
    tracer = _tracer_from(args)
    engine = _make_engine(args, corpus, ontology, tracer)
    if args.store:
        code = _load_stores(engine, args)
        if code != 0:
            return code
    if getattr(args, "narrative", False):
        try:
            engine.enable_narrative()
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    outcome = engine.search_outcome(args.query, k=args.k)
    results = outcome.results
    effective_query = args.query
    if outcome.narrative is not None:
        mapping = outcome.narrative
        effective_query = mapping.query
        print(f"narrative query mapped to: {mapping.query}")
        for m in mapping.mappings:
            target = (f"-> {m.concept_code} ({m.term!r})"
                      if m.concept_code else "kept as plain keywords")
            print(f"  [{m.method}] {m.phrase!r} {target}")
    exit_code = 0
    if not results:
        print("no results")
        exit_code = 1
    for rank, result in enumerate(results, start=1):
        print(f"#{rank}  score={result.score:.3f}  "
              f"{result.dewey.encode()}")
        if args.explain:
            explanation = engine.explain(result, effective_query)
            for item in explanation.evidence:
                print(f"    {item.describe()}")
        fragment = engine.fragment_text(result)
        for line in fragment.splitlines()[:args.fragment_lines]:
            print(f"    {line}")
    print(f"dil-cache: {engine.cache_stats().render()}")
    if args.verbose:
        rendered = engine.stats.render()
        print(f"stats: {rendered}" if rendered else "stats: (none)")
        timers = engine.stats.render_timers()
        if timers:
            print("timers:")
            for line in timers.splitlines():
                print(f"  {line}")
    _emit_profile(args, engine, tracer)
    return exit_code


def _serving_stores(args: argparse.Namespace,
                    engine: "XOntoRankEngine | FederatedEngine") -> int:
    """Open --store read-only and put the engine in read-through mode
    (cache misses served from the store, strict per shard so the
    server's circuit breakers see real faults); optionally pre-warm.
    The stores stay open for the process lifetime."""
    if isinstance(engine, FederatedEngine):
        paths = [shard_store_path(args.store, shard, args.shards)
                 for shard in range(args.shards)]
    else:
        paths = [args.store]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"error: no index store at {', '.join(missing)} -- "
              f"build one with `python -m repro index --data {args.data} "
              f"--store {args.store}"
              + (f" --shards {args.shards}`" if args.shards > 1
                 else "`"), file=sys.stderr)
        return 2
    readers = []
    try:
        for path in paths:
            store = open_read_store(path)
            reader = store
            if args.retries > 0 and not isinstance(store, MmapStore):
                reader = RetryingStore(store,
                                       max_attempts=args.retries + 1,
                                       stats=engine.stats)
            readers.append(reader)
        if isinstance(engine, FederatedEngine):
            engine.attach_read_stores(readers)
        else:
            engine.attach_read_store(readers[0])
        if not args.no_warm:
            if isinstance(engine, FederatedEngine):
                loaded = engine.load_index(readers)
            else:
                loaded = engine.load_index(readers[0])
            print(f"warmed {loaded} posting lists from {args.store}")
    except StorageError as exc:
        print(f"error: cannot serve index store {args.store}: {exc}",
              file=sys.stderr)
        return 2
    return 0


def command_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the always-on HTTP search service
    (see docs/SERVING.md)."""
    import asyncio

    from .server import SearchService, ServerApp, ServerConfig
    ontology, corpus = _load_data_directory(args.data)
    engine = _make_engine(args, corpus, ontology, None)
    if args.store:
        code = _serving_stores(args, engine)
        if code != 0:
            return code
    # Additional corpora: each --corpus NAME=PATH loads its own data
    # directory into its own engine (same strategy and tuning flags)
    # and registers under NAME next to the primary --data corpus.
    extra_corpora: list[tuple[str, str]] = []
    seen_names = {args.corpus_name}
    for spec in args.corpus or ():
        name, separator, path = spec.partition("=")
        if not separator or not name or not path:
            print(f"error: --corpus expects NAME=PATH, got {spec!r}",
                  file=sys.stderr)
            return 2
        if name in seen_names:
            print(f"error: duplicate corpus name {name!r}",
                  file=sys.stderr)
            return 2
        seen_names.add(name)
        extra_corpora.append((name, path))
    service = SearchService(stats=engine.stats,
                            breaker_threshold=args.breaker_threshold,
                            breaker_cooldown=args.breaker_cooldown)
    service.add_corpus(args.corpus_name, engine)
    corpus_sizes = {args.corpus_name: len(corpus)}
    for name, path in extra_corpora:
        extra_ontology, extra_corpus = _load_data_directory(path)
        extra_engine = _make_engine(args, extra_corpus, extra_ontology,
                                    None)
        service.add_corpus(name, extra_engine)
        corpus_sizes[name] = len(extra_corpus)
    app = ServerApp(service, ServerConfig(
        host=args.host, port=args.port,
        max_concurrency=args.concurrency, max_queue=args.queue,
        default_timeout_ms=args.timeout_ms,
        drain_grace=args.drain_grace))

    async def _run() -> None:
        await app.start()
        described = ", ".join(f"{name!r} ({size} documents)"
                              for name, size in corpus_sizes.items())
        print(f"serving {len(corpus_sizes)} corpus"
              f"{'es' if len(corpus_sizes) != 1 else ''}: {described} "
              f"(strategy={args.strategy}, shards={args.shards}) on "
              f"http://{args.host}:{app.bound_port}", flush=True)
        app.mark_ready()
        print("ready (GET /search /healthz /readyz /metrics; "
              "SIGTERM drains)", flush=True)
        await app.serve_forever()
        print("drained cleanly; exiting", flush=True)

    asyncio.run(_run())
    return 0


def command_verify_index(args: argparse.Namespace) -> int:
    if not os.path.exists(args.store):
        print(f"error: no index store at {args.store}", file=sys.stderr)
        return 2
    block_lines: list[str] = []
    block_problems: list[str] = []
    try:
        with open_read_store(args.store) as store:
            if isinstance(store, MmapStore):
                from .storage.mmap_store import CONTAINER_VERSION
                from .storage.codec import FORMAT_VERSION
                format_line = (f"format: mmap store (container "
                               f"v{CONTAINER_VERSION}, compact posting "
                               f"blocks v{FORMAT_VERSION})")
                per_strategy, raw, block_problems = store.block_report()
                for strategy in sorted(per_strategy):
                    block_lines.append(
                        f"blocks[{strategy}]: "
                        f"{per_strategy[strategy]} compact posting "
                        f"blocks crc32-verified")
                if raw:
                    block_lines.append(
                        f"blocks: {raw} raw (uncompacted-form) posting "
                        f"records parsed")
            else:
                version = store.get_metadata(MANIFEST_VERSION_KEY)
                format_line = (f"format: sqlite row store (manifest "
                               f"v{version})" if version else
                               "format: sqlite row store (no manifest)")
            report = verify_manifest(store)
    except StorageError as exc:
        print(f"verify-index: FAIL {args.store}: {exc}")
        return 1
    print(f"verify-index: {args.store}")
    print(f"  {format_line}")
    for line in block_lines:
        print(f"  {line}")
    for problem in block_problems:
        print(f"  blocks: FAIL - {problem}")
    for line in report.describe():
        print(f"  {line}")
    return 0 if report.ok and not block_problems else 1


def command_evaluate(args: argparse.Namespace) -> int:
    ontology, corpus = _load_data_directory(args.data)
    engines = build_engines(corpus, ontology)
    oracle = RelevanceOracle(ontology)
    names = list(engines)
    header = f"{'query':<52}" + "".join(f"{name:>15}" for name in names)
    print(header)
    print("-" * len(header))
    totals = dict.fromkeys(names, 0)
    queries = table1_queries()
    for workload_query in queries:
        row = run_survey(engines, oracle, workload_query.text,
                         workload_query.query_id, k=args.k,
                         mark_limit=args.k)
        print(f"{workload_query.text:<52}"
              + "".join(f"{row.counts[name]:>15}" for name in names))
        for name in names:
            totals[name] += row.counts[name]
    print("-" * len(header))
    print(f"{'AVERAGE':<52}" + "".join(
        f"{totals[name] / len(queries):>15.2f}" for name in names))
    return 0


def command_stats(args: argparse.Namespace) -> int:
    ontology, corpus = _load_data_directory(args.data)
    print("ontology:")
    for key, value in ontology.stats().items():
        print(f"  {key}: {value}")
    print("corpus:")
    print(f"  documents: {len(corpus)}")
    print(f"  elements: {corpus.total_nodes()}")
    code_nodes = sum(len(document.code_nodes()) for document in corpus)
    print(f"  ontological references: {code_nodes}")
    print(f"  referenced systems: {sorted(corpus.referenced_systems())}")
    from .core.index.vocabulary import (corpus_vocabulary,
                                        experiment_vocabulary)
    words = corpus_vocabulary(corpus)
    print(f"  vocabulary (document words): {len(words)}")
    print(f"  vocabulary (experiment rule, radius 2): "
          f"{len(experiment_vocabulary(corpus, ontology))}")
    return 0


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def _positive_int(text: str) -> int:
    """Argparse type for ``--top-k``: the query layer requires k >= 1,
    so reject 0/negatives here with a usage error, not a traceback."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XOntoRank: ontology-aware search of XML EMRs")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="build a synthetic ontology + CDA corpus")
    generate.add_argument("--out", required=True,
                          help="output data directory")
    generate.add_argument("--patients", type=int, default=40)
    generate.add_argument("--seed", type=int, default=7,
                          help="EMR generator seed")
    generate.add_argument("--ontology-seed", type=int, default=20090331)
    generate.add_argument("--scale", type=float, default=1.0,
                          help="ontology size multiplier")
    generate.set_defaults(handler=command_generate)

    build_ontology = subparsers.add_parser(
        "build-ontology",
        help="build and persist the ontology concept indexes "
             "(name/synonym, xref, hierarchy closure)")
    build_ontology.add_argument(
        "--store", required=True,
        help="destination store for the concept indexes")
    build_ontology.add_argument(
        "--store-format", choices=("sqlite", "mmap"), default="sqlite",
        help="storage backend (default: sqlite; mmap writes the "
             "immutable XMS1 image)")
    build_ontology.add_argument(
        "--data", default=None,
        help="data directory whose ontology/ to index; omit to "
             "stream a generated synthetic SNOMED instead")
    build_ontology.add_argument("--scale", type=float, default=1.0,
                                help="synthetic ontology size "
                                     "multiplier (without --data)")
    build_ontology.add_argument("--ontology-seed", type=int,
                                default=20090331)
    build_ontology.add_argument(
        "--target-concepts", type=int, default=None,
        help="generate approximately this many concepts "
             "(overrides --scale)")
    _add_profiling_flags(build_ontology)
    build_ontology.set_defaults(handler=command_build_ontology)

    index = subparsers.add_parser(
        "index", aliases=["build-index"],
        help="pre-processing phase: build and persist XOnto-DILs")
    index.add_argument("--data", required=True)
    index.add_argument("--store", required=True,
                       help="index store path")
    index.add_argument("--store-format", choices=("sqlite", "mmap"),
                       default="sqlite",
                       help="persistence backend: sqlite (appendable, "
                            "default) or mmap (compact read-only "
                            "container; O(1) open, shared page cache)")
    index.add_argument("--strategy", choices=ALL_STRATEGIES,
                       default=RELATIONSHIPS)
    index.add_argument("--radius", type=int, default=2,
                       help="ontology vocabulary radius (Section VII-B)")
    index.add_argument("--workers", type=int, default=1,
                       help="worker-pool size for the build "
                            "(1 = serial; result is identical)")
    index.add_argument("--ontology-cache", default=None, metavar="FILE",
                       help="read OntoScore expansions through a "
                            "persisted cache at FILE (SQLite), keyed "
                            "by ontology fingerprint + strategy + "
                            "parameters; created when absent")
    index.add_argument("--append", action="store_true",
                       help="index only the data directory's new "
                            "documents as one immutable segment of the "
                            "existing store (LSM-style; nothing is "
                            "rebuilt)")
    index.set_defaults(handler=command_index)

    compact = subparsers.add_parser(
        "compact",
        help="fold an incrementally grown store's segments into one")
    compact.add_argument("--store", required=True,
                         help="SQLite database path (logical path with "
                              "--shards)")
    compact.add_argument("--shards", type=int, default=1,
                         help="compact every shard store of a "
                              "federated index")
    compact.set_defaults(handler=command_compact)

    search = subparsers.add_parser("search",
                                   help="query phase: keyword search")
    search.add_argument("--data", required=True)
    search.add_argument("query")
    search.add_argument("--store", default="",
                        help="optional persisted index to load")
    search.add_argument("--strategy", choices=ALL_STRATEGIES,
                        default=RELATIONSHIPS)
    search.add_argument("-k", "--top-k", dest="k", type=_positive_int,
                        default=10,
                        help="number of results (positive; bounded "
                             "top-k evaluation)")
    search.add_argument("--narrative", action="store_true",
                        help="treat the query as free clinical "
                             "narrative: extract phrases, map them to "
                             "ontology concepts (exact/synonym/parent "
                             "fallback) and search the mapped keywords")
    search.add_argument("--explain", action="store_true",
                        help="print per-keyword evidence")
    search.add_argument("--fragment-lines", type=int, default=6)
    search.add_argument("--cache-size", type=int, default=None,
                        help="bound the DIL cache to N lists (LRU); "
                             "default keeps every list")
    search.add_argument("--retries", type=int, default=2,
                        help="retry budget for transient store faults "
                             "(0 disables retrying)")
    search.add_argument("--strict", action="store_true",
                        help="fail fast on any storage problem instead "
                             "of degrading to corpus-built lists")
    search.add_argument("--no-fallback", action="store_true",
                        help="disable the degraded path (rebuild-from-"
                             "corpus) when the store misbehaves")
    search.add_argument("--verbose", action="store_true",
                        help="print retry/fallback/integrity counters")
    search.set_defaults(handler=command_search)

    serve = subparsers.add_parser(
        "serve",
        help="always-on HTTP search service: warm engines, admission "
             "control, per-request deadlines, circuit-breaker "
             "degradation (docs/SERVING.md)")
    serve.add_argument("--data", required=True,
                       help="data directory (generate one with "
                            "`python -m repro generate`)")
    serve.add_argument("--store", default="",
                       help="persisted index to serve read-through "
                            "(recommended; logical path with --shards)")
    serve.add_argument("--strategy", choices=ALL_STRATEGIES,
                       default=RELATIONSHIPS)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="0 binds an ephemeral port (printed on "
                            "startup)")
    serve.add_argument("--corpus", action="append", default=None,
                       metavar="NAME=PATH",
                       help="register an additional data directory as "
                            "corpus NAME (repeatable)")
    serve.add_argument("--corpus-name", default="default",
                       help="name clients pass as ?corpus=")
    serve.add_argument("--concurrency", type=_positive_int, default=4,
                       help="worker threads evaluating queries "
                            "(= max concurrent searches)")
    serve.add_argument("--queue", type=int, default=16,
                       help="admitted-but-waiting bound; requests "
                            "beyond concurrency+queue are shed (429)")
    serve.add_argument("--timeout-ms", type=int, default=2000,
                       help="default per-request deadline "
                            "(0 = unbounded; clients override with "
                            "?timeout_ms=)")
    serve.add_argument("--drain-grace", type=float, default=10.0,
                       help="seconds SIGTERM waits for in-flight "
                            "requests before exiting")
    serve.add_argument("--breaker-threshold", type=_positive_int,
                       default=3,
                       help="consecutive shard failures that trip its "
                            "circuit breaker")
    serve.add_argument("--breaker-cooldown", type=float, default=2.0,
                       help="seconds a tripped breaker waits before "
                            "probing the shard again")
    serve.add_argument("--cache-size", type=int, default=None,
                       help="bound the DIL cache to N lists (LRU); "
                            "default keeps every list")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip pre-loading posting lists; serve "
                            "cold and fill the cache read-through")
    serve.add_argument("--retries", type=int, default=2,
                       help="retry budget for transient store faults "
                            "(deadline-aware; 0 disables retrying)")
    serve.add_argument("--shards", type=int, default=1,
                       help="serve a federated index over N shard "
                            "stores")
    serve.add_argument("--shard-workers", type=int, default=None,
                       help="thread-pool size for the per-request "
                            "shard fan-out (default: sequential)")
    _add_parameter_flags(serve)
    serve.set_defaults(handler=command_serve)

    verify_index = subparsers.add_parser(
        "verify-index",
        help="check a persisted index's integrity manifest")
    verify_index.add_argument("--store", required=True,
                              help="index store path to verify "
                                   "(backend auto-detected)")
    verify_index.set_defaults(handler=command_verify_index)

    evaluate = subparsers.add_parser(
        "evaluate", help="run the Table-I survey over the workload")
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--k", type=int, default=5)
    evaluate.set_defaults(handler=command_evaluate)

    stats = subparsers.add_parser(
        "stats", help="print ontology/corpus/vocabulary statistics")
    stats.add_argument("--data", required=True)
    stats.set_defaults(handler=command_stats)

    for subparser in (index, search):
        _add_parameter_flags(subparser)
        _add_profiling_flags(subparser)
        subparser.add_argument(
            "--shards", type=int, default=1,
            help="partition the corpus into N shards and federate "
                 "(1 = single engine; rankings are identical)")
        subparser.add_argument(
            "--shard-workers", type=int, default=None,
            help="thread-pool size for the shard fan-out "
                 "(default: sequential)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
