"""Ontology-driven query expansion (the alternative the paper rejects).

Section VIII: "Various query expansion strategies have been proposed
[...] For our case of keyword queries, query expansion is not
appropriate, since it leads to non-minimal results -- the same concept
appears multiple times in a result."

This baseline makes that argument testable. Each query keyword is
expanded with the terms of ontologically related concepts (synonyms,
neighbors up to a hop bound); every combination of original/expanded
keywords is executed against a plain XRANK engine and the result lists
are merged. The benchmark then measures what the paper predicts:
expansion recovers some ontology-only matches but floods the list with
redundant, non-minimal results compared with XOntoRank's single-pass
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..core.query.engine import XOntoRankEngine
from ..core.query.results import QueryResult, rank_results
from ..ir.tokenizer import Keyword, KeywordQuery
from ..ontology.api import TerminologyService
from ..ontology.model import Ontology


@dataclass(frozen=True)
class ExpansionReport:
    """What an expanded execution did (for the benchmark's analysis)."""

    variants_executed: int
    raw_results: int
    merged_results: int

    @property
    def redundancy(self) -> float:
        """How many raw hits collapse onto each merged result."""
        if self.merged_results == 0:
            return 0.0
        return self.raw_results / self.merged_results


class QueryExpander:
    """Expands keywords with terms of related concepts."""

    def __init__(self, ontology: Ontology,
                 terminology: TerminologyService | None = None,
                 max_expansions_per_keyword: int = 3,
                 hops: int = 1) -> None:
        if max_expansions_per_keyword < 0:
            raise ValueError("max_expansions_per_keyword must be >= 0")
        if hops < 1:
            raise ValueError("hops must be positive")
        self._ontology = ontology
        self._terminology = terminology or TerminologyService([ontology])
        self._limit = max_expansions_per_keyword
        self._hops = hops

    # ------------------------------------------------------------------
    def expansions(self, keyword: Keyword) -> list[Keyword]:
        """Alternative keywords for one query keyword (original first)."""
        alternatives: list[Keyword] = [keyword]
        seen = {keyword.text}
        for concept in self._terminology.lookup_term(
                keyword.text, self._ontology.system_code):
            for related in self._related_concepts(concept.code):
                term = self._ontology.concept(related).preferred_term
                candidate = Keyword.from_text(term)
                if candidate.text not in seen:
                    seen.add(candidate.text)
                    alternatives.append(candidate)
                if len(alternatives) > self._limit:
                    return alternatives[:self._limit + 1]
        return alternatives

    def _related_concepts(self, code: str) -> list[str]:
        frontier = {code}
        related: list[str] = []
        seen = {code}
        for _ in range(self._hops):
            next_frontier: set[str] = set()
            for current in sorted(frontier):
                for neighbor in self._ontology.neighbors(current):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        related.append(neighbor)
                        next_frontier.add(neighbor)
            frontier = next_frontier
        return related

    def expand_query(self, query: KeywordQuery) -> list[KeywordQuery]:
        """Every combination of per-keyword alternatives."""
        alternative_lists = [self.expansions(keyword)
                             for keyword in query]
        return [KeywordQuery(tuple(combination))
                for combination in product(*alternative_lists)]


class ExpandedXRankSearch:
    """XRANK executed over every expanded query variant, merged."""

    def __init__(self, engine: XOntoRankEngine,
                 expander: QueryExpander) -> None:
        if engine.strategy != "xrank":
            raise ValueError("query expansion baselines run over the "
                             "xrank strategy")
        self._engine = engine
        self._expander = expander
        self.last_report = ExpansionReport(0, 0, 0)

    def search(self, query: str | KeywordQuery,
               k: int | None = None) -> list[QueryResult]:
        parsed = (KeywordQuery.parse(query) if isinstance(query, str)
                  else query)
        variants = self._expander.expand_query(parsed)
        merged: dict = {}
        raw_count = 0
        for variant in variants:
            for result in self._engine.search(variant, k=None):
                raw_count += 1
                existing = merged.get(result.dewey)
                if existing is None or result.score > existing.score:
                    merged[result.dewey] = result
        results = rank_results(list(merged.values()), k)
        self.last_report = ExpansionReport(
            variants_executed=len(variants), raw_results=raw_count,
            merged_results=len(merged))
        return results
