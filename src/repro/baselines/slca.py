"""Smallest-LCA keyword search (Xu & Papakonstantinou, SIGMOD 2005).

One of the competing XML keyword-search semantics the paper surveys
(Section VIII): "Xu and Papakonstantinou define a result as a smallest
tree, that is, a subtree that does not contain any subtree that also
contains all keywords." Matching is *exact textual containment* -- no
scores, no ontology -- which is precisely what makes the approach blind
to the paper's motivating queries.

Results are ranked by subtree size (smaller = better), the usual SLCA
presentation order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.tokenizer import Keyword, KeywordQuery, contains_phrase, tokenize
from ..xmldoc.dewey import DeweyID, assign_dewey_ids
from ..xmldoc.model import Corpus, TextPolicy, XMLNode
from ..xmldoc.navigation import subtree_size


@dataclass(frozen=True)
class SLCAResult:
    """One smallest-LCA answer."""

    dewey: DeweyID
    size: int

    def fragment(self, corpus: Corpus) -> XMLNode:
        from ..xmldoc.navigation import extract_fragment
        return extract_fragment(corpus, self.dewey)


class SLCAEvaluator:
    """Exact-match smallest-LCA search over a corpus."""

    def __init__(self, corpus: Corpus,
                 text_policy: TextPolicy | None = None) -> None:
        self._corpus = corpus
        self._text_policy = text_policy
        # Per-document: node -> (dewey, tokens of its own description).
        self._documents: list[list[tuple[DeweyID, list[str]]]] = []
        for document in corpus:
            ids = assign_dewey_ids(document)
            entries = [(ids[node],
                        tokenize(node.textual_description(text_policy)))
                       for node in document.iter()]
            self._documents.append(entries)

    # ------------------------------------------------------------------
    def _matches(self, keyword: Keyword,
                 entries: list[tuple[DeweyID, list[str]]],
                 ) -> list[DeweyID]:
        if keyword.is_phrase:
            return [dewey for dewey, tokens in entries
                    if contains_phrase(tokens, keyword.tokens)]
        token = keyword.tokens[0]
        return [dewey for dewey, tokens in entries if token in tokens]

    def search(self, query: str | KeywordQuery,
               k: int | None = None) -> list[SLCAResult]:
        parsed = (KeywordQuery.parse(query) if isinstance(query, str)
                  else query)
        answers: list[SLCAResult] = []
        for entries in self._documents:
            match_lists = [self._matches(keyword, entries)
                           for keyword in parsed]
            if any(not matches for matches in match_lists):
                continue
            answers.extend(self._document_slcas(match_lists))
        answers.sort(key=lambda result: (result.size, result.dewey))
        return answers[:k] if k is not None else answers

    # ------------------------------------------------------------------
    def _document_slcas(self, match_lists: list[list[DeweyID]],
                        ) -> list[SLCAResult]:
        """SLCAs of one document: covering LCAs with no covering-LCA
        descendant."""
        # Candidates: for every match of the first (smallest) list, the
        # deepest ancestor-or-self covering every other list.
        smallest = min(match_lists, key=len)
        others = [sorted(matches) for matches in match_lists
                  if matches is not smallest]
        candidates: set[DeweyID] = set()
        for anchor in smallest:
            cover = anchor
            for matches in others:
                closest = self._closest_lca(cover, matches)
                if closest is None:
                    cover = None
                    break
                cover = closest
            if cover is not None:
                candidates.add(cover)
        # Keep only the most specific candidates.
        ordered = sorted(candidates)
        keep: list[DeweyID] = []
        for current, following in zip(ordered, ordered[1:]):
            if not current.is_ancestor_of(following):
                keep.append(current)
        if ordered:
            keep.append(ordered[-1])
        return [SLCAResult(dewey=dewey, size=self._size_of(dewey))
                for dewey in keep]

    def _closest_lca(self, anchor: DeweyID,
                     matches: list[DeweyID]) -> DeweyID | None:
        """Deepest LCA of ``anchor`` with any node of ``matches``."""
        best: DeweyID | None = None
        for match in matches:
            lca = anchor.common_ancestor(match)
            if lca is None:
                continue
            if best is None or lca.depth > best.depth:
                best = lca
        return best

    def _size_of(self, dewey: DeweyID) -> int:
        from ..xmldoc.dewey import node_at
        document = self._corpus.get(dewey.doc_id)
        return subtree_size(node_at(document, dewey))
