"""XSEarch-style interconnection search (Cohen et al., VLDB 2003).

The second competing semantics the paper surveys: XSEarch returns
*tuples* of nodes (one per keyword) that are pairwise **interconnected**
-- "the tree path between the two nodes contains no two distinct nodes
with the same label" -- the intuition being that repeated labels signal
a crossing between unrelated entities (two different patients, two
different visits).

The paper concludes XSEarch "would not be an appropriate framework to
base XOntoRank [on], since their interconnection relationship would not
work well in the particular case of CDA documents": CDA nests repeated
``component/section/entry`` chains everywhere, so genuinely related
nodes routinely fail the interconnection test. This implementation
exists to make that claim measurable (see the baselines benchmark).

Answers are ranked by the size of the connecting subtree (smaller =
better), a simplified stand-in for XSEarch's tf-idf ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..ir.tokenizer import Keyword, KeywordQuery, contains_phrase, tokenize
from ..xmldoc.dewey import DeweyID, assign_dewey_ids, node_at
from ..xmldoc.model import Corpus, TextPolicy, XMLNode


@dataclass(frozen=True)
class XSEarchResult:
    """One answer tuple: a node per keyword plus the connecting root."""

    nodes: tuple[DeweyID, ...]
    connector: DeweyID
    size: int


class XSEarchEvaluator:
    """Interconnection-semantics keyword search over a corpus."""

    #: Candidate matches kept per keyword and document; the all-pairs
    #: interconnection check is combinatorial, so XSEarch-style engines
    #: bound the candidate sets.
    MAX_CANDIDATES = 12

    def __init__(self, corpus: Corpus,
                 text_policy: TextPolicy | None = None) -> None:
        self._corpus = corpus
        self._text_policy = text_policy
        self._documents: list[tuple[int,
                                    list[tuple[DeweyID, list[str]]]]] = []
        for document in corpus:
            ids = assign_dewey_ids(document)
            entries = [(ids[node],
                        tokenize(node.textual_description(text_policy)))
                       for node in document.iter()]
            self._documents.append((document.doc_id, entries))

    # ------------------------------------------------------------------
    def search(self, query: str | KeywordQuery,
               k: int | None = None) -> list[XSEarchResult]:
        parsed = (KeywordQuery.parse(query) if isinstance(query, str)
                  else query)
        answers: list[XSEarchResult] = []
        for doc_id, entries in self._documents:
            match_lists = []
            for keyword in parsed:
                matches = self._matches(keyword, entries)
                match_lists.append(matches[:self.MAX_CANDIDATES])
            if any(not matches for matches in match_lists):
                continue
            document = self._corpus.get(doc_id)
            for combination in product(*match_lists):
                if self._all_pairs_interconnected(document, combination):
                    connector = self._connector(combination)
                    answers.append(XSEarchResult(
                        nodes=tuple(combination), connector=connector,
                        size=self._span_size(combination, connector)))
        answers.sort(key=lambda result: (result.size, result.nodes))
        return answers[:k] if k is not None else answers

    def _matches(self, keyword: Keyword,
                 entries: list[tuple[DeweyID, list[str]]],
                 ) -> list[DeweyID]:
        if keyword.is_phrase:
            return [dewey for dewey, tokens in entries
                    if contains_phrase(tokens, keyword.tokens)]
        token = keyword.tokens[0]
        return [dewey for dewey, tokens in entries if token in tokens]

    # ------------------------------------------------------------------
    # Interconnection test
    # ------------------------------------------------------------------
    def _all_pairs_interconnected(self, document,
                                  nodes: tuple[DeweyID, ...]) -> bool:
        for index, first in enumerate(nodes):
            for second in nodes[index + 1:]:
                if first == second:
                    continue
                if not self.interconnected(document, first, second):
                    return False
        return True

    def interconnected(self, document, first: DeweyID,
                       second: DeweyID) -> bool:
        """Cohen et al.'s test: the tree path between the nodes holds no
        two distinct nodes with the same tag (the endpoints' own shared
        tag is tolerated when one is an ancestor of the other)."""
        lca = first.common_ancestor(second)
        if lca is None:
            return False
        path_nodes = (self._path_up(document, first, lca)
                      + self._path_up(document, second, lca)[:-1])
        tags: dict[str, DeweyID] = {}
        for dewey, tag in path_nodes:
            seen = tags.get(tag)
            if seen is not None and seen != dewey:
                return False
            tags[tag] = dewey
        return True

    def _path_up(self, document, start: DeweyID,
                 stop: DeweyID) -> list[tuple[DeweyID, str]]:
        """(dewey, tag) pairs from ``start`` up to and including
        ``stop``."""
        path: list[tuple[DeweyID, str]] = []
        current = start
        while True:
            path.append((current, node_at(document, current).tag))
            if current == stop:
                return path
            current = current.parent()

    # ------------------------------------------------------------------
    @staticmethod
    def _connector(nodes: tuple[DeweyID, ...]) -> DeweyID:
        connector = nodes[0]
        for other in nodes[1:]:
            lca = connector.common_ancestor(other)
            if lca is None:  # pragma: no cover - same-document tuples
                return connector
            connector = lca
        return connector

    def _span_size(self, nodes: tuple[DeweyID, ...],
                   connector: DeweyID) -> int:
        return sum(connector.distance_to_descendant(node)
                   for node in nodes) + 1

    # ------------------------------------------------------------------
    def fragment(self, result: XSEarchResult) -> XMLNode:
        """Minimal connecting fragment of an answer tuple."""
        from ..xmldoc.navigation import prune_to_paths
        document = self._corpus.get(result.connector.doc_id)
        root = node_at(document, result.connector)
        targets = [node_at(document, dewey) for dewey in result.nodes]
        return prune_to_paths(root, targets)
