"""Competing approaches from the paper's Related Work (Section VIII).

Implemented so the paper's arguments against them are measurable:
smallest-LCA exact-match search (blind to ontology-only matches),
XSEarch interconnection semantics (breaks on CDA's repeated-tag
nesting), and ontology-driven query expansion (recovers semantic
matches at the cost of non-minimal, redundant result lists).
"""

from .query_expansion import (ExpandedXRankSearch, ExpansionReport,
                              QueryExpander)
from .slca import SLCAEvaluator, SLCAResult
from .xsearch import XSEarchEvaluator, XSEarchResult

__all__ = [
    "ExpandedXRankSearch", "ExpansionReport", "QueryExpander",
    "SLCAEvaluator", "SLCAResult", "XSEarchEvaluator", "XSEarchResult",
]
