"""Terminology lookup service (substitute for the NLM UMLS API).

The paper accesses SNOMED through the UMLS API, which "provides the
necessary methods to query the ontology and dictionary and obtain the
concept code and display name for a particular string", and is used as a
black box both when generating CDA documents and inside the Index
Creation Module. This module provides the same operations in-process:

* exact and normalized string → concept lookup (``lookup_term``);
* token-subset matching for annotating free text (``match_in_text``);
* code → concept resolution (``concept_for_code`` / ``resolve``);
* the ``onto(D, v)`` function of Section III, mapping a code node's
  ontological reference to the concept node it denotes, across a
  collection of registered ontological systems.

The service is a **facade over two representations per system**: the
persisted concept indexes of :mod:`repro.ontology.indexes` (registered
with :meth:`TerminologyService.register_indexes`; resolution never
touches the graph) and the in-memory :class:`Ontology` graph
(:meth:`TerminologyService.register`; also the fallback when a concept
payload is missing from the index layer). Code resolution runs under an
``ontology.resolve`` span and term lookup under ``ontology.lookup_term``,
each annotated with which layer answered.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from ..core.obs.tracer import NULL_TRACER
from ..ir.tokenizer import normalize_term, tokenize
from ..xmldoc.model import OntologicalReference
from .indexes import TOKEN_PREFIX, NAME_STRATEGY, OntologyIndexes
from .model import Concept, Ontology, OntologyError


class TerminologyService:
    """Dictionary-style access to one or more ontological systems.

    This plays the role of the "ontological systems collection" of
    Section III: CDA code nodes carry ``(system_code, concept_code)``
    pairs, and :meth:`resolve` implements ``onto(D, v)``, returning the
    concept node a code node references.
    """

    def __init__(self, ontologies: Iterable[Ontology] = (),
                 tracer=None) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._systems: dict[str, Ontology] = {}
        self._term_index: dict[str, dict[str, list[str]]] = {}
        self._indexes: dict[str, OntologyIndexes] = {}
        for ontology in ontologies:
            self.register(ontology)

    # ------------------------------------------------------------------
    def register(self, ontology: Ontology) -> None:
        """Add an ontological system and index its terms in memory."""
        if ontology.system_code in self._systems:
            raise OntologyError(
                f"system {ontology.system_code} already registered")
        self._systems[ontology.system_code] = ontology
        index: dict[str, list[str]] = defaultdict(list)
        for concept in ontology.concepts():
            for term in concept.terms:
                index[self._normalize(term)].append(concept.code)
        self._term_index[ontology.system_code] = dict(index)

    def register_indexes(self, indexes: OntologyIndexes) -> None:
        """Add a system backed by persisted concept indexes.

        The same system may also be graph-registered; the index layer
        then answers first and the graph only serves as fallback for
        payloads the index cannot produce.
        """
        if indexes.system_code in self._indexes:
            raise OntologyError(
                f"system {indexes.system_code} already index-backed")
        self._indexes[indexes.system_code] = indexes

    # The one true normalization, shared with the persisted NameIndex
    # keys (see ``repro.ir.tokenizer.normalize_term``).
    _normalize = staticmethod(normalize_term)

    # ------------------------------------------------------------------
    # System access
    # ------------------------------------------------------------------
    def systems(self) -> list[str]:
        codes = list(self._systems)
        codes.extend(code for code in self._indexes
                     if code not in self._systems)
        return codes

    def ontology(self, system_code: str) -> Ontology:
        try:
            return self._systems[system_code]
        except KeyError:
            raise OntologyError(
                f"unknown ontological system {system_code}") from None

    def indexes(self, system_code: str) -> OntologyIndexes | None:
        """The persisted index layer of a system, if registered."""
        return self._indexes.get(system_code)

    def __contains__(self, system_code: str) -> bool:
        return system_code in self._systems or system_code in self._indexes

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def _concept_via_layers(self, system_code: str,
                            concept_code: str) -> Concept | None:
        """Index layer first, graph fallback; ``None`` when neither
        representation knows the code."""
        indexes = self._indexes.get(system_code)
        if indexes is not None:
            concept = indexes.concept(concept_code)
            if concept is not None:
                return concept
        ontology = self._systems.get(system_code)
        if ontology is not None and concept_code in ontology:
            return ontology.concept(concept_code)
        return None

    def concept_for_code(self, system_code: str, concept_code: str,
                         ) -> Concept:
        """Resolve a concept code within a system."""
        if (system_code not in self._systems
                and system_code not in self._indexes):
            raise OntologyError(
                f"unknown ontological system {system_code}")
        concept = self._concept_via_layers(system_code, concept_code)
        if concept is None:
            raise OntologyError(
                f"unknown concept {concept_code} in {system_code}")
        return concept

    def resolve(self, reference: OntologicalReference) -> Concept | None:
        """The paper's ``onto(D, v)``: code node reference → concept.

        Returns ``None`` when the referenced system is not registered or
        the code is unknown (real CDA corpora reference systems, such as
        LOINC section codes, that are not part of the search ontology).
        """
        with self.tracer.span("ontology.resolve",
                              system=reference.system_code,
                              code=reference.concept_code) as span:
            concept = self._concept_via_layers(reference.system_code,
                                               reference.concept_code)
            span.annotate(found=concept is not None)
            return concept

    def lookup_term(self, term: str,
                    system_code: str | None = None) -> list[Concept]:
        """Concepts whose terms match ``term`` after normalization.

        Ambiguous terms (one synonym shared by several concepts) return
        every match; index-backed systems order preferred-term matches
        before synonym matches.
        """
        normalized = self._normalize(term)
        if not normalized:
            return []
        with self.tracer.span("ontology.lookup_term",
                              term=normalized) as span:
            results: list[Concept] = []
            via_index = 0
            for code in self.systems():
                if system_code is not None and code != system_code:
                    continue
                indexes = self._indexes.get(code)
                if indexes is not None:
                    for concept_code, _weight in indexes.names.lookup(
                            normalized):
                        concept = self._concept_via_layers(code,
                                                           concept_code)
                        if concept is not None:
                            results.append(concept)
                            via_index += 1
                    continue
                ontology = self._systems[code]
                for concept_code in self._term_index[code].get(
                        normalized, ()):
                    results.append(ontology.concept(concept_code))
            span.annotate(hits=len(results), via_index=via_index)
        return results

    def match_in_text(self, text: str, system_code: str | None = None,
                      max_phrase_words: int = 4,
                      ) -> list[tuple[str, Concept]]:
        """Find concept terms occurring as phrases inside free text.

        Scans every window of up to ``max_phrase_words`` tokens and
        reports ``(matched phrase, concept)`` pairs, longest-match-first,
        without overlaps. This is how the CDA generator "inserted
        ontological references for every XML node whose value matched one
        of the concepts in SNOMED" (Section VII).
        """
        tokens = tokenize(text)
        matches: list[tuple[str, Concept]] = []
        position = 0
        while position < len(tokens):
            matched = False
            for width in range(min(max_phrase_words, len(tokens) - position),
                               0, -1):
                phrase = " ".join(tokens[position:position + width])
                concepts = self.lookup_term(phrase, system_code)
                if concepts:
                    matches.append((phrase, concepts[0]))
                    position += width
                    matched = True
                    break
            if not matched:
                position += 1
        return matches

    # ------------------------------------------------------------------
    def vocabulary(self, system_code: str | None = None) -> set[str]:
        """All distinct word tokens across concept terms.

        Section V-B defines the indexing Vocabulary as the union of words
        in the ontological systems and in the documents; this provides
        the ontology half. Graph-registered systems tokenize their
        description texts; index-only systems read the token keys of
        their persisted :class:`~repro.ontology.indexes.NameIndex`.
        """
        words: set[str] = set()
        for code in self.systems():
            if system_code is not None and code != system_code:
                continue
            ontology = self._systems.get(code)
            if ontology is not None:
                for concept in ontology.concepts():
                    words.update(tokenize(concept.description_text()))
                continue
            indexes = self._indexes[code]
            for key in indexes.store.keywords(NAME_STRATEGY):
                if key.startswith(TOKEN_PREFIX):
                    words.add(key[len(TOKEN_PREFIX):])
        return words
