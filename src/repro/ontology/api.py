"""Terminology lookup service (substitute for the NLM UMLS API).

The paper accesses SNOMED through the UMLS API, which "provides the
necessary methods to query the ontology and dictionary and obtain the
concept code and display name for a particular string", and is used as a
black box both when generating CDA documents and inside the Index
Creation Module. This module provides the same operations in-process:

* exact and normalized string → concept lookup (``lookup_term``);
* token-subset matching for annotating free text (``match_in_text``);
* code → concept resolution (``concept_for_code`` / ``resolve``);
* the ``onto(D, v)`` function of Section III, mapping a code node's
  ontological reference to the concept node it denotes, across a
  collection of registered ontological systems.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from ..ir.tokenizer import tokenize
from ..xmldoc.model import OntologicalReference
from .model import Concept, Ontology, OntologyError


class TerminologyService:
    """Dictionary-style access to one or more ontological systems.

    This plays the role of the "ontological systems collection" of
    Section III: CDA code nodes carry ``(system_code, concept_code)``
    pairs, and :meth:`resolve` implements ``onto(D, v)``, returning the
    concept node a code node references.
    """

    def __init__(self, ontologies: Iterable[Ontology] = ()) -> None:
        self._systems: dict[str, Ontology] = {}
        self._term_index: dict[str, dict[str, list[str]]] = {}
        for ontology in ontologies:
            self.register(ontology)

    # ------------------------------------------------------------------
    def register(self, ontology: Ontology) -> None:
        """Add an ontological system and index its terms."""
        if ontology.system_code in self._systems:
            raise OntologyError(
                f"system {ontology.system_code} already registered")
        self._systems[ontology.system_code] = ontology
        index: dict[str, list[str]] = defaultdict(list)
        for concept in ontology.concepts():
            for term in concept.terms:
                index[self._normalize(term)].append(concept.code)
        self._term_index[ontology.system_code] = dict(index)

    @staticmethod
    def _normalize(term: str) -> str:
        return " ".join(tokenize(term))

    # ------------------------------------------------------------------
    # System access
    # ------------------------------------------------------------------
    def systems(self) -> list[str]:
        return list(self._systems)

    def ontology(self, system_code: str) -> Ontology:
        try:
            return self._systems[system_code]
        except KeyError:
            raise OntologyError(
                f"unknown ontological system {system_code}") from None

    def __contains__(self, system_code: str) -> bool:
        return system_code in self._systems

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def concept_for_code(self, system_code: str, concept_code: str,
                         ) -> Concept:
        """Resolve a concept code within a system."""
        return self.ontology(system_code).concept(concept_code)

    def resolve(self, reference: OntologicalReference) -> Concept | None:
        """The paper's ``onto(D, v)``: code node reference → concept.

        Returns ``None`` when the referenced system is not registered or
        the code is unknown (real CDA corpora reference systems, such as
        LOINC section codes, that are not part of the search ontology).
        """
        ontology = self._systems.get(reference.system_code)
        if ontology is None:
            return None
        if reference.concept_code not in ontology:
            return None
        return ontology.concept(reference.concept_code)

    def lookup_term(self, term: str,
                    system_code: str | None = None) -> list[Concept]:
        """Concepts whose terms match ``term`` after normalization."""
        normalized = self._normalize(term)
        if not normalized:
            return []
        results: list[Concept] = []
        for code, index in self._term_index.items():
            if system_code is not None and code != system_code:
                continue
            ontology = self._systems[code]
            for concept_code in index.get(normalized, ()):
                results.append(ontology.concept(concept_code))
        return results

    def match_in_text(self, text: str, system_code: str | None = None,
                      max_phrase_words: int = 4,
                      ) -> list[tuple[str, Concept]]:
        """Find concept terms occurring as phrases inside free text.

        Scans every window of up to ``max_phrase_words`` tokens and
        reports ``(matched phrase, concept)`` pairs, longest-match-first,
        without overlaps. This is how the CDA generator "inserted
        ontological references for every XML node whose value matched one
        of the concepts in SNOMED" (Section VII).
        """
        tokens = tokenize(text)
        matches: list[tuple[str, Concept]] = []
        position = 0
        while position < len(tokens):
            matched = False
            for width in range(min(max_phrase_words, len(tokens) - position),
                               0, -1):
                phrase = " ".join(tokens[position:position + width])
                concepts = self.lookup_term(phrase, system_code)
                if concepts:
                    matches.append((phrase, concepts[0]))
                    position += width
                    matched = True
                    break
            if not matched:
                position += 1
        return matches

    # ------------------------------------------------------------------
    def vocabulary(self, system_code: str | None = None) -> set[str]:
        """All distinct word tokens across concept terms.

        Section V-B defines the indexing Vocabulary as the union of words
        in the ontological systems and in the documents; this provides
        the ontology half.
        """
        words: set[str] = set()
        for code, ontology in self._systems.items():
            if system_code is not None and code != system_code:
                continue
            for concept in ontology.concepts():
                words.update(tokenize(concept.description_text()))
        return words
