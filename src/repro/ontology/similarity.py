"""Classic concept-to-concept similarity measures (paper Section VIII).

The related-work discussion contrasts OntoScore with the established
semantic-similarity literature: edge-counting measures on the is-a
graph (Rada et al. [39]), and information-theoretic measures (Resnik
[41], Lin [40]). The paper observes that instance-based IC "cannot be
used" for medical ontologies, which "only describe concepts and not
instances" -- so the IC measures here use *intrinsic* information
content derived from the taxonomy itself (Seco-style: concepts with
many descendants carry little information).

These measures serve as baselines and analysis tools; XOntoRank's
OntoScore differs from all of them by (a) using non-taxonomic
relationships and (b) being keyword-relative rather than
concept-pair-relative.
"""

from __future__ import annotations

import math
from collections import deque

from .model import Ontology, OntologyError


class SimilarityMeasures:
    """Precomputed taxonomic statistics plus the measure suite.

    All measures are defined over the is-a DAG only and return values
    in [0, 1] (1 = identical concepts), except :meth:`path_distance`,
    which is the raw Rada edge count (0 = identical).
    """

    def __init__(self, ontology: Ontology) -> None:
        self._ontology = ontology
        self._depth: dict[str, int] = {}
        self._descendant_count: dict[str, int] = {}
        self._max_depth = 0
        self._total = max(1, len(ontology))
        self._compute_depths()

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _compute_depths(self) -> None:
        """Depth = shortest is-a distance from any root."""
        ontology = self._ontology
        queue = deque((root, 0) for root in ontology.roots())
        while queue:
            code, depth = queue.popleft()
            if code in self._depth and self._depth[code] <= depth:
                continue
            self._depth[code] = depth
            for child in ontology.children(code):
                queue.append((child, depth + 1))
        self._max_depth = max(self._depth.values(), default=0)

    def depth(self, code: str) -> int:
        self._require(code)
        return self._depth.get(code, 0)

    def _descendants(self, code: str) -> int:
        cached = self._descendant_count.get(code)
        if cached is None:
            cached = len(self._ontology.descendants(code))
            self._descendant_count[code] = cached
        return cached

    def _require(self, code: str) -> None:
        if code not in self._ontology:
            raise OntologyError(f"unknown concept {code}")

    # ------------------------------------------------------------------
    # Edge-counting measures
    # ------------------------------------------------------------------
    def path_distance(self, first: str, second: str) -> int | None:
        """Rada et al.: shortest path in the undirected is-a graph.

        ``None`` when the concepts share no taxonomic connection.
        """
        self._require(first)
        self._require(second)
        if first == second:
            return 0
        ontology = self._ontology
        queue = deque([(first, 0)])
        seen = {first}
        while queue:
            code, distance = queue.popleft()
            for neighbor in (*ontology.parents(code),
                             *ontology.children(code)):
                if neighbor == second:
                    return distance + 1
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append((neighbor, distance + 1))
        return None

    def rada(self, first: str, second: str) -> float:
        """Path distance inverted into a (0, 1] similarity."""
        distance = self.path_distance(first, second)
        if distance is None:
            return 0.0
        return 1.0 / (1.0 + distance)

    def leacock_chodorow(self, first: str, second: str) -> float:
        """-log(len / 2D), max-normalized into [0, 1]."""
        distance = self.path_distance(first, second)
        if distance is None or self._max_depth == 0:
            return 0.0
        scale = 2.0 * (self._max_depth + 1)
        raw = -math.log((distance + 1) / scale)
        maximum = -math.log(1.0 / scale)
        return max(0.0, raw / maximum)

    # ------------------------------------------------------------------
    # Subsumer-based measures
    # ------------------------------------------------------------------
    def common_subsumers(self, first: str, second: str) -> set[str]:
        """Shared ancestors-or-self of the two concepts."""
        self._require(first)
        self._require(second)
        left = {first} | self._ontology.ancestors(first)
        right = {second} | self._ontology.ancestors(second)
        return left & right

    def lowest_common_subsumer(self, first: str,
                               second: str) -> str | None:
        """Deepest shared subsumer (ties broken by concept code)."""
        shared = self.common_subsumers(first, second)
        if not shared:
            return None
        return max(sorted(shared), key=lambda code: self._depth.get(code,
                                                                    0))

    def wu_palmer(self, first: str, second: str) -> float:
        """2·depth(lcs) / (depth(a) + depth(b))."""
        subsumer = self.lowest_common_subsumer(first, second)
        if subsumer is None:
            return 0.0
        if first == second:
            return 1.0
        denominator = self.depth(first) + self.depth(second)
        if denominator == 0:
            return 1.0 if first == second else 0.0
        return 2.0 * self._depth.get(subsumer, 0) / denominator

    # ------------------------------------------------------------------
    # Intrinsic information content measures
    # ------------------------------------------------------------------
    def information_content(self, code: str) -> float:
        """Seco-style intrinsic IC: 1 - log(1+desc)/log(N).

        Leaves carry IC 1; a root subsuming everything carries IC ~0.
        """
        self._require(code)
        if self._total <= 1:
            return 1.0
        return 1.0 - (math.log(1 + self._descendants(code))
                      / math.log(self._total))

    def _mica_ic(self, first: str, second: str) -> float:
        """IC of the maximally informative common ancestor."""
        shared = self.common_subsumers(first, second)
        if not shared:
            return 0.0
        return max(self.information_content(code)
                   for code in sorted(shared))

    def resnik(self, first: str, second: str) -> float:
        """IC of the MICA (already in [0, 1] under intrinsic IC)."""
        return self._mica_ic(first, second)

    def lin(self, first: str, second: str) -> float:
        """2·IC(mica) / (IC(a) + IC(b))."""
        denominator = (self.information_content(first)
                       + self.information_content(second))
        if denominator == 0.0:
            return 1.0 if first == second else 0.0
        return 2.0 * self._mica_ic(first, second) / denominator

    def jiang_conrath(self, first: str, second: str) -> float:
        """JC distance folded into a (0, 1] similarity: 1/(1+d)."""
        distance = (self.information_content(first)
                    + self.information_content(second)
                    - 2.0 * self._mica_ic(first, second))
        return 1.0 / (1.0 + max(0.0, distance))

    # ------------------------------------------------------------------
    ALL_MEASURES = ("rada", "leacock_chodorow", "wu_palmer", "resnik",
                    "lin", "jiang_conrath")

    def all_similarities(self, first: str, second: str,
                         ) -> dict[str, float]:
        """Every measure for one concept pair (analysis convenience)."""
        return {name: getattr(self, name)(first, second)
                for name in self.ALL_MEASURES}
