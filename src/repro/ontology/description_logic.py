"""Description-logic view of the ontology (paper Section IV-C).

SNOMED belongs to the EL family of description logics [23]: concepts are
built from atomic names, the top concept, intersections ``C ⊓ D`` and
existential role restrictions ``∃r.C``; axioms are concept inclusions
``C ⊑ D``. The paper exploits this to "reduce a graph with different
kinds of relationships into one that has only subclass or is-a
relationships":

* every attribute relationship triple ``(A, r, B)`` is read as the axiom
  ``A ⊑ ∃r.B``;
* each distinct restriction ``∃r.B`` becomes a first-class node with the
  syntactic name ``Exists <r> <B>`` (so IR scores can be computed for
  it);
* a subclass edge links ``A`` to ``∃r.B``; a *dotted link* relates
  ``∃r.B`` and ``B`` (Figure 6), and crossing it decays relevance by the
  parameter ``t`` (Eq. 9).

This module provides both a tiny EL expression language (used by tests,
the ontology explorer example and the axiom import/export) and
:class:`DLView`, the materialized transformed graph on which the
Relationships strategy of Section IV-C can be run literally. The
implicit algorithm of Section VI-C (:mod:`repro.core.ontoscore`) is
verified against this materialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from .model import Ontology, OntologyError


# ----------------------------------------------------------------------
# EL concept expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AtomicConcept:
    """An atomic concept name ``A``."""

    code: str

    def __str__(self) -> str:
        return self.code


@dataclass(frozen=True)
class TopConcept:
    """The top concept ``⊤``."""

    def __str__(self) -> str:
        return "TOP"


@dataclass(frozen=True)
class ExistentialRestriction:
    """An existential role restriction ``∃r.C``.

    "A concept where every instance of the concept is related by role r
    to an instance of a concept C."
    """

    role: str
    filler: "ELConcept"

    def __str__(self) -> str:
        return f"exists {self.role}.({self.filler})"


@dataclass(frozen=True)
class Conjunction:
    """A concept intersection ``C ⊓ D`` (n-ary for convenience)."""

    operands: tuple["ELConcept", ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise ValueError("a conjunction needs at least two operands")

    def __str__(self) -> str:
        return " and ".join(f"({operand})" for operand in self.operands)


ELConcept = Union[AtomicConcept, TopConcept, ExistentialRestriction,
                  Conjunction]


@dataclass(frozen=True)
class Subsumption:
    """A concept-inclusion axiom ``subclass ⊑ superclass``."""

    subclass: ELConcept
    superclass: ELConcept

    def __str__(self) -> str:
        return f"{self.subclass} subClassOf {self.superclass}"


def conjunction_of(operands: Iterable[ELConcept]) -> ELConcept:
    """Build a conjunction, collapsing the 0/1-operand degenerate cases."""
    flat = tuple(operands)
    if not flat:
        return TopConcept()
    if len(flat) == 1:
        return flat[0]
    return Conjunction(flat)


def ontology_axioms(ontology: Ontology) -> Iterator[Subsumption]:
    """Read an ontology graph as EL axioms.

    Each concept yields one axiom ``A ⊑ P1 ⊓ ... ⊓ ∃r1.B1 ⊓ ...``
    combining its direct superclasses and its attribute relationships,
    mirroring the paper's examples, e.g.::

        Asthma Attack ⊑ Asthma ⊓ ∃finding-site-of.Bronchial Structure
    """
    for concept in ontology.concepts():
        operands: list[ELConcept] = [AtomicConcept(parent) for parent
                                     in ontology.parents(concept.code)]
        operands.extend(
            ExistentialRestriction(edge.type, AtomicConcept(edge.destination))
            for edge in ontology.outgoing(concept.code))
        if operands:
            yield Subsumption(AtomicConcept(concept.code),
                              conjunction_of(operands))


def apply_axiom(ontology: Ontology, axiom: Subsumption) -> None:
    """Normalize an axiom into ontology edges.

    Only axioms with an atomic left-hand side are supported (SNOMED's
    distribution normal form): ``A ⊑ C1 ⊓ C2`` splits into two axioms,
    ``A ⊑ B`` adds an is-a edge, ``A ⊑ ∃r.B`` adds a role edge with an
    atomic filler. Nested fillers are rejected.
    """
    if not isinstance(axiom.subclass, AtomicConcept):
        raise OntologyError("only atomic subclasses are supported")
    source = axiom.subclass.code

    def apply_superclass(expression: ELConcept) -> None:
        if isinstance(expression, TopConcept):
            return
        if isinstance(expression, Conjunction):
            for operand in expression.operands:
                apply_superclass(operand)
        elif isinstance(expression, AtomicConcept):
            ontology.add_is_a(source, expression.code)
        elif isinstance(expression, ExistentialRestriction):
            if not isinstance(expression.filler, AtomicConcept):
                raise OntologyError("nested restrictions are not supported")
            ontology.add_relationship(source, expression.role,
                                      expression.filler.code)
        else:  # pragma: no cover - exhaustive over ELConcept
            raise OntologyError(f"unsupported expression {expression!r}")

    apply_superclass(axiom.superclass)


# ----------------------------------------------------------------------
# Materialized DL view (Figure 6)
# ----------------------------------------------------------------------
def existential_code(role: str, filler_code: str) -> str:
    """Synthetic node identifier for the restriction ``∃role.filler``."""
    return f"exists:{role}:{filler_code}"


def existential_name(role: str, filler_term: str) -> str:
    """The paper's syntactic name, e.g.
    ``Exists_finding_site_of_Bronchial_Structure``.

    "The syntactic name in our implementation is Exists_r_C." The name is
    a single underscore-joined token, so ordinary keywords (``asthma``)
    do not IR-match a restriction's name -- only a query for the full
    syntactic name would. Restrictions therefore receive authority
    almost exclusively through the dotted links, paying the ``t`` decay,
    rather than acting as independent high-scoring seeds.
    """
    filler_token = filler_term.replace(" ", "_")
    role_token = role.replace("-", "_").replace(" ", "_")
    return f"Exists_{role_token}_{filler_token}"


@dataclass(frozen=True)
class DLNode:
    """A node of the transformed graph: a concept or a restriction."""

    code: str
    name: str
    is_existential: bool
    role: str = ""
    filler: str = ""


class DLView:
    """The logically transformed ontology graph of Section IV-C.

    Nodes are the original concepts plus one node per distinct
    restriction ``∃r.B`` occurring in the ontology. Edges are

    * the original is-a edges (subclass → superclass);
    * one is-a edge ``A → ∃r.B`` per triple ``(A, r, B)``;
    * one dotted link between ``∃r.B`` and ``B``.

    The view is immutable once built; build a new one after mutating the
    underlying ontology.
    """

    def __init__(self, ontology: Ontology) -> None:
        self._ontology = ontology
        self._nodes: dict[str, DLNode] = {}
        self._parents: dict[str, list[str]] = {}
        self._children: dict[str, list[str]] = {}
        self._dotted: dict[str, list[str]] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        ontology = self._ontology
        for concept in ontology.concepts():
            self._nodes[concept.code] = DLNode(
                code=concept.code, name=concept.description_text(),
                is_existential=False)
            self._parents[concept.code] = ontology.parents(concept.code)
            self._children[concept.code] = ontology.children(concept.code)
            self._dotted[concept.code] = []
        for concept in ontology.concepts():
            for edge in ontology.outgoing(concept.code):
                restriction = existential_code(edge.type, edge.destination)
                if restriction not in self._nodes:
                    filler = ontology.concept(edge.destination)
                    self._nodes[restriction] = DLNode(
                        code=restriction,
                        name=existential_name(edge.type,
                                              filler.preferred_term),
                        is_existential=True, role=edge.type,
                        filler=edge.destination)
                    self._parents[restriction] = []
                    self._children[restriction] = []
                    self._dotted[restriction] = [edge.destination]
                    self._dotted[edge.destination].append(restriction)
                self._parents[edge.source].append(restriction)
                self._children[restriction].append(edge.source)

    # ------------------------------------------------------------------
    def node(self, code: str) -> DLNode:
        try:
            return self._nodes[code]
        except KeyError:
            raise OntologyError(f"unknown DL node {code}") from None

    def nodes(self) -> Iterator[DLNode]:
        return iter(self._nodes.values())

    def existential_nodes(self) -> Iterator[DLNode]:
        return (node for node in self._nodes.values() if node.is_existential)

    def __contains__(self, code: str) -> bool:
        return code in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def parents(self, code: str) -> list[str]:
        """Solid subclass edges: direct superclasses (incl. restrictions)."""
        self.node(code)
        return list(self._parents.get(code, ()))

    def children(self, code: str) -> list[str]:
        """Solid subclass edges: direct subclasses."""
        self.node(code)
        return list(self._children.get(code, ()))

    def dotted(self, code: str) -> list[str]:
        """Dotted links incident to a node (symmetric)."""
        self.node(code)
        return list(self._dotted.get(code, ()))

    def subclass_count(self, code: str) -> int:
        """In-degree in the transformed is-a graph.

        For an existential node this is the ``N(∃r.C)`` denominator of
        Section VI-C.
        """
        self.node(code)
        return len(self._children.get(code, ()))

    def stats(self) -> dict[str, int]:
        existential = sum(1 for _ in self.existential_nodes())
        is_a_edges = sum(len(parents) for parents in self._parents.values())
        dotted_edges = sum(len(links) for links in self._dotted.values()) // 2
        return {
            "nodes": len(self._nodes),
            "concept_nodes": len(self._nodes) - existential,
            "existential_nodes": existential,
            "is_a_edges": is_a_edges,
            "dotted_links": dotted_edges,
        }
