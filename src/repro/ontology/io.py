"""Flat-file persistence for ontologies (SNOMED RF2-shaped).

SNOMED CT is distributed as tab-separated release files: a concepts
file, a descriptions file (one row per term) and a relationships file.
The paper's implementation "relies on the API and data provided by [the
NLM], which are based on flat files". This module reads and writes the
same three-file shape so an ontology can be shipped, inspected and
reloaded without re-running the generator:

* ``concepts.tsv``    -- ``code <TAB> semantic_tag``
* ``descriptions.tsv``-- ``code <TAB> type <TAB> term`` where type is
  ``P`` (preferred) or ``S`` (synonym)
* ``relationships.tsv``-- ``source <TAB> type <TAB> destination``
* ``xrefs.tsv``       -- ``code <TAB> system <TAB> foreign_code``
  (cross-references into other code systems, SNOMED's map refsets;
  optional on load so pre-xref directories keep loading)

Files carry a single header line. Round-trip equality is covered by a
property test.
"""

from __future__ import annotations

import os
from collections import defaultdict

from .model import Concept, Ontology, OntologyError

CONCEPTS_FILE = "concepts.tsv"
DESCRIPTIONS_FILE = "descriptions.tsv"
RELATIONSHIPS_FILE = "relationships.tsv"
XREFS_FILE = "xrefs.tsv"
METADATA_FILE = "system.tsv"

_PREFERRED = "P"
_SYNONYM = "S"


def save_ontology(ontology: Ontology, directory: str) -> None:
    """Write an ontology as RF2-shaped TSV files under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, METADATA_FILE), "w",
              encoding="utf-8") as handle:
        handle.write("system_code\tname\n")
        handle.write(f"{ontology.system_code}\t{ontology.name}\n")
    with open(os.path.join(directory, CONCEPTS_FILE), "w",
              encoding="utf-8") as handle:
        handle.write("code\tsemantic_tag\n")
        for concept in ontology.concepts():
            handle.write(f"{concept.code}\t{concept.semantic_tag}\n")
    with open(os.path.join(directory, DESCRIPTIONS_FILE), "w",
              encoding="utf-8") as handle:
        handle.write("code\ttype\tterm\n")
        for concept in ontology.concepts():
            handle.write(f"{concept.code}\t{_PREFERRED}\t"
                         f"{concept.preferred_term}\n")
            for synonym in concept.synonyms:
                handle.write(f"{concept.code}\t{_SYNONYM}\t{synonym}\n")
    with open(os.path.join(directory, RELATIONSHIPS_FILE), "w",
              encoding="utf-8") as handle:
        handle.write("source\ttype\tdestination\n")
        for edge in ontology.relationships():
            handle.write(f"{edge.source}\t{edge.type}\t{edge.destination}\n")
    with open(os.path.join(directory, XREFS_FILE), "w",
              encoding="utf-8") as handle:
        handle.write("code\tsystem\tforeign_code\n")
        for concept in ontology.concepts():
            for system, foreign in concept.xrefs:
                handle.write(f"{concept.code}\t{system}\t{foreign}\n")


def load_ontology(directory: str) -> Ontology:
    """Load an ontology previously written by :func:`save_ontology`."""
    metadata_rows = _read_rows(os.path.join(directory, METADATA_FILE),
                               columns=2)
    if len(metadata_rows) != 1:
        raise OntologyError(f"expected one system row in {directory}")
    system_code, name = metadata_rows[0]
    ontology = Ontology(system_code, name)

    tags = {code: tag for code, tag
            in _read_rows(os.path.join(directory, CONCEPTS_FILE), columns=2)}
    preferred: dict[str, str] = {}
    synonyms: dict[str, list[str]] = defaultdict(list)
    for code, kind, term in _read_rows(
            os.path.join(directory, DESCRIPTIONS_FILE), columns=3):
        if code not in tags:
            raise OntologyError(f"description for unknown concept {code}")
        if kind == _PREFERRED:
            if code in preferred:
                raise OntologyError(f"duplicate preferred term for {code}")
            preferred[code] = term
        elif kind == _SYNONYM:
            synonyms[code].append(term)
        else:
            raise OntologyError(f"unknown description type {kind!r}")
    xrefs: dict[str, list[tuple[str, str]]] = defaultdict(list)
    xrefs_path = os.path.join(directory, XREFS_FILE)
    if os.path.exists(xrefs_path):  # optional: pre-xref directories
        for code, system, foreign in _read_rows(xrefs_path, columns=3):
            if code not in tags:
                raise OntologyError(f"xref for unknown concept {code}")
            xrefs[code].append((system, foreign))
    for code, tag in tags.items():
        if code not in preferred:
            raise OntologyError(f"concept {code} has no preferred term")
        ontology.add_concept(Concept(code, preferred[code],
                                     tuple(synonyms.get(code, ())), tag,
                                     tuple(xrefs.get(code, ()))))
    for source, type, destination in _read_rows(
            os.path.join(directory, RELATIONSHIPS_FILE), columns=3):
        # Cycle checking is deferred to the closing validate() toposort;
        # the incremental ancestor walk is quadratic over a bulk load.
        ontology.add_relationship(source, type, destination,
                                  check_cycles=False)
    ontology.validate()
    return ontology


def _read_rows(path: str, columns: int) -> list[tuple[str, ...]]:
    """Read a headered TSV file, enforcing the column count."""
    rows: list[tuple[str, ...]] = []
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline()
        if not header:
            raise OntologyError(f"{path} is empty")
        for line_number, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = tuple(line.split("\t"))
            if len(parts) != columns:
                raise OntologyError(
                    f"{path}:{line_number}: expected {columns} columns, "
                    f"got {len(parts)}")
            rows.append(parts)
    return rows
