"""Persisted concept indexes: the ontology service's index layer.

The paper's terminology access runs through the UMLS API, which answers
string -> concept and code -> concept queries against SNOMED's >350k
concepts without the caller ever holding the graph. This module gives
:class:`~repro.ontology.api.TerminologyService` the same property:
three lookup structures are built once from an ontology (or a concept
*stream*, so a 10^5..10^6-concept synthetic SNOMED never has to be
materialized) and persisted through any :class:`IndexStore` backend --
the SQLite file and XMS1 mmap image included -- behind the usual
manifest completion/checksum gates.

* :class:`NameIndex` -- exact normalized name/synonym -> concepts, plus
  a per-token index for partial matching;
* :class:`XrefIndex` -- cross-references into foreign code systems
  (ICD-10, LOINC, RxNorm), forward and reverse;
* :class:`HierarchyIndex` -- is-a ancestor/descendant closure with hop
  depth, precomputed so subsumption checks are one posting read.

Storage layout (all plain :class:`IndexStore` primitives, so every
backend and the differential ``canonical_dump`` contract apply
unchanged):

========================  =============================================
posting namespace / key    contents
========================  =============================================
``onto.name``  ``e:<t>``  concepts whose normalized term equals ``t``
                           (score 1.0 preferred / 0.5 synonym)
``onto.name``  ``t:<w>``  concepts with token ``w`` in some term
``onto.xref``  ``f:<c>``  foreign refs of concept ``c`` as
                           ``"<system> <code>"`` postings
``onto.xref``  ``r:<s> <f>``  concepts cross-referenced to foreign
                           code ``f`` of system ``s``
``onto.hier``  ``a:<c>``  ancestors of ``c`` (score = min hop depth)
``onto.hier``  ``d:<c>``  descendants of ``c`` (score = min hop depth)
========================  =============================================

Concept payloads (preferred term, synonyms, tag, xrefs) live in
metadata rows ``onto.concept:<code>``; the index version, ontology
fingerprint and system identity in ``onto.index.*`` rows. Posting
lists are sorted with all-digit codes in numeric order, so pure
concept-code lists satisfy the XPB1 compact-block codec's canonical
ordering and mmap images stay compact.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator

from ..core.obs.tracer import NULL_TRACER
from ..ir.tokenizer import normalize_term
from ..storage.interface import IncompatibleIndexError, IndexStore
from ..storage.manifest import (BUILD_COMPLETE, BUILD_COMPLETE_KEY,
                                CHECKSUM_KEY_PREFIX,
                                CORPUS_FINGERPRINT_KEY,
                                MANIFEST_VERSION, MANIFEST_VERSION_KEY,
                                corpus_fingerprint, mark_build_started,
                                require_complete, store_checksum)
from .model import (IS_A, Concept, FingerprintAccumulator, Ontology,
                    OntologyError)

#: Posting namespaces (the stores' *strategy* axis).
NAME_STRATEGY = "onto.name"
XREF_STRATEGY = "onto.xref"
HIER_STRATEGY = "onto.hier"
ONTOLOGY_INDEX_STRATEGIES = (NAME_STRATEGY, XREF_STRATEGY, HIER_STRATEGY)

#: Key prefixes within each namespace.
EXACT_PREFIX = "e:"
TOKEN_PREFIX = "t:"
FORWARD_PREFIX = "f:"
REVERSE_PREFIX = "r:"
ANCESTOR_PREFIX = "a:"
DESCENDANT_PREFIX = "d:"

#: Metadata rows.
INDEX_VERSION_KEY = "onto.index.version"
INDEX_VERSION = "1"
FINGERPRINT_KEY = "onto.index.fingerprint"
SYSTEM_KEY = "onto.index.system"
NAME_KEY = "onto.index.name"
CONCEPT_COUNT_KEY = "onto.index.concepts"
CONCEPT_KEY_PREFIX = "onto.concept:"

#: Name-match weights: an exact preferred-term hit outranks a synonym.
PREFERRED_WEIGHT = 1.0
SYNONYM_WEIGHT = 0.5


# ``normalize_term`` is imported (and re-exported) from
# ``repro.ir.tokenizer``: the service facade and the persisted index
# provably share one normalization (hyphen/apostrophe handling
# included) because there is only one implementation.
normalize_term = normalize_term


def _posting_order(code: str) -> tuple[int, int, str]:
    """Sort key keeping all-digit concept codes in numeric order (the
    codec's canonical Dewey order for single-component keys); non-digit
    codes sort after them, lexicographically."""
    if code.isdigit() and (code == "0" or not code.startswith("0")):
        return (0, len(code), code)
    return (1, 0, code)


def _weights_to_postings(weights: dict[str, float],
                         ) -> list[tuple[str, float]]:
    return [(code, weights[code])
            for code in sorted(weights, key=_posting_order)]


class _IndexReader:
    """Shared posting-read plumbing of the three index views."""

    def __init__(self, store: IndexStore, strategy: str) -> None:
        self._store = store
        self._strategy = strategy

    def _read(self, key: str) -> list[tuple[str, float]]:
        return self._store.get_postings(self._strategy, key)


class NameIndex(_IndexReader):
    """Exact and per-token name/synonym -> concept lookup."""

    def __init__(self, store: IndexStore) -> None:
        super().__init__(store, NAME_STRATEGY)

    def lookup(self, term: str) -> list[tuple[str, float]]:
        """Concept codes whose normalized name or synonym equals
        ``term`` (after normalization), best match weight first."""
        normalized = normalize_term(term)
        if not normalized:
            return []
        matches = self._read(EXACT_PREFIX + normalized)
        return sorted(matches, key=lambda item: (-item[1], item[0]))

    def lookup_token(self, token: str) -> list[tuple[str, float]]:
        """Concepts with ``token`` anywhere in a name or synonym."""
        normalized = normalize_term(token)
        if not normalized or " " in normalized:
            return []
        return self._read(TOKEN_PREFIX + normalized)


class XrefIndex(_IndexReader):
    """Cross-references between the ontology and foreign code systems."""

    def __init__(self, store: IndexStore) -> None:
        super().__init__(store, XREF_STRATEGY)

    def forward(self, code: str) -> list[tuple[str, str]]:
        """``(system, foreign_code)`` pairs a concept maps onto."""
        pairs = []
        for packed, _score in self._read(FORWARD_PREFIX + code):
            system, _, foreign = packed.partition(" ")
            pairs.append((system, foreign))
        return pairs

    def reverse(self, system: str, foreign_code: str) -> list[str]:
        """Concept codes cross-referenced to a foreign code."""
        key = f"{REVERSE_PREFIX}{system} {foreign_code}"
        return [code for code, _score in self._read(key)]


class HierarchyIndex(_IndexReader):
    """Precomputed is-a closure with minimum hop depth."""

    def __init__(self, store: IndexStore) -> None:
        super().__init__(store, HIER_STRATEGY)

    def ancestors(self, code: str) -> dict[str, int]:
        """All is-a ancestors of ``code`` -> minimum hop depth."""
        return {ancestor: int(depth) for ancestor, depth
                in self._read(ANCESTOR_PREFIX + code)}

    def descendants(self, code: str) -> dict[str, int]:
        """All is-a descendants of ``code`` -> minimum hop depth."""
        return {descendant: int(depth) for descendant, depth
                in self._read(DESCENDANT_PREFIX + code)}

    def is_subsumed_by(self, code: str, ancestor: str) -> bool:
        """Whether ``ancestor`` lies on some is-a path above ``code``."""
        return code == ancestor or ancestor in self.ancestors(code)


class OntologyIndexes:
    """Read facade over a store holding the three persisted indexes.

    Opening validates the manifest completion marker and the index
    version, so a half-written or foreign store is rejected with the
    usual storage taxonomy instead of returning empty lookups.
    """

    def __init__(self, store: IndexStore) -> None:
        require_complete(store)
        version = store.get_metadata(INDEX_VERSION_KEY)
        if version != INDEX_VERSION:
            raise IncompatibleIndexError(
                f"ontology index version {version!r} "
                f"(supported: {INDEX_VERSION!r})")
        self._store = store
        self.names = NameIndex(store)
        self.xrefs = XrefIndex(store)
        self.hierarchy = HierarchyIndex(store)
        self.fingerprint = store.get_metadata(FINGERPRINT_KEY, "")
        self.system_code = store.get_metadata(SYSTEM_KEY, "")
        self.ontology_name = store.get_metadata(NAME_KEY, "")
        self.concept_count = int(
            store.get_metadata(CONCEPT_COUNT_KEY, "0") or "0")

    @property
    def store(self) -> IndexStore:
        return self._store

    def concept(self, code: str) -> Concept | None:
        """Reconstruct a concept from its payload row (``None`` when the
        code is unknown)."""
        payload = self._store.get_metadata(CONCEPT_KEY_PREFIX + code)
        if payload is None:
            return None
        preferred, synonyms, tag, xrefs = json.loads(payload)
        return Concept(code, preferred, tuple(synonyms), tag,
                       tuple((system, foreign)
                             for system, foreign in xrefs))

    def close(self) -> None:
        self._store.close()


class _IndexBuildState:
    """Accumulates the three indexes from a single concept/edge pass."""

    def __init__(self, system_code: str, name: str) -> None:
        self.system_code = system_code
        self.name = name
        self.accumulator = FingerprintAccumulator(system_code, name)
        self.payloads: dict[str, str] = {}
        self.exact: dict[str, dict[str, float]] = {}
        self.tokens: dict[str, dict[str, float]] = {}
        self.forward: dict[str, list[tuple[str, str]]] = {}
        self.reverse: dict[str, dict[str, float]] = {}
        self.parents: dict[str, list[str]] = {}
        self.edge_count = 0

    # ------------------------------------------------------------------
    def add_concept(self, concept: Concept) -> None:
        code = concept.code
        if code in self.payloads:
            raise OntologyError(f"duplicate concept {code}")
        self.accumulator.add_concept(concept)
        self.payloads[code] = json.dumps(
            [concept.preferred_term, list(concept.synonyms),
             concept.semantic_tag, [list(pair) for pair in concept.xrefs]],
            separators=(",", ":"))
        self.parents.setdefault(code, [])
        for term, weight in ((concept.preferred_term, PREFERRED_WEIGHT),
                             *((synonym, SYNONYM_WEIGHT)
                               for synonym in concept.synonyms)):
            normalized = normalize_term(term)
            if not normalized:
                continue
            bucket = self.exact.setdefault(normalized, {})
            bucket[code] = max(bucket.get(code, 0.0), weight)
            for token in set(normalized.split()):
                token_bucket = self.tokens.setdefault(token, {})
                token_bucket[code] = max(token_bucket.get(code, 0.0),
                                         weight)
        for system, foreign in concept.xrefs:
            self.forward.setdefault(code, []).append((system, foreign))
            key = f"{system} {foreign}"
            self.reverse.setdefault(key, {})[code] = 1.0

    def add_edge(self, source: str, type: str, destination: str) -> None:
        self.accumulator.add_relationship(source, type, destination)
        self.edge_count += 1
        if type == IS_A:
            self.parents.setdefault(source, []).append(destination)

    # ------------------------------------------------------------------
    def hierarchy_closure(self) -> tuple[dict[str, dict[str, int]],
                                         dict[str, dict[str, int]]]:
        """Min-depth ancestor and descendant closures over is-a.

        Kahn's topological order over the parent DAG: each node's
        ancestor map is its parents plus their (already final) ancestor
        maps shifted one hop; a cycle leaves nodes unprocessed and
        raises, mirroring ``Ontology.validate``.
        """
        children: dict[str, list[str]] = {}
        indegree: dict[str, int] = {}
        for code in self.payloads:
            parents = [parent for parent in self.parents.get(code, ())
                       if parent in self.payloads]
            indegree[code] = len(parents)
            for parent in parents:
                children.setdefault(parent, []).append(code)
        queue = [code for code, degree in indegree.items()
                 if degree == 0]
        ancestors: dict[str, dict[str, int]] = {}
        processed = 0
        while queue:
            code = queue.pop()
            processed += 1
            closure: dict[str, int] = {}
            for parent in self.parents.get(code, ()):
                if parent not in self.payloads:
                    continue
                if 1 < closure.get(parent, 1 << 30):
                    closure[parent] = 1
                for ancestor, depth in ancestors[parent].items():
                    if depth + 1 < closure.get(ancestor, 1 << 30):
                        closure[ancestor] = depth + 1
            ancestors[code] = closure
            for child in children.get(code, ()):
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if processed != len(self.payloads):
            raise OntologyError("is-a cycle detected during index build")
        descendants: dict[str, dict[str, int]] = {}
        for code, closure in ancestors.items():
            for ancestor, depth in closure.items():
                descendants.setdefault(ancestor, {})[code] = depth
        return ancestors, descendants


def _entries_from_ontology(ontology: Ontology,
                           state: _IndexBuildState) -> None:
    for concept in ontology.concepts():
        state.add_concept(concept)
    for edge in ontology.relationships():
        state.add_edge(edge.source, edge.type, edge.destination)


def _entries_from_stream(entries: Iterable, state: _IndexBuildState,
                         ) -> None:
    # ``entries`` yields ConceptEntry-shaped items (see
    # repro.ontology.snomed): the concept plus its is-a parents,
    # outgoing attributes, and incoming edges from already-streamed
    # concepts. Edges may reference concepts that stream later, so
    # they are only fingerprinted/bucketed, never resolved here.
    for entry in entries:
        state.add_concept(entry.concept)
        code = entry.concept.code
        for parent in entry.parents:
            state.add_edge(code, IS_A, parent)
        for type, destination in entry.attributes:
            state.add_edge(code, type, destination)
        for origin, type in entry.incoming:
            state.add_edge(origin, type, code)


def build_ontology_indexes(source, store: IndexStore, *,
                           system_code: str | None = None,
                           name: str | None = None,
                           tracer=None) -> OntologyIndexes:
    """Build and persist the three concept indexes into ``store``.

    ``source`` is either an :class:`Ontology` or an *iterable of
    concept entries* (:class:`repro.ontology.snomed.ConceptEntry`) --
    the streamed form never materializes the graph, which is what makes
    the 10^5+-concept builds tractable. The store ends manifest-complete
    with per-namespace checksums and the ontology content fingerprint,
    so :class:`OntologyIndexes` and the cache layer can verify identity
    on open.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if isinstance(source, Ontology):
        state = _IndexBuildState(source.system_code, source.name)
    else:
        if system_code is None:
            raise OntologyError(
                "streamed index builds need an explicit system_code")
        state = _IndexBuildState(system_code, name or "")
    with tracer.span("ontology.index.build",
                     system=state.system_code) as span:
        if isinstance(source, Ontology):
            _entries_from_ontology(source, state)
        else:
            _entries_from_stream(source, state)
        ancestors, descendants = state.hierarchy_closure()
        mark_build_started(store)
        store.put_postings_many(
            NAME_STRATEGY,
            _name_posting_items(state))
        store.put_postings_many(
            XREF_STRATEGY,
            _xref_posting_items(state))
        store.put_postings_many(
            HIER_STRATEGY,
            _hierarchy_posting_items(ancestors, descendants))
        fingerprint = state.accumulator.hexdigest()
        store.put_metadata_many(
            [(CONCEPT_KEY_PREFIX + code, payload)
             for code, payload in state.payloads.items()])
        store.put_metadata_many([
            (INDEX_VERSION_KEY, INDEX_VERSION),
            (FINGERPRINT_KEY, fingerprint),
            (SYSTEM_KEY, state.system_code),
            (NAME_KEY, state.name),
            (CONCEPT_COUNT_KEY, str(len(state.payloads))),
            (MANIFEST_VERSION_KEY, MANIFEST_VERSION),
            # The ontology's identity lives in FINGERPRINT_KEY; the
            # manifest's corpus fingerprint must describe the (empty)
            # document set so `repro verify-index` recomputes clean.
            (CORPUS_FINGERPRINT_KEY, corpus_fingerprint(())),
        ])
        store.put_metadata_many(
            [(CHECKSUM_KEY_PREFIX + strategy,
              store_checksum(store, strategy))
             for strategy in ONTOLOGY_INDEX_STRATEGIES])
        # Completion marker strictly last: a crash anywhere above
        # leaves a store that OntologyIndexes refuses to open.
        store.put_metadata(BUILD_COMPLETE_KEY, BUILD_COMPLETE)
        span.annotate(concepts=len(state.payloads),
                      relationships=state.edge_count,
                      name_keys=len(state.exact) + len(state.tokens))
    return OntologyIndexes(store)


def _name_posting_items(state: _IndexBuildState,
                        ) -> Iterator[tuple[str, list[tuple[str, float]]]]:
    for normalized in sorted(state.exact):
        yield (EXACT_PREFIX + normalized,
               _weights_to_postings(state.exact[normalized]))
    for token in sorted(state.tokens):
        yield (TOKEN_PREFIX + token,
               _weights_to_postings(state.tokens[token]))


def _xref_posting_items(state: _IndexBuildState,
                        ) -> Iterator[tuple[str, list[tuple[str, float]]]]:
    for code in sorted(state.forward, key=_posting_order):
        pairs = sorted(set(state.forward[code]))
        yield (FORWARD_PREFIX + code,
               [(f"{system} {foreign}", 1.0) for system, foreign in pairs])
    for key in sorted(state.reverse):
        yield (REVERSE_PREFIX + key,
               _weights_to_postings(state.reverse[key]))


def _hierarchy_posting_items(
        ancestors: dict[str, dict[str, int]],
        descendants: dict[str, dict[str, int]],
        ) -> Iterator[tuple[str, list[tuple[str, float]]]]:
    for code in sorted(ancestors, key=_posting_order):
        closure = ancestors[code]
        if closure:
            yield (ANCESTOR_PREFIX + code,
                   [(ancestor, float(closure[ancestor])) for ancestor
                    in sorted(closure, key=_posting_order)])
    for code in sorted(descendants, key=_posting_order):
        closure = descendants[code]
        if closure:
            yield (DESCENDANT_PREFIX + code,
                   [(descendant, float(closure[descendant]))
                    for descendant
                    in sorted(closure, key=_posting_order)])
