"""Synthetic SNOMED-CT-shaped ontology (substitute substrate).

The paper runs on the real SNOMED CT, a licensed multi-gigabyte
terminology. This module builds a structurally faithful stand-in:

* a **curated clinical core** containing every concept, term and
  relationship the paper mentions -- the Figure 2 subgraph around Asthma
  (including the "26 direct subclasses of Asthma" the worked OntoScore
  example relies on), the Figure 1 CDA codes, and the drugs/disorders of
  the Table I query workload (including the acetaminophen/aspirin
  pain-control association the paper's error analysis discusses);
* a **seeded procedural expansion** that grows the ontology to an
  arbitrary size with the same shape as SNOMED: a handful of top-level
  axes, deep is-a DAGs, multi-term concepts, and typed attribute
  relationships (finding-site-of, causative-agent, ...).

Real SNOMED CT concept codes are used where they are publicly well known
(e.g. Asthma = 195967001); generated concepts use codes in the synthetic
``9xxxxxxx`` range. OntoScore computations depend only on graph structure
plus term text, both of which this substitute preserves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from .model import IS_A, Concept, Ontology

#: The OID by which CDA documents reference SNOMED CT (Figure 1).
SNOMED_SYSTEM_CODE = "2.16.840.1.113883.6.96"
SNOMED_NAME = "SNOMED CT"

#: Foreign code systems the synthetic cross-references target (the OIDs
#: CDA uses for ICD-10, LOINC and RxNorm). SNOMED ships such mappings
#: as refsets; the XrefIndex resolves them both ways.
ICD10_SYSTEM_CODE = "2.16.840.1.113883.6.3"
LOINC_SYSTEM_CODE = "2.16.840.1.113883.6.1"
RXNORM_SYSTEM_CODE = "2.16.840.1.113883.6.88"

# Relationship types (non-taxonomic "attribute" relationships). SNOMED's
# own attribute inventory is larger; these are the kinds exercised by the
# paper plus drug-knowledge links needed by the Table I workload (a
# documented substitution: the paper's ontology related acetaminophen and
# aspirin through pain control, so associative drug links must exist).
FINDING_SITE_OF = "finding-site-of"
CAUSATIVE_AGENT = "causative-agent"
ASSOCIATED_WITH = "associated-with"
DUE_TO = "due-to"
PART_OF = "part-of"
HAS_ACTIVE_INGREDIENT = "has-active-ingredient"
MAY_TREAT = "may-treat"

RELATIONSHIP_TYPES = (
    FINDING_SITE_OF, CAUSATIVE_AGENT, ASSOCIATED_WITH, DUE_TO, PART_OF,
    HAS_ACTIVE_INGREDIENT, MAY_TREAT,
)

# ----------------------------------------------------------------------
# Well-known concept codes (public SNOMED CT identifiers where available)
# ----------------------------------------------------------------------
CLINICAL_FINDING = "404684003"
BODY_STRUCTURE = "123037004"
PHARMACEUTICAL_PRODUCT = "373873005"
SUBSTANCE = "105590001"
PROCEDURE = "71388002"
OBSERVABLE_ENTITY = "363787002"

ASTHMA = "195967001"
ASTHMA_ATTACK = "266364000"
BRONCHITIS = "32398004"
DISORDER_OF_BRONCHUS = "41427001"
DISORDER_OF_THORAX = "302292003"
FINDING_OF_REGION_OF_THORAX = "298705000"
BRONCHIAL_STRUCTURE = "955009"
REGION_OF_THORAX = "262231004"
LUNG_STRUCTURE = "39607008"
HEART_STRUCTURE = "80891009"
PERICARDIUM_STRUCTURE = "76848001"
AORTIC_STRUCTURE = "15825003"
CARDIAC_VENTRICLE = "21814001"
ATRIUM_STRUCTURE = "59652004"
MITRAL_VALVE = "91134007"
RESPIRATORY_TRACT = "20139000"

DISORDER_OF_HEART = "56265001"
CARDIAC_ARREST = "410429000"
CARDIAC_ARRHYTHMIA = "698247007"
SUPRAVENTRICULAR_ARRHYTHMIA = "44103008"
SUPRAVENTRICULAR_TACHYCARDIA = "6456007"
ATRIAL_FIBRILLATION = "49436004"
ATRIAL_FLUTTER = "5370000"
VENTRICULAR_TACHYCARDIA = "25569003"
PERICARDIAL_EFFUSION = "373945007"
COARCTATION_OF_AORTA = "7305005"
CYANOSIS = "3415004"
NEONATAL_CYANOSIS = "95563007"
VALVULAR_REGURGITATION = "20721001"
MITRAL_REGURGITATION = "48724000"
AORTIC_REGURGITATION = "60234000"
CONGENITAL_HEART_DISEASE = "13213009"
VENTRICULAR_SEPTAL_DEFECT = "30288003"
TETRALOGY_OF_FALLOT = "86299006"
PAIN_FINDING = "22253000"
FEVER = "386661006"
PNEUMONIA = "233604007"
RESPIRATORY_DISORDER = "50043002"

THEOPHYLLINE = "66493003"
ALBUTEROL = "372897005"
AMIODARONE = "372821002"
ACETAMINOPHEN = "387517004"
ASPIRIN = "387458008"
IBUPROFEN = "387207008"
CARBAPENEM = "396345004"
IMIPENEM = "46254009"
MEROPENEM = "387540000"
DIGOXIN = "387461009"
FUROSEMIDE = "387475002"
PROPRANOLOL = "372772003"
WARFARIN = "372756006"
EPINEPHRINE = "387362001"
BRONCHODILATOR = "418497006"
ANTIARRHYTHMIC_AGENT = "67507000"
ANALGESIC = "373265006"
NSAID = "372665008"
ANTIBIOTIC = "255631004"
BETA_LACTAM = "769166001"
DIURETIC = "30492008"

MEDICATIONS_CONCEPT = "410942007"

# Intermediate hierarchy layers. SNOMED taxonomies are deep (typically
# 8-15 levels); these realistic intermediates keep pairwise concept
# distances SNOMED-like, which the Graph strategy's pruning radius
# (decay 0.5, threshold 0.1 → 3 hops) depends on.
CARDIAC_FUNCTION_DISORDER = "105981003"
STRUCTURAL_HEART_DISORDER = "128599005"
PERICARDIUM_DISORDER = "118940003"
GREAT_VESSEL_ANOMALY = "445898003"
LOWER_RESPIRATORY_DISORDER = "301226008"
CARDIAC_VALVE_STRUCTURE = "17401000"
CARDIAC_CHAMBER_STRUCTURE = "276446008"
CLASS_III_ANTIARRHYTHMIC = "373247004"
NON_OPIOID_ANALGESIC = "373477003"
BODY_HEIGHT = "50373000"
BODY_WEIGHT = "27113001"
BODY_TEMPERATURE = "386725007"
HEART_RATE = "364075005"
BLOOD_PRESSURE = "75367002"
PAIN_CONTROL = "278414003"
ARRHYTHMIA_MANAGEMENT = "698074000"
AIRWAY_MANAGEMENT = "386509000"
ANTIMICROBIAL_THERAPY = "281790008"

#: (code, preferred term, synonyms, semantic tag)
_CORE_CONCEPTS: Sequence[tuple[str, str, tuple[str, ...], str]] = (
    # Top-level axes
    (CLINICAL_FINDING, "Clinical finding", ("finding",), "finding"),
    (BODY_STRUCTURE, "Body structure", (), "body structure"),
    (PHARMACEUTICAL_PRODUCT, "Pharmaceutical / biologic product",
     ("drug", "medication product"), "product"),
    (SUBSTANCE, "Substance", (), "substance"),
    (PROCEDURE, "Procedure", (), "procedure"),
    (OBSERVABLE_ENTITY, "Observable entity", (), "observable entity"),
    # Body structures (Figure 2 neighborhood + cardiac anatomy)
    (REGION_OF_THORAX, "Region of thorax", ("thorax region", "thoracic"),
     "body structure"),
    (BRONCHIAL_STRUCTURE, "Bronchial structure", ("bronchus",),
     "body structure"),
    (LUNG_STRUCTURE, "Lung structure", ("lung",), "body structure"),
    (RESPIRATORY_TRACT, "Respiratory tract structure",
     ("respiratory tract",), "body structure"),
    (HEART_STRUCTURE, "Heart structure", ("heart", "cardiac structure"),
     "body structure"),
    (PERICARDIUM_STRUCTURE, "Pericardial structure", ("pericardium",),
     "body structure"),
    (AORTIC_STRUCTURE, "Aortic structure", ("aorta",), "body structure"),
    (CARDIAC_VENTRICLE, "Cardiac ventricular structure", ("ventricle",),
     "body structure"),
    (ATRIUM_STRUCTURE, "Cardiac atrium structure", ("atrium", "atrial"),
     "body structure"),
    (MITRAL_VALVE, "Mitral valve structure", ("mitral valve",),
     "body structure"),
    # Clinical findings (Figure 2 + cardiology workload)
    (FINDING_OF_REGION_OF_THORAX, "Finding of region of thorax", (),
     "finding"),
    (CARDIAC_FUNCTION_DISORDER, "Disorder of cardiac function", (),
     "disorder"),
    (STRUCTURAL_HEART_DISORDER, "Structural disorder of heart", (),
     "disorder"),
    (PERICARDIUM_DISORDER, "Disorder of pericardium", (), "disorder"),
    (GREAT_VESSEL_ANOMALY, "Congenital anomaly of great vessel", (),
     "disorder"),
    (LOWER_RESPIRATORY_DISORDER, "Disorder of lower respiratory system",
     (), "disorder"),
    (CARDIAC_VALVE_STRUCTURE, "Cardiac valve structure", ("heart valve",),
     "body structure"),
    (CARDIAC_CHAMBER_STRUCTURE, "Cardiac chamber structure", (),
     "body structure"),
    (CLASS_III_ANTIARRHYTHMIC, "Class III antiarrhythmic agent", (),
     "product"),
    (NON_OPIOID_ANALGESIC, "Non-opioid analgesic agent", (), "product"),
    (DISORDER_OF_THORAX, "Disorder of thorax", (), "disorder"),
    (RESPIRATORY_DISORDER, "Disorder of respiratory system",
     ("respiratory disease",), "disorder"),
    (DISORDER_OF_BRONCHUS, "Disorder of bronchus", ("bronchial disorder",),
     "disorder"),
    (ASTHMA, "Asthma", ("bronchial asthma",), "disorder"),
    (ASTHMA_ATTACK, "Asthma attack", ("asthma exacerbation",), "disorder"),
    (BRONCHITIS, "Bronchitis", (), "disorder"),
    (PNEUMONIA, "Pneumonia", ("lung infection",), "disorder"),
    (DISORDER_OF_HEART, "Heart disease", ("cardiac disorder",), "disorder"),
    (CARDIAC_ARREST, "Cardiac arrest", ("cardiopulmonary arrest",),
     "disorder"),
    (CARDIAC_ARRHYTHMIA, "Cardiac arrhythmia", ("heart rhythm disorder",),
     "disorder"),
    (SUPRAVENTRICULAR_ARRHYTHMIA, "Supraventricular arrhythmia", (),
     "disorder"),
    (SUPRAVENTRICULAR_TACHYCARDIA, "Supraventricular tachycardia",
     ("SVT",), "disorder"),
    (ATRIAL_FIBRILLATION, "Atrial fibrillation", (), "disorder"),
    (ATRIAL_FLUTTER, "Atrial flutter", (), "disorder"),
    (VENTRICULAR_TACHYCARDIA, "Ventricular tachycardia", (), "disorder"),
    (PERICARDIAL_EFFUSION, "Pericardial effusion", (), "disorder"),
    (COARCTATION_OF_AORTA, "Coarctation of aorta",
     ("aortic coarctation", "coarctation"), "disorder"),
    (CYANOSIS, "Cyanosis", ("cyanotic",), "finding"),
    (NEONATAL_CYANOSIS, "Neonatal cyanosis", ("cyanosis neonatal",),
     "disorder"),
    (VALVULAR_REGURGITATION, "Valvular regurgitation",
     ("regurgitant flow", "valve regurgitation"), "disorder"),
    (MITRAL_REGURGITATION, "Mitral valve regurgitation",
     ("mitral regurgitation",), "disorder"),
    (AORTIC_REGURGITATION, "Aortic valve regurgitation",
     ("aortic regurgitation",), "disorder"),
    (CONGENITAL_HEART_DISEASE, "Congenital heart disease",
     ("congenital cardiac anomaly",), "disorder"),
    (VENTRICULAR_SEPTAL_DEFECT, "Ventricular septal defect", ("VSD",),
     "disorder"),
    (TETRALOGY_OF_FALLOT, "Tetralogy of Fallot", (), "disorder"),
    (PAIN_FINDING, "Pain", (), "finding"),
    (FEVER, "Fever", ("pyrexia", "febrile"), "finding"),
    # Products / substances
    (MEDICATIONS_CONCEPT, "Medications", ("drug or medicament",),
     "substance"),
    (BRONCHODILATOR, "Bronchodilator agent", ("bronchodilator",),
     "product"),
    (ANTIARRHYTHMIC_AGENT, "Antiarrhythmic agent", ("antiarrhythmic",),
     "product"),
    (ANALGESIC, "Analgesic agent", ("analgesic", "pain reliever"),
     "product"),
    (NSAID, "Non-steroidal anti-inflammatory agent", ("NSAID",),
     "product"),
    (ANTIBIOTIC, "Antibiotic agent", ("antibacterial",), "product"),
    (BETA_LACTAM, "Beta-lactam antibacterial agent", ("beta lactam",),
     "product"),
    (DIURETIC, "Diuretic agent", ("diuretic",), "product"),
    (THEOPHYLLINE, "Theophylline", (), "product"),
    (ALBUTEROL, "Albuterol", ("salbutamol",), "product"),
    (AMIODARONE, "Amiodarone", (), "product"),
    (ACETAMINOPHEN, "Acetaminophen", ("paracetamol",), "product"),
    (ASPIRIN, "Aspirin", ("acetylsalicylic acid",), "product"),
    (IBUPROFEN, "Ibuprofen", (), "product"),
    (CARBAPENEM, "Carbapenem", (), "product"),
    (IMIPENEM, "Imipenem", (), "product"),
    (MEROPENEM, "Meropenem", (), "product"),
    (DIGOXIN, "Digoxin", (), "product"),
    (FUROSEMIDE, "Furosemide", (), "product"),
    (PROPRANOLOL, "Propranolol", (), "product"),
    (WARFARIN, "Warfarin", (), "product"),
    (EPINEPHRINE, "Epinephrine", ("adrenaline",), "product"),
    # Observables / procedures referenced by CDA vitals sections
    (BODY_HEIGHT, "Body height", ("height",), "observable entity"),
    (BODY_WEIGHT, "Body weight", ("weight",), "observable entity"),
    (BODY_TEMPERATURE, "Body temperature", ("temperature",),
     "observable entity"),
    (HEART_RATE, "Heart rate", ("pulse rate", "pulse"),
     "observable entity"),
    (BLOOD_PRESSURE, "Blood pressure", (), "observable entity"),
    (PAIN_CONTROL, "Pain control", ("pain management",), "procedure"),
    (ARRHYTHMIA_MANAGEMENT, "Arrhythmia management", (), "procedure"),
    (AIRWAY_MANAGEMENT, "Airway management", (), "procedure"),
    (ANTIMICROBIAL_THERAPY, "Antimicrobial therapy", (), "procedure"),
)

#: (child, parent) is-a edges of the curated core.
_CORE_IS_A: Sequence[tuple[str, str]] = (
    # Body structure hierarchy (Figure 2 right-hand side)
    (REGION_OF_THORAX, BODY_STRUCTURE),
    (RESPIRATORY_TRACT, BODY_STRUCTURE),
    (LUNG_STRUCTURE, REGION_OF_THORAX),
    (LUNG_STRUCTURE, RESPIRATORY_TRACT),
    (BRONCHIAL_STRUCTURE, REGION_OF_THORAX),
    (BRONCHIAL_STRUCTURE, RESPIRATORY_TRACT),
    (HEART_STRUCTURE, REGION_OF_THORAX),
    (PERICARDIUM_STRUCTURE, HEART_STRUCTURE),
    (AORTIC_STRUCTURE, BODY_STRUCTURE),
    (CARDIAC_VALVE_STRUCTURE, HEART_STRUCTURE),
    (CARDIAC_CHAMBER_STRUCTURE, HEART_STRUCTURE),
    (CARDIAC_VENTRICLE, CARDIAC_CHAMBER_STRUCTURE),
    (ATRIUM_STRUCTURE, CARDIAC_CHAMBER_STRUCTURE),
    (MITRAL_VALVE, CARDIAC_VALVE_STRUCTURE),
    # Finding hierarchy (Figure 2 left-hand side)
    (FINDING_OF_REGION_OF_THORAX, CLINICAL_FINDING),
    (DISORDER_OF_THORAX, FINDING_OF_REGION_OF_THORAX),
    (RESPIRATORY_DISORDER, CLINICAL_FINDING),
    (LOWER_RESPIRATORY_DISORDER, RESPIRATORY_DISORDER),
    (DISORDER_OF_BRONCHUS, DISORDER_OF_THORAX),
    (DISORDER_OF_BRONCHUS, LOWER_RESPIRATORY_DISORDER),
    (ASTHMA, DISORDER_OF_BRONCHUS),
    (ASTHMA_ATTACK, ASTHMA),
    (BRONCHITIS, DISORDER_OF_BRONCHUS),
    (PNEUMONIA, LOWER_RESPIRATORY_DISORDER),
    (DISORDER_OF_HEART, DISORDER_OF_THORAX),
    (CARDIAC_FUNCTION_DISORDER, DISORDER_OF_HEART),
    (STRUCTURAL_HEART_DISORDER, DISORDER_OF_HEART),
    (PERICARDIUM_DISORDER, STRUCTURAL_HEART_DISORDER),
    (CARDIAC_ARREST, CARDIAC_FUNCTION_DISORDER),
    (CARDIAC_ARRHYTHMIA, CARDIAC_FUNCTION_DISORDER),
    (SUPRAVENTRICULAR_ARRHYTHMIA, CARDIAC_ARRHYTHMIA),
    (SUPRAVENTRICULAR_TACHYCARDIA, SUPRAVENTRICULAR_ARRHYTHMIA),
    (ATRIAL_FIBRILLATION, SUPRAVENTRICULAR_ARRHYTHMIA),
    (ATRIAL_FLUTTER, SUPRAVENTRICULAR_ARRHYTHMIA),
    (VENTRICULAR_TACHYCARDIA, CARDIAC_ARRHYTHMIA),
    (PERICARDIAL_EFFUSION, PERICARDIUM_DISORDER),
    (GREAT_VESSEL_ANOMALY, CONGENITAL_HEART_DISEASE),
    (COARCTATION_OF_AORTA, GREAT_VESSEL_ANOMALY),
    (CYANOSIS, CLINICAL_FINDING),
    (NEONATAL_CYANOSIS, CYANOSIS),
    (VALVULAR_REGURGITATION, STRUCTURAL_HEART_DISORDER),
    (MITRAL_REGURGITATION, VALVULAR_REGURGITATION),
    (AORTIC_REGURGITATION, VALVULAR_REGURGITATION),
    (CONGENITAL_HEART_DISEASE, STRUCTURAL_HEART_DISORDER),
    (VENTRICULAR_SEPTAL_DEFECT, CONGENITAL_HEART_DISEASE),
    (TETRALOGY_OF_FALLOT, CONGENITAL_HEART_DISEASE),
    (PAIN_FINDING, CLINICAL_FINDING),
    (FEVER, CLINICAL_FINDING),
    # Product hierarchy
    (MEDICATIONS_CONCEPT, SUBSTANCE),
    (BRONCHODILATOR, PHARMACEUTICAL_PRODUCT),
    (ANTIARRHYTHMIC_AGENT, PHARMACEUTICAL_PRODUCT),
    (ANALGESIC, PHARMACEUTICAL_PRODUCT),
    (NSAID, ANALGESIC),
    (ANTIBIOTIC, PHARMACEUTICAL_PRODUCT),
    (BETA_LACTAM, ANTIBIOTIC),
    (DIURETIC, PHARMACEUTICAL_PRODUCT),
    (THEOPHYLLINE, BRONCHODILATOR),
    (ALBUTEROL, BRONCHODILATOR),
    (CLASS_III_ANTIARRHYTHMIC, ANTIARRHYTHMIC_AGENT),
    (AMIODARONE, CLASS_III_ANTIARRHYTHMIC),
    (PROPRANOLOL, ANTIARRHYTHMIC_AGENT),
    (NON_OPIOID_ANALGESIC, ANALGESIC),
    (ACETAMINOPHEN, NON_OPIOID_ANALGESIC),
    (ASPIRIN, NSAID),
    (IBUPROFEN, NSAID),
    (CARBAPENEM, BETA_LACTAM),
    (IMIPENEM, CARBAPENEM),
    (MEROPENEM, CARBAPENEM),
    (DIGOXIN, ANTIARRHYTHMIC_AGENT),
    (FUROSEMIDE, DIURETIC),
    (WARFARIN, PHARMACEUTICAL_PRODUCT),
    (EPINEPHRINE, PHARMACEUTICAL_PRODUCT),
    # Observables / procedures
    (BODY_HEIGHT, OBSERVABLE_ENTITY),
    (BODY_WEIGHT, OBSERVABLE_ENTITY),
    (BODY_TEMPERATURE, OBSERVABLE_ENTITY),
    (HEART_RATE, OBSERVABLE_ENTITY),
    (BLOOD_PRESSURE, OBSERVABLE_ENTITY),
    (PAIN_CONTROL, PROCEDURE),
    (ARRHYTHMIA_MANAGEMENT, PROCEDURE),
    (AIRWAY_MANAGEMENT, PROCEDURE),
    (ANTIMICROBIAL_THERAPY, PROCEDURE),
)

#: (source, type, destination) attribute relationships of the core.
_CORE_ATTRIBUTES: Sequence[tuple[str, str, str]] = (
    # Figure 2: "SNOMED defines a finding-site-of relationship between
    # Asthma and Bronchial Structure".
    (ASTHMA, FINDING_SITE_OF, BRONCHIAL_STRUCTURE),
    (ASTHMA_ATTACK, FINDING_SITE_OF, BRONCHIAL_STRUCTURE),
    (BRONCHITIS, FINDING_SITE_OF, BRONCHIAL_STRUCTURE),
    (DISORDER_OF_BRONCHUS, FINDING_SITE_OF, BRONCHIAL_STRUCTURE),
    (DISORDER_OF_THORAX, FINDING_SITE_OF, REGION_OF_THORAX),
    (FINDING_OF_REGION_OF_THORAX, FINDING_SITE_OF, REGION_OF_THORAX),
    (PNEUMONIA, FINDING_SITE_OF, LUNG_STRUCTURE),
    (DISORDER_OF_HEART, FINDING_SITE_OF, HEART_STRUCTURE),
    (CARDIAC_ARREST, FINDING_SITE_OF, HEART_STRUCTURE),
    (CARDIAC_ARRHYTHMIA, FINDING_SITE_OF, HEART_STRUCTURE),
    (SUPRAVENTRICULAR_ARRHYTHMIA, FINDING_SITE_OF, ATRIUM_STRUCTURE),
    (SUPRAVENTRICULAR_TACHYCARDIA, FINDING_SITE_OF, ATRIUM_STRUCTURE),
    (ATRIAL_FIBRILLATION, FINDING_SITE_OF, ATRIUM_STRUCTURE),
    (ATRIAL_FLUTTER, FINDING_SITE_OF, ATRIUM_STRUCTURE),
    (VENTRICULAR_TACHYCARDIA, FINDING_SITE_OF, CARDIAC_VENTRICLE),
    (PERICARDIAL_EFFUSION, FINDING_SITE_OF, PERICARDIUM_STRUCTURE),
    (COARCTATION_OF_AORTA, FINDING_SITE_OF, AORTIC_STRUCTURE),
    (VALVULAR_REGURGITATION, FINDING_SITE_OF, HEART_STRUCTURE),
    (MITRAL_REGURGITATION, FINDING_SITE_OF, MITRAL_VALVE),
    (AORTIC_REGURGITATION, FINDING_SITE_OF, AORTIC_STRUCTURE),
    (VENTRICULAR_SEPTAL_DEFECT, FINDING_SITE_OF, CARDIAC_VENTRICLE),
    (TETRALOGY_OF_FALLOT, FINDING_SITE_OF, HEART_STRUCTURE),
    (NEONATAL_CYANOSIS, DUE_TO, CONGENITAL_HEART_DISEASE),
    (CYANOSIS, ASSOCIATED_WITH, CONGENITAL_HEART_DISEASE),
    (ASTHMA_ATTACK, DUE_TO, ASTHMA),
    (CARDIAC_ARREST, DUE_TO, VENTRICULAR_TACHYCARDIA),
    (TETRALOGY_OF_FALLOT, ASSOCIATED_WITH, CYANOSIS),
    # Anatomy part-of links
    (BRONCHIAL_STRUCTURE, PART_OF, LUNG_STRUCTURE),
    (LUNG_STRUCTURE, PART_OF, REGION_OF_THORAX),
    (HEART_STRUCTURE, PART_OF, REGION_OF_THORAX),
    (PERICARDIUM_STRUCTURE, PART_OF, HEART_STRUCTURE),
    (CARDIAC_VENTRICLE, PART_OF, HEART_STRUCTURE),
    (ATRIUM_STRUCTURE, PART_OF, HEART_STRUCTURE),
    (MITRAL_VALVE, PART_OF, HEART_STRUCTURE),
    # Drug context links. SNOMED CT proper has no drug->disorder
    # treatment relations; what the paper's UMLS-backed ontology exposed
    # were *context* associations -- its error analysis maps
    # acetaminophen to aspirin "in the context of pain control". We model
    # exactly that: drugs of one therapeutic class share an association
    # with a therapy-context procedure, so sibling drugs are reachable
    # through the shared restriction (and nothing links drugs to the
    # disorders they treat).
    (ACETAMINOPHEN, ASSOCIATED_WITH, PAIN_CONTROL),
    (ASPIRIN, ASSOCIATED_WITH, PAIN_CONTROL),
    (IBUPROFEN, ASSOCIATED_WITH, PAIN_CONTROL),
    (AMIODARONE, ASSOCIATED_WITH, ARRHYTHMIA_MANAGEMENT),
    (PROPRANOLOL, ASSOCIATED_WITH, ARRHYTHMIA_MANAGEMENT),
    (DIGOXIN, ASSOCIATED_WITH, ARRHYTHMIA_MANAGEMENT),
    (THEOPHYLLINE, ASSOCIATED_WITH, AIRWAY_MANAGEMENT),
    (ALBUTEROL, ASSOCIATED_WITH, AIRWAY_MANAGEMENT),
    (CARBAPENEM, ASSOCIATED_WITH, ANTIMICROBIAL_THERAPY),
    (IMIPENEM, ASSOCIATED_WITH, ANTIMICROBIAL_THERAPY),
    (MEROPENEM, ASSOCIATED_WITH, ANTIMICROBIAL_THERAPY),
)

#: Named asthma subtypes; the generator pads these to exactly 26 direct
#: subclasses so the paper's worked example ("the concept Asthma has 26
#: direct subclasses, hence the 1/26 factor") can be asserted in tests.
_ASTHMA_SUBTYPES: Sequence[str] = (
    "Allergic asthma", "Exercise-induced asthma", "Occupational asthma",
    "Childhood asthma", "Status asthmaticus", "Intrinsic asthma",
    "Extrinsic asthma", "Late-onset asthma", "Cough variant asthma",
    "Drug-induced asthma", "Severe persistent asthma",
    "Mild intermittent asthma", "Moderate persistent asthma",
    "Seasonal asthma", "Nocturnal asthma", "Brittle asthma",
    "Aspirin-sensitive asthma", "Steroid-dependent asthma",
)

_ASTHMA_DIRECT_SUBCLASSES = 26  # Asthma attack + subtypes + padding

#: Curated cross-references of the core (well-known public mappings).
_CORE_XREFS: dict[str, tuple[tuple[str, str], ...]] = {
    ASTHMA: ((ICD10_SYSTEM_CODE, "J45"),),
    BRONCHITIS: ((ICD10_SYSTEM_CODE, "J40"),),
    PNEUMONIA: ((ICD10_SYSTEM_CODE, "J18"),),
    ATRIAL_FIBRILLATION: ((ICD10_SYSTEM_CODE, "I48"),),
    ATRIAL_FLUTTER: ((ICD10_SYSTEM_CODE, "I48"),),
    CARDIAC_ARREST: ((ICD10_SYSTEM_CODE, "I46"),),
    FEVER: ((ICD10_SYSTEM_CODE, "R50"),),
    BODY_HEIGHT: ((LOINC_SYSTEM_CODE, "8302-2"),),
    BODY_WEIGHT: ((LOINC_SYSTEM_CODE, "29463-7"),),
    BODY_TEMPERATURE: ((LOINC_SYSTEM_CODE, "8310-5"),),
    HEART_RATE: ((LOINC_SYSTEM_CODE, "8867-4"),),
    BLOOD_PRESSURE: ((LOINC_SYSTEM_CODE, "85354-9"),),
    ACETAMINOPHEN: ((RXNORM_SYSTEM_CODE, "161"),),
    ASPIRIN: ((RXNORM_SYSTEM_CODE, "1191"),),
    IBUPROFEN: ((RXNORM_SYSTEM_CODE, "5640"),),
}


@dataclass(frozen=True)
class ConceptEntry:
    """One streamed generator row: a concept plus its outgoing edges.

    ``parents`` are is-a destinations, ``attributes`` are ``(type,
    destination)`` pairs leaving the concept, and ``incoming`` are
    ``(source, type)`` pairs pointing *into* it (a later stage may hang
    an edge off an earlier concept -- causative-agent points
    disorder -> organism). Edges may reference concepts that appear
    *later* in the stream (the curated core is a graph, not a tree), so
    stream consumers buffer edges until the concept pass completes.
    """

    concept: Concept
    parents: tuple[str, ...] = ()
    attributes: tuple[tuple[str, str], ...] = ()
    incoming: tuple[tuple[str, str], ...] = ()


def _core_entries() -> Iterator[ConceptEntry]:
    """The curated core as a stream of :class:`ConceptEntry` rows."""
    parents_of: dict[str, list[str]] = {}
    attributes_of: dict[str, list[tuple[str, str]]] = {}
    for child, parent in _CORE_IS_A:
        parents_of.setdefault(child, []).append(parent)
    for source, type, destination in _CORE_ATTRIBUTES:
        attributes_of.setdefault(source, []).append((type, destination))
    for code, term, synonyms, tag in _CORE_CONCEPTS:
        yield ConceptEntry(
            Concept(code, term, synonyms, tag,
                    _CORE_XREFS.get(code, ())),
            tuple(parents_of.get(code, ())),
            tuple(attributes_of.get(code, ())))
    # Pad Asthma to exactly 26 direct subclasses (paper Section IV-B).
    code_counter = 910000000
    for name in _ASTHMA_SUBTYPES:
        code = str(code_counter)
        code_counter += 1
        yield ConceptEntry(Concept(code, name, (), "disorder"),
                           (ASTHMA,),
                           ((FINDING_SITE_OF, BRONCHIAL_STRUCTURE),))
    existing = 1 + len(_ASTHMA_SUBTYPES)  # Asthma attack + named subtypes
    for index in range(_ASTHMA_DIRECT_SUBCLASSES - existing):
        code = str(code_counter)
        code_counter += 1
        yield ConceptEntry(
            Concept(code, f"Asthma variant type {index + 1}", (),
                    "disorder"),
            (ASTHMA,))


def materialize(entries: Iterator[ConceptEntry] | Sequence[ConceptEntry],
                validate: bool = True) -> Ontology:
    """Build an :class:`Ontology` from a stream of entries.

    Concepts land as they arrive; edges are buffered until the stream
    ends because they may point forward. Cycle checking is deferred to
    the single final :meth:`~Ontology.validate` toposort -- the
    incremental ancestor-walk check is quadratic over a bulk load.
    """
    ontology = Ontology(SNOMED_SYSTEM_CODE, SNOMED_NAME)
    edges: list[tuple[str, str, str]] = []
    for entry in entries:
        ontology.add_concept(entry.concept)
        source = entry.concept.code
        for parent in entry.parents:
            edges.append((source, IS_A, parent))
        for type, destination in entry.attributes:
            edges.append((source, type, destination))
        for origin, type in entry.incoming:
            edges.append((origin, type, source))
    for source, type, destination in edges:
        ontology.add_relationship(source, type, destination,
                                  check_cycles=False)
    if validate:
        ontology.validate()
    return ontology


def build_core_ontology() -> Ontology:
    """The curated clinical core: every concept the paper exercises."""
    return materialize(_core_entries())


# ----------------------------------------------------------------------
# Procedural expansion
# ----------------------------------------------------------------------
_ANATOMY_WORDS = (
    "valve", "septum", "artery", "vein", "chamber", "wall", "muscle",
    "node", "vessel", "outflow tract", "apex", "base", "membrane",
    "root", "arch", "trunk", "branch", "lobe", "segment", "duct",
)

_MORPHOLOGY_WORDS = (
    "stenosis", "dilatation", "hypertrophy", "inflammation", "defect",
    "obstruction", "insufficiency", "prolapse", "thrombosis", "ischemia",
    "atresia", "aneurysm", "fibrosis", "hypoplasia", "malformation",
    "rupture", "calcification", "degeneration", "edema", "infarction",
)

_SEVERITY_WORDS = ("acute", "chronic", "congenital", "acquired", "severe",
                   "mild", "recurrent", "transient", "progressive",
                   "idiopathic")

_DRUG_STEMS = ("card", "vent", "thora", "pulmo", "bronch", "angi", "vaso",
               "cor", "myo", "peri", "hemo", "oxy", "nitro", "beta")

_DRUG_SUFFIXES = ("olol", "arone", "azine", "icillin", "oxacin", "amide",
                  "idine", "april", "artan", "statin", "azole", "mycin",
                  "ipine", "osin")

#: Therapy-context association per drug class (generator).
_CLASS_CONTEXTS = {
    ANTIARRHYTHMIC_AGENT: ARRHYTHMIA_MANAGEMENT,
    BRONCHODILATOR: AIRWAY_MANAGEMENT,
    ANALGESIC: PAIN_CONTROL,
    ANTIBIOTIC: ANTIMICROBIAL_THERAPY,
}

_ORGANISM_WORDS = ("Streptococcus", "Staphylococcus", "Haemophilus",
                   "Mycoplasma", "Klebsiella", "Pseudomonas", "Candida",
                   "Enterococcus", "Moraxella", "Legionella")


#: Generated-concept budget at ``scale=1.0`` (groupers included).
_BASE_GENERATED = 355

#: Stage shares of the generated budget after the fixed groupers.
_ANATOMY_SHARE = 0.20
_DISORDER_SHARE = 0.50
_DRUG_SHARE = 0.25


class SyntheticSnomedBuilder:
    """Deterministic procedural expansion of the curated core.

    ``scale`` multiplies the generated-concept budget (``1.0`` yields
    ~500 concepts including the core); ``target_concepts`` sets an
    absolute total instead, sized for the 10^5-10^6 decade sweeps. The
    shape (fan-outs, DAG depth, synonym/xref density, attribute-edge
    density) follows SNOMED's at every size.

    :meth:`stream` yields :class:`ConceptEntry` rows one at a time
    without materializing a graph -- consumers that only need one pass
    (the persisted concept indexes, the content fingerprint) stay
    O(1)-ish in memory; :meth:`build` materializes an
    :class:`Ontology` from the same stream.

    All randomness flows from one ``random.Random(seed)`` instance
    threaded through every generation stage in a fixed order, so equal
    seeds give byte-identical ontologies (a regression test serializes
    two builds and compares bytes).
    """

    def __init__(self, scale: float = 1.0, seed: int = 20090331,
                 target_concepts: int | None = None) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        if target_concepts is not None and target_concepts < 1:
            raise ValueError("target_concepts must be positive")
        self.scale = scale
        self.seed = seed
        self.target_concepts = target_concepts
        self._next_code = 920000000

    # ------------------------------------------------------------------
    def build(self) -> Ontology:
        """Materialize the streamed expansion as an :class:`Ontology`."""
        return materialize(self.stream())

    def stream(self) -> Iterator[ConceptEntry]:
        """All concepts (core first, then generated), one entry each."""
        self._next_code = 920000000
        rng = random.Random(self.seed)
        core_count = 0
        for entry in _core_entries():
            core_count += 1
            yield entry
        budget = self._generated_budget(core_count)
        sites: list[tuple[str, str]] = [
            (HEART_STRUCTURE, "heart structure"),
            (LUNG_STRUCTURE, "lung structure"),
            (BRONCHIAL_STRUCTURE, "bronchial structure"),
            (AORTIC_STRUCTURE, "aortic structure"),
            (CARDIAC_VENTRICLE, "cardiac ventricular structure"),
            (ATRIUM_STRUCTURE, "cardiac atrium structure"),
            (REGION_OF_THORAX, "region of thorax")]
        disorders: list[str] = []
        groupers = min(budget, 43)
        remaining = budget - groupers
        anatomy_count = int(remaining * _ANATOMY_SHARE)
        disorder_count = int(remaining * _DISORDER_SHARE)
        drug_count = int(remaining * _DRUG_SHARE)
        organism_count = remaining - anatomy_count - disorder_count \
            - drug_count
        yield from self._generate_top_level_groupers(rng, groupers)
        yield from self._generate_anatomy(rng, anatomy_count, sites)
        yield from self._generate_disorders(rng, disorder_count, sites,
                                            disorders)
        yield from self._generate_drugs(rng, drug_count)
        yield from self._generate_organisms(rng, organism_count, disorders)

    def _generated_budget(self, core_count: int) -> int:
        if self.target_concepts is not None:
            return max(0, self.target_concepts - core_count)
        return int(_BASE_GENERATED * self.scale)

    def _fresh_code(self) -> str:
        code = str(self._next_code)
        self._next_code += 1
        return code

    # ------------------------------------------------------------------
    def _generate_top_level_groupers(self, rng: random.Random,
                                     budget: int,
                                     ) -> Iterator[ConceptEntry]:
        """High-level grouper concepts under each top axis.

        SNOMED's top concepts have dozens of direct children ("Clinical
        finding" alone has ~30). The fan-out matters beyond realism:
        the Taxonomy/Relationships upward flow divides by the target's
        direct-subclass count, so thin top levels would let authority
        spill across whole axes (see DESIGN.md).
        """
        systems = ("digestive", "nervous", "musculoskeletal", "endocrine",
                   "immune", "urinary", "integumentary", "hematologic",
                   "hepatic", "ocular", "auditory", "metabolic",
                   "lymphatic", "renal", "vascular", "gastrointestinal",
                   "neurologic", "dermatologic", "obstetric", "psychiatric")
        entries: list[ConceptEntry] = []
        for system in systems:
            entries.append(ConceptEntry(
                Concept(self._fresh_code(),
                        f"Disorder of {system} system", (), "disorder"),
                (CLINICAL_FINDING,)))
        for system in systems[:12]:
            entries.append(ConceptEntry(
                Concept(self._fresh_code(),
                        f"Structure of {system} system", (),
                        "body structure"),
                (BODY_STRUCTURE,)))
        for index in range(10):
            entries.append(ConceptEntry(
                Concept(self._fresh_code(),
                        f"Agent class {chr(ord('A') + index)}", (),
                        "product"),
                (PHARMACEUTICAL_PRODUCT,)))
        yield from entries[:budget]

    def _generate_anatomy(self, rng: random.Random, count: int,
                          sites: list[tuple[str, str]],
                          ) -> Iterator[ConceptEntry]:
        """Grow the body-structure axis; appends onto ``sites``."""
        organs = ("cardiac", "pulmonary", "bronchial", "aortic",
                  "ventricular", "atrial", "thoracic")
        for _ in range(count):
            parent_index = rng.randrange(len(sites))
            parent, _parent_term = sites[parent_index]
            organ = organs[parent_index % len(organs)]
            part = rng.choice(_ANATOMY_WORDS)
            qualifier = rng.choice(("left", "right", "anterior",
                                    "posterior", "superior", "inferior"))
            code = self._fresh_code()
            phrase = f"{qualifier} {organ} {part}"
            sites.append((code, phrase))  # allow deeper nesting
            yield ConceptEntry(
                Concept(code, f"Structure of {phrase}", (phrase,),
                        "body structure"),
                (parent,),
                ((PART_OF, parent),))

    def _generate_disorders(self, rng: random.Random, count: int,
                            sites: list[tuple[str, str]],
                            generated: list[str],
                            ) -> Iterator[ConceptEntry]:
        """Grow the clinical-finding axis; appends onto ``generated``."""
        # Intermediate taxonomy nodes receive most generated children so
        # their is-a fan-outs approach SNOMED's (tens of subclasses per
        # grouping concept); the fan-out is what gives the upward 1/N
        # authority split its bite.
        parents = [DISORDER_OF_HEART, CARDIAC_ARRHYTHMIA,
                   CONGENITAL_HEART_DISEASE, RESPIRATORY_DISORDER,
                   DISORDER_OF_THORAX, VALVULAR_REGURGITATION,
                   CARDIAC_FUNCTION_DISORDER, STRUCTURAL_HEART_DISORDER,
                   PERICARDIUM_DISORDER, GREAT_VESSEL_ANOMALY,
                   LOWER_RESPIRATORY_DISORDER]
        associated: set[tuple[str, str]] = set()
        base = len(parents)
        for index in range(count):
            # The first few passes round-robin the curated intermediates
            # so each is guaranteed a SNOMED-like fan-out (>= 5 direct
            # subclasses) before random assignment takes over.
            if index < base * 5:
                parent = parents[index % base]
            else:
                parent = rng.choice(parents)
            site, site_term = rng.choice(sites)
            site_words = site_term.removeprefix("Structure of ")
            morphology = rng.choice(_MORPHOLOGY_WORDS)
            severity = rng.choice(_SEVERITY_WORDS)
            code = self._fresh_code()
            term = f"{severity.capitalize()} {morphology} of {site_words}"
            synonyms = [f"{site_words} {morphology}"]
            if rng.random() < 0.15:
                # an acronym synonym, as SNOMED carries for many findings
                initials = "".join(word[0] for word in term.split()
                                   if word[0].isalpha()).upper()
                synonyms.append(initials)
            xrefs: tuple[tuple[str, str], ...] = ()
            if rng.random() < 0.6:
                icd = (f"{rng.choice('IJKQR')}{rng.randrange(10, 100)}"
                       f".{rng.randrange(0, 10)}")
                xrefs = ((ICD10_SYSTEM_CODE, icd),)
            attributes: list[tuple[str, str]] = [(FINDING_SITE_OF, site)]
            if rng.random() < 0.25 and generated:
                other = rng.choice(generated)
                if other != code and (code, other) not in associated:
                    associated.add((code, other))
                    attributes.append((ASSOCIATED_WITH, other))
            generated.append(code)
            entry_parents: tuple[str, ...] = (parent,)
            yield ConceptEntry(
                Concept(code, term, tuple(synonyms), "disorder", xrefs),
                entry_parents, tuple(attributes))
            if rng.random() < 0.3:
                parents.append(code)

    def _generate_drugs(self, rng: random.Random, count: int,
                        ) -> Iterator[ConceptEntry]:
        """Grow the pharmaceutical axis."""
        classes = [ANTIARRHYTHMIC_AGENT, BRONCHODILATOR, ANALGESIC,
                   ANTIBIOTIC, DIURETIC, PHARMACEUTICAL_PRODUCT]
        seen_names: dict[str, int] = {}
        for _ in range(count):
            stem = rng.choice(_DRUG_STEMS)
            suffix = rng.choice(_DRUG_SUFFIXES)
            name = (stem + suffix).capitalize()
            repeat = seen_names.get(name, 0)
            seen_names[name] = repeat + 1
            if repeat:
                name = f"{name} {repeat + 1}"
            code = self._fresh_code()
            synonyms: tuple[str, ...] = ()
            if rng.random() < 0.3:
                synonyms = (f"{name} hydrochloride",)
            xrefs = ()
            if rng.random() < 0.5:
                xrefs = ((RXNORM_SYSTEM_CODE,
                          str(rng.randrange(10000, 999999))),)
            drug_class = rng.choice(classes)
            attributes = []
            context = _CLASS_CONTEXTS.get(drug_class)
            if context is not None:
                attributes.append((ASSOCIATED_WITH, context))
            yield ConceptEntry(
                Concept(code, name, synonyms, "product", xrefs),
                (drug_class,), tuple(attributes))

    def _generate_organisms(self, rng: random.Random, count: int,
                            disorders: list[str],
                            ) -> Iterator[ConceptEntry]:
        """An organism axis feeding causative-agent links."""
        root = self._fresh_code()
        yield ConceptEntry(Concept(root, "Organism", (), "organism"))
        species = ("pneumoniae", "aureus", "influenzae", "pyogenes",
                   "faecalis", "aeruginosa", "albicans")
        count = max(4, count - 1)
        seen_names: dict[str, int] = {}
        caused: set[tuple[str, str]] = set()
        for _ in range(count):
            genus = rng.choice(_ORGANISM_WORDS)
            name = f"{genus} {rng.choice(species)}"
            repeat = seen_names.get(name, 0)
            seen_names[name] = repeat + 1
            if repeat:
                name = f"{name} strain {repeat + 1}"
            code = self._fresh_code()
            incoming: tuple[tuple[str, str], ...] = ()
            if disorders and rng.random() < 0.7:
                disorder = rng.choice(disorders)
                if (disorder, code) not in caused:
                    caused.add((disorder, code))
                    incoming = ((disorder, CAUSATIVE_AGENT),)
            yield ConceptEntry(Concept(code, name, (), "organism"),
                               (root,), incoming=incoming)


def build_synthetic_snomed(scale: float = 1.0, seed: int = 20090331,
                           target_concepts: int | None = None) -> Ontology:
    """Build the full synthetic SNOMED: curated core + expansion."""
    return SyntheticSnomedBuilder(scale=scale, seed=seed,
                                  target_concepts=target_concepts).build()
