"""Ontology substrate: concept graphs, the DL view, terminology lookup.

A faithful stand-in for SNOMED CT and the NLM UMLS API the paper uses:
:mod:`~repro.ontology.model` is the generic concept graph,
:mod:`~repro.ontology.snomed` builds the synthetic SNOMED,
:mod:`~repro.ontology.description_logic` materializes Section IV-C's
EL view, :mod:`~repro.ontology.api` is the terminology service and
:mod:`~repro.ontology.io` the RF2-shaped flat-file persistence.
"""

from .api import TerminologyService
from .description_logic import (AtomicConcept, Conjunction, DLNode, DLView,
                                ELConcept, ExistentialRestriction,
                                Subsumption, TopConcept, apply_axiom,
                                conjunction_of, existential_code,
                                existential_name, ontology_axioms)
from .io import load_ontology, save_ontology
from .model import IS_A, Concept, Ontology, OntologyError, Relationship
from .similarity import SimilarityMeasures
from .snomed import (SNOMED_NAME, SNOMED_SYSTEM_CODE, SyntheticSnomedBuilder,
                     build_core_ontology, build_synthetic_snomed)

__all__ = [
    "AtomicConcept", "Concept", "Conjunction", "DLNode", "DLView",
    "ELConcept", "ExistentialRestriction", "IS_A", "Ontology",
    "OntologyError", "Relationship", "SNOMED_NAME", "SNOMED_SYSTEM_CODE",
    "SimilarityMeasures", "Subsumption", "SyntheticSnomedBuilder",
    "TerminologyService",
    "TopConcept", "apply_axiom", "build_core_ontology",
    "build_synthetic_snomed", "conjunction_of", "existential_code",
    "existential_name", "load_ontology", "ontology_axioms", "save_ontology",
]
