"""Concept-graph ontology model (paper Section II, "SNOMED CT").

The paper views an ontology as "a graph, where the nodes represent
concepts, and edges represent relationships between concepts": every
concept has one or more natural-language terms, hierarchical *is-a*
relationships forming a DAG, and other typed relationships describing
clinical attributes (finding-site-of, causative-agent, ...).

This module is ontology-agnostic; :mod:`repro.ontology.snomed` builds a
SNOMED-CT-shaped instance of it.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Iterable, Iterator

#: SNOMED CT's relationship-type code for the subclass relationship.
IS_A = "is-a"


@dataclass(frozen=True)
class Concept:
    """A unit of knowledge in the ontology.

    ``code`` is the concept's identifier within its ontological system
    (SNOMED codes are numeric strings such as ``"195967001"``);
    ``preferred_term`` is the display name; ``synonyms`` are additional
    natural-language terms describing the same concept; ``xrefs`` are
    cross-references into *other* code systems as ``(system_code,
    foreign_code)`` pairs (SNOMED ships these as ICD-10 / LOINC map
    refsets -- they carry no term text, so they never feed IR scoring).
    """

    code: str
    preferred_term: str
    synonyms: tuple[str, ...] = ()
    semantic_tag: str = ""
    xrefs: tuple[tuple[str, str], ...] = ()

    @property
    def terms(self) -> tuple[str, ...]:
        """All natural-language terms, preferred term first."""
        return (self.preferred_term, *self.synonyms)

    def description_text(self) -> str:
        """The concept's textual description for IR purposes.

        Concatenation of all terms (and the semantic tag, which SNOMED
        displays in parentheses after the fully-specified name).
        """
        parts = list(self.terms)
        if self.semantic_tag:
            parts.append(self.semantic_tag)
        return " ".join(parts)


@dataclass(frozen=True)
class Relationship:
    """A typed, directed edge ``source --type--> destination``.

    For ``type == IS_A`` the edge points from the subclass to its direct
    superclass, as in SNOMED RF2 (``Asthma --is-a--> Disorder of
    Bronchus``). Attribute relationships point from the defined concept to
    the filler (``Asthma Attack --finding-site-of--> Bronchial
    Structure``, read as ``Asthma Attack ⊑ ∃finding-site-of.Bronchial
    Structure`` in the description-logic view of Section IV-C).
    """

    source: str
    type: str
    destination: str


class OntologyError(ValueError):
    """Raised on structurally invalid ontology operations."""


class FingerprintAccumulator:
    """Order-independent content fingerprint over ontology rows.

    Each concept and relationship hashes to one fixed-size row digest;
    the fingerprint is the SHA-256 of the *sorted* row digests plus a
    header naming the system. Sorting makes the result independent of
    insertion order, so a streaming generator (which never materializes
    the graph) and :meth:`Ontology.fingerprint` (which walks a built
    graph) agree byte for byte on the same content.
    """

    _VERSION = "XOF1"
    #: Field/record separators (control characters never appear in
    #: terms, codes or tags, so rows cannot collide by concatenation).
    _FS = "\x1d"
    _RS = "\x1e"
    _PS = "\x1f"

    def __init__(self, system_code: str, name: str = "") -> None:
        header = self._FS.join((self._VERSION, system_code,
                                name or system_code))
        self._header = header.encode("utf-8")
        self._rows: list[bytes] = []

    def add_concept(self, concept: Concept) -> None:
        row = self._FS.join((
            "C", concept.code, concept.preferred_term,
            self._RS.join(concept.synonyms), concept.semantic_tag,
            self._RS.join(f"{system}{self._PS}{code}"
                          for system, code in concept.xrefs)))
        self._rows.append(hashlib.sha256(row.encode("utf-8")).digest())

    def add_relationship(self, source: str, type: str,
                         destination: str) -> None:
        row = self._FS.join(("R", source, type, destination))
        self._rows.append(hashlib.sha256(row.encode("utf-8")).digest())

    def hexdigest(self) -> str:
        digest = hashlib.sha256(self._header)
        for row in sorted(self._rows):
            digest.update(row)
        return digest.hexdigest()


class Ontology:
    """A mutable concept graph with the adjacency indexes XOntoRank needs.

    ``system_code`` identifies the ontological system; CDA code nodes
    reference concepts as ``(system_code, concept_code)`` pairs.
    """

    def __init__(self, system_code: str, name: str = "") -> None:
        self.system_code = system_code
        self.name = name or system_code
        self._concepts: dict[str, Concept] = {}
        self._relationships: list[Relationship] = []
        self._edge_set: set[Relationship] = set()
        # is-a adjacency: child -> parents, parent -> children
        self._parents: dict[str, list[str]] = defaultdict(list)
        self._children: dict[str, list[str]] = defaultdict(list)
        # attribute-relationship adjacency (everything except is-a)
        self._outgoing: dict[str, list[Relationship]] = defaultdict(list)
        self._incoming: dict[str, list[Relationship]] = defaultdict(list)
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_concept(self, concept: Concept) -> Concept:
        if concept.code in self._concepts:
            raise OntologyError(f"duplicate concept code {concept.code}")
        self._concepts[concept.code] = concept
        self._fingerprint = None
        return concept

    def new_concept(self, code: str, preferred_term: str,
                    synonyms: Iterable[str] = (),
                    semantic_tag: str = "") -> Concept:
        """Create and register a concept; convenience for builders."""
        return self.add_concept(Concept(code, preferred_term,
                                        tuple(synonyms), semantic_tag))

    def add_relationship(self, source: str, type: str,
                         destination: str,
                         check_cycles: bool = True) -> Relationship:
        """Add a typed edge. Duplicate edges are rejected.

        ``is-a`` edges are checked against cycle creation: the taxonomy
        must remain a DAG (Section IV-B: "cycles are not permitted based
        on subclass relationships"). The check walks the destination's
        ancestor closure, which is quadratic over a bulk load; a builder
        whose edge order provably cannot close a cycle (every new edge
        leaves a freshly created leaf) passes ``check_cycles=False`` and
        relies on the final :meth:`validate` toposort instead.
        """
        for code in (source, destination):
            if code not in self._concepts:
                raise OntologyError(f"unknown concept {code}")
        if source == destination:
            raise OntologyError(f"self-loop on {source}")
        edge = Relationship(source, type, destination)
        if edge in self._edge_set:
            raise OntologyError(f"duplicate relationship {edge}")
        if (check_cycles and type == IS_A
                and self.is_subsumed_by(destination, source)):
            raise OntologyError(
                f"is-a edge {source} -> {destination} would create a cycle")
        self._fingerprint = None
        self._edge_set.add(edge)
        self._relationships.append(edge)
        if type == IS_A:
            self._parents[source].append(destination)
            self._children[destination].append(source)
        else:
            self._outgoing[source].append(edge)
            self._incoming[destination].append(edge)
        return edge

    def add_is_a(self, child: str, parent: str) -> Relationship:
        return self.add_relationship(child, IS_A, parent)

    def has_relationship(self, source: str, type: str,
                         destination: str) -> bool:
        return Relationship(source, type, destination) in self._edge_set

    # ------------------------------------------------------------------
    # Concept access
    # ------------------------------------------------------------------
    def __contains__(self, code: str) -> bool:
        return code in self._concepts

    def __len__(self) -> int:
        return len(self._concepts)

    def concept(self, code: str) -> Concept:
        try:
            return self._concepts[code]
        except KeyError:
            raise OntologyError(f"unknown concept {code}") from None

    def concepts(self) -> Iterator[Concept]:
        return iter(self._concepts.values())

    def concept_codes(self) -> Iterator[str]:
        return iter(self._concepts.keys())

    def relationships(self) -> Iterator[Relationship]:
        return iter(self._relationships)

    def relationship_count(self) -> int:
        return len(self._relationships)

    def relationship_types(self) -> set[str]:
        """All edge types present, including ``is-a`` when used."""
        return {edge.type for edge in self._relationships}

    # ------------------------------------------------------------------
    # Taxonomic structure (is-a DAG)
    # ------------------------------------------------------------------
    def parents(self, code: str) -> list[str]:
        """Direct superclasses of a concept."""
        self.concept(code)
        return list(self._parents.get(code, ()))

    def children(self, code: str) -> list[str]:
        """Direct subclasses of a concept."""
        self.concept(code)
        return list(self._children.get(code, ()))

    def subclass_count(self, code: str) -> int:
        """Number of *direct* subclasses.

        This is the in-degree of the concept in the is-a DAG, the divisor
        of the paper's upward authority flow (Section IV-B: the 1/26
        factor in the Asthma example).
        """
        self.concept(code)
        return len(self._children.get(code, ()))

    def ancestors(self, code: str) -> set[str]:
        """All proper superclasses, transitively."""
        return self._closure(code, self._parents)

    def descendants(self, code: str) -> set[str]:
        """All proper subclasses, transitively."""
        return self._closure(code, self._children)

    def is_subsumed_by(self, code: str, ancestor: str) -> bool:
        """Whether ``code`` is-a ``ancestor`` (reflexive subsumption)."""
        if code == ancestor:
            return code in self._concepts
        return ancestor in self.ancestors(code)

    def roots(self) -> list[str]:
        """Concepts with no superclass (SNOMED's top-level axes)."""
        return [code for code in self._concepts if not self._parents.get(code)]

    def _closure(self, code: str, adjacency: dict[str, list[str]],
                 ) -> set[str]:
        self.concept(code)
        seen: set[str] = set()
        queue = deque(adjacency.get(code, ()))
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(adjacency.get(current, ()))
        return seen

    # ------------------------------------------------------------------
    # Attribute relationships
    # ------------------------------------------------------------------
    def outgoing(self, code: str, type: str | None = None,
                 ) -> list[Relationship]:
        """Non-taxonomic edges leaving a concept, optionally by type."""
        self.concept(code)
        edges = self._outgoing.get(code, ())
        if type is None:
            return list(edges)
        return [edge for edge in edges if edge.type == type]

    def incoming(self, code: str, type: str | None = None,
                 ) -> list[Relationship]:
        """Non-taxonomic edges arriving at a concept, optionally by type."""
        self.concept(code)
        edges = self._incoming.get(code, ())
        if type is None:
            return list(edges)
        return [edge for edge in edges if edge.type == type]

    def role_in_degree(self, destination: str, type: str) -> int:
        """Number of concepts bearing relationship ``type`` to a filler.

        This is ``N(∃r.C)``, the in-degree of the existential role
        restriction in the description-logic view (Section VI-C).
        """
        return len(self.incoming(destination, type))

    # ------------------------------------------------------------------
    # Undirected view (Section IV-A)
    # ------------------------------------------------------------------
    def neighbors(self, code: str) -> list[str]:
        """Adjacent concepts ignoring direction and edge type.

        The Graph strategy "treats the ontology as an undirected graph,
        with no distinction among the different kinds of relationships".
        Duplicates from parallel edges are collapsed; order is stable.
        """
        self.concept(code)
        seen: set[str] = set()
        adjacent: list[str] = []
        for other in self._parents.get(code, ()):
            if other not in seen:
                seen.add(other)
                adjacent.append(other)
        for other in self._children.get(code, ()):
            if other not in seen:
                seen.add(other)
                adjacent.append(other)
        for edge in self._outgoing.get(code, ()):
            if edge.destination not in seen:
                seen.add(edge.destination)
                adjacent.append(edge.destination)
        for edge in self._incoming.get(code, ()):
            if edge.source not in seen:
                seen.add(edge.source)
                adjacent.append(edge.source)
        return adjacent

    # ------------------------------------------------------------------
    # Statistics / integrity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content fingerprint (hex SHA-256) of the whole graph.

        Identical content -- concepts (terms, tags, xrefs) plus edges,
        regardless of insertion order -- yields an identical digest; any
        mutation changes it. Versioned persistent artifacts derived from
        an ontology (concept indexes, the OntoScore expansion cache) key
        on this digest to detect staleness. The digest is cached until
        the next mutation, so repeated reads are free.
        """
        if self._fingerprint is None:
            accumulator = FingerprintAccumulator(self.system_code,
                                                 self.name)
            for concept in self._concepts.values():
                accumulator.add_concept(concept)
            for edge in self._relationships:
                accumulator.add_relationship(edge.source, edge.type,
                                             edge.destination)
            self._fingerprint = accumulator.hexdigest()
        return self._fingerprint

    def stats(self) -> dict[str, int]:
        """Size summary used by benchmarks and documentation."""
        is_a_count = sum(len(parents) for parents in self._parents.values())
        return {
            "concepts": len(self._concepts),
            "relationships": len(self._relationships),
            "is_a_edges": is_a_count,
            "attribute_edges": len(self._relationships) - is_a_count,
            "roots": len(self.roots()),
            "relationship_types": len(self.relationship_types()),
        }

    def validate(self) -> None:
        """Check structural invariants; raises :class:`OntologyError`.

        * every edge endpoint exists;
        * the is-a graph is acyclic (verified by topological sort, cheap
          enough to re-run even though :meth:`add_relationship` prevents
          cycle creation incrementally).
        """
        for edge in self._relationships:
            if edge.source not in self._concepts:
                raise OntologyError(f"dangling source {edge.source}")
            if edge.destination not in self._concepts:
                raise OntologyError(f"dangling destination {edge.destination}")
        in_degree = {code: len(self._parents.get(code, ()))
                     for code in self._concepts}
        queue = deque(code for code, degree in in_degree.items()
                      if degree == 0)
        visited = 0
        while queue:
            code = queue.popleft()
            visited += 1
            for child in self._children.get(code, ()):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if visited != len(self._concepts):
            raise OntologyError("is-a graph contains a cycle")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Ontology {self.name!r} concepts={len(self._concepts)} "
                f"relationships={len(self._relationships)}>")
