"""Dependency-free HTTP/1.1 plumbing for the asyncio front-end.

The serving layer must run on the standard library alone, so this
module implements the narrow slice of HTTP/1.1 the API needs: parse a
request head (method + target + headers) off an asyncio stream, decode
the query string, and serialize a response with keep-alive handling.
No chunked bodies, no TLS, no pipelining guarantees beyond
read-one/write-one per round trip -- the endpoints are all small GET
requests and the load generator drives them exactly that way.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

#: Hard cap on an incoming request head; longer heads answer 431.
MAX_HEAD_BYTES = 16 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class BadRequest(Exception):
    """Malformed request head (answered 400 and the connection closed)."""


@dataclass
class Request:
    """One parsed request head."""

    method: str
    target: str
    path: str
    params: dict[str, str]
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def param(self, name: str, default: str | None = None) -> str | None:
        return self.params.get(name, default)


async def read_request(reader: asyncio.StreamReader,
                       ) -> Request | None:
    """Parse one request head; None on a cleanly closed connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # peer closed between requests: normal
        raise BadRequest("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise BadRequest("request head too large") from None
    if len(head) > MAX_HEAD_BYTES:
        raise BadRequest("request head too large")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise BadRequest("undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if headers.get("content-length", "0") not in ("", "0"):
        # All endpoints are GET; drain the body so keep-alive framing
        # stays aligned, then reject.
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise BadRequest("malformed content-length") from None
        await reader.readexactly(min(length, MAX_HEAD_BYTES))
        raise BadRequest("request bodies are not supported")
    split = urlsplit(target)
    params = {name: values[-1] for name, values
              in parse_qs(split.query, keep_blank_values=True).items()}
    return Request(method=method, target=target, path=split.path,
                   params=params, headers=headers)


def render_response(status: int, body: bytes | str | dict, *,
                    headers: dict[str, str] | None = None,
                    keep_alive: bool = True) -> bytes:
    """Serialize one full HTTP/1.1 response (dict bodies become JSON)."""
    if isinstance(body, dict):
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        content_type = "application/json"
    elif isinstance(body, str):
        payload = body.encode("utf-8")
        content_type = "text/plain; charset=utf-8"
    else:
        payload = body
        content_type = "application/octet-stream"
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(payload)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + payload
