"""The always-on serving layer (``repro serve``).

Turns the library into a long-lived HTTP service with the robustness
properties the CLI's one-shot processes cannot offer:

* **warm engines** -- indexes are loaded once and reused, so a request
  pays only query-time work (see ``benchmarks/bench_serving.py`` for
  the measured gap against per-query CLI startup);
* **admission control** -- a bounded worker pool plus a bounded queue;
  excess load is shed immediately with 429 instead of collapsing
  latency for everyone (:class:`~repro.server.admission.AdmissionController`);
* **deadlines** -- every request carries a time budget that propagates
  through retry backoff and the top-k merge
  (:class:`~repro.core.deadline.Deadline`); expiry yields a partial
  result or 504, never an unbounded wait;
* **graceful degradation** -- a per-shard circuit breaker
  (:class:`~repro.server.breaker.CircuitBreaker`) converts a failing
  shard store into degraded-but-successful responses (the
  ``X-Degraded-Shards`` header) instead of an error storm;
* **single-flight coalescing** -- identical in-flight queries share one
  evaluation (:class:`~repro.server.coalesce.Coalescer`);
* **lifecycle** -- ``/healthz``, ``/readyz``, ``/metrics`` and a
  SIGTERM drain that finishes in-flight work before exiting.

The package splits a synchronous, independently testable service core
(:mod:`~repro.server.service`) from the asyncio HTTP front-end
(:mod:`~repro.server.app`); :mod:`~repro.server.http` holds the
dependency-free HTTP/1.1 plumbing.
"""

from .admission import AdmissionController
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .coalesce import Coalescer
from .service import SearchService, UnknownCorpusError
from .app import ServerApp, ServerConfig

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "Coalescer",
    "SearchService",
    "UnknownCorpusError",
    "ServerApp",
    "ServerConfig",
]
