"""The synchronous serving core: warm engines + breaker-aware search.

:class:`SearchService` owns one warm engine per named corpus and turns
raw shard failures into the serving policy the HTTP layer exposes:

* every request runs under an ambient deadline scope
  (:func:`~repro.core.deadline.deadline_scope`), so deadline awareness
  reaches layers that never see the request -- a
  :class:`~repro.storage.retrying.RetryingStore` stops backing off
  when the *request* is out of time, not just its own budget;
* each shard (a single engine counts as one shard) is guarded by a
  :class:`~repro.server.breaker.CircuitBreaker`; open breakers are
  skipped before any store access, shard ``StorageError`` failures are
  absorbed into a degraded-but-successful
  :class:`~repro.core.query.results.SearchOutcome` and charged to the
  breaker;
* :class:`~repro.core.deadline.DeadlineExceeded` deliberately
  propagates (it is **not** a storage fault -- a slow request must
  not trip a healthy shard's breaker).

The class is synchronous and event-loop-free on purpose: the chaos
acceptance test drives it directly from plain threads, and the asyncio
front-end (:mod:`repro.server.app`) only adds transport concerns on
top.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Callable, Iterator

from ..core.deadline import Deadline, deadline_scope
from ..core.query.engine import XOntoRankEngine
from ..core.query.federated import FederatedEngine
from ..core.query.results import SearchOutcome
from ..core.stats import (SERVER_DEGRADED_RESPONSES,
                          SERVER_PARTIAL_RESPONSES, StatsRegistry)
from ..storage.errors import StorageError
from .breaker import CircuitBreaker


class UnknownCorpusError(KeyError):
    """Request named a corpus the service does not hold (HTTP 404)."""


class CorpusHandle:
    """One served corpus: its warm engine plus per-shard breakers."""

    def __init__(self, name: str,
                 engine: "XOntoRankEngine | FederatedEngine",
                 breakers: list[CircuitBreaker]) -> None:
        self.name = name
        self.engine = engine
        self.breakers = breakers
        self._narrative_mapper = None
        self._narrative_lock = threading.Lock()

    @property
    def shard_count(self) -> int:
        return len(self.breakers)

    def breaker_states(self) -> list[str]:
        return [breaker.state for breaker in self.breakers]

    def narrative_mapper(self):
        """The corpus's narrative mapper, built lazily on first use.

        Per-request opt-in (``narrative=1``) must not mutate the warm
        engine's pipeline -- a globally inserted stage would remap
        every concurrent curated query -- so the mapper lives here and
        the service applies it per request. Raises ``ValueError`` when
        the engine has no terminology to map against (XRANK corpora).
        """
        with self._narrative_lock:
            if self._narrative_mapper is None:
                terminology = getattr(self.engine, "terminology", None)
                if terminology is None:
                    raise ValueError(
                        f"corpus {self.name!r} has no ontology; "
                        f"narrative mapping is unavailable")
                from ..core.query.narrative import NarrativeQueryMapper
                self._narrative_mapper = NarrativeQueryMapper(
                    terminology, stats=self.engine.stats)
            return self._narrative_mapper


class SearchService:
    """Warm, breaker-guarded query execution over named corpora."""

    def __init__(self, stats: StatsRegistry | None = None, *,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 2.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.stats = stats if stats is not None else StatsRegistry()
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._clock = clock
        self._corpora: dict[str, CorpusHandle] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Corpus registry
    # ------------------------------------------------------------------
    def add_corpus(self, name: str,
                   engine: "XOntoRankEngine | FederatedEngine",
                   ) -> CorpusHandle:
        """Register a warm engine under ``name`` (one breaker per
        shard; a plain engine is one shard)."""
        shards = (engine.shard_count
                  if isinstance(engine, FederatedEngine) else 1)
        breakers = [CircuitBreaker(self._breaker_threshold,
                                   self._breaker_cooldown,
                                   clock=self._clock, stats=self.stats)
                    for _ in range(shards)]
        handle = CorpusHandle(name, engine, breakers)
        with self._lock:
            if name in self._corpora:
                raise ValueError(f"corpus {name!r} already registered")
            self._corpora[name] = handle
        return handle

    def corpus(self, name: str) -> CorpusHandle:
        with self._lock:
            try:
                return self._corpora[name]
            except KeyError:
                raise UnknownCorpusError(name) from None

    def corpora(self) -> Iterator[CorpusHandle]:
        with self._lock:
            handles = list(self._corpora.values())
        return iter(handles)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute(self, corpus: str, query, k: int | None = None,
                deadline: Deadline | None = None, *,
                narrative: bool = False) -> SearchOutcome:
        """One breaker-guarded, deadline-scoped search.

        ``narrative=True`` maps the query string through the corpus's
        clinical-narrative mapper first and annotates the outcome with
        the mapping provenance; the mapping happens once, before
        execution, so coalesced followers and shard fan-outs all see
        the same keywords. With ``narrative=False`` (the default) the
        path is byte-identical to before the mapper existed.

        Returns the (possibly degraded/partial) outcome; raises
        :class:`UnknownCorpusError` for an unregistered corpus and
        :class:`~repro.core.deadline.DeadlineExceeded` when the budget
        expired before anything could be served. StorageErrors never
        escape -- they become degraded shards.
        """
        handle = self.corpus(corpus)
        mapping = None
        if narrative and isinstance(query, str):
            mapping = handle.narrative_mapper().map(query)
            query = mapping.query
        with deadline_scope(deadline):
            if isinstance(handle.engine, FederatedEngine):
                outcome = self._execute_federated(handle, query, k,
                                                  deadline)
            else:
                outcome = self._execute_single(handle, query, k,
                                               deadline)
        if outcome.degraded_shards:
            self.stats.increment(SERVER_DEGRADED_RESPONSES)
        if outcome.partial:
            self.stats.increment(SERVER_PARTIAL_RESPONSES)
        if mapping is not None:
            outcome = replace(outcome, narrative=mapping)
        return outcome

    def _execute_federated(self, handle: CorpusHandle, query,
                           k: int | None,
                           deadline: Deadline | None) -> SearchOutcome:
        engine = handle.engine
        skip = frozenset(
            shard for shard, breaker in enumerate(handle.breakers)
            if not breaker.allow())
        failed: set[int] = set()
        failed_lock = threading.Lock()

        def on_shard_error(shard: int, error: StorageError) -> bool:
            # Absorb: the shard is served around, the breaker charged.
            with failed_lock:
                failed.add(shard)
            handle.breakers[shard].record_failure()
            return True

        outcome = engine.search_outcome(query, k, deadline=deadline,
                                        skip_shards=skip,
                                        on_shard_error=on_shard_error)
        for shard, breaker in enumerate(handle.breakers):
            if shard not in skip and shard not in failed:
                breaker.record_success()
        return outcome

    def _execute_single(self, handle: CorpusHandle, query,
                        k: int | None,
                        deadline: Deadline | None) -> SearchOutcome:
        breaker = handle.breakers[0]
        if not breaker.allow():
            # The whole corpus is one "shard": open breaker means a
            # fast degraded-empty answer instead of a doomed attempt.
            return SearchOutcome(results=[], degraded_shards=(0,))
        try:
            outcome = handle.engine.search_outcome(query, k=k,
                                                   deadline=deadline)
        except StorageError:
            breaker.record_failure()
            return SearchOutcome(results=[], degraded_shards=(0,))
        breaker.record_success()
        return outcome
