"""Admission control: bounded concurrency plus a bounded queue.

The server executes queries on a worker pool of ``max_concurrency``
threads. Without admission control, a burst beyond the pool size piles
unboundedly into the executor's internal queue and every queued request
eventually times out -- the classic latency collapse. The
:class:`AdmissionController` caps the pile: at most
``max_concurrency + max_queue`` requests may be in flight at once, and
anything beyond that is *shed immediately* (HTTP 429) while the server
is still healthy enough to say so.

The controller is a plain token counter under a lock rather than a
semaphore because admission must be non-blocking: a request either gets
a token *now* or is shed *now*; nothing ever waits for one.
"""

from __future__ import annotations

import threading

from ..core.stats import SERVER_ADMITTED, SERVER_SHED, StatsRegistry


class AdmissionController:
    """Non-blocking token-based admission for a bounded worker pool.

    ``capacity = max_concurrency + max_queue`` tokens exist;
    :meth:`try_admit` takes one or reports shedding, :meth:`release`
    returns one. Thread-safe; usable from the event loop and from
    worker threads alike.
    """

    def __init__(self, max_concurrency: int, max_queue: int = 0,
                 stats: StatsRegistry | None = None) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self._capacity = max_concurrency + max_queue
        self._in_flight = 0
        self._lock = threading.Lock()
        self._stats = stats

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_flight(self) -> int:
        """Requests currently holding a token."""
        with self._lock:
            return self._in_flight

    def try_admit(self) -> bool:
        """Take a token if one is free; never blocks.

        Returns True (admitted; caller must :meth:`release`) or False
        (shed; the caller answers 429 without touching the pool).
        """
        with self._lock:
            if self._in_flight >= self._capacity:
                shed = True
            else:
                self._in_flight += 1
                shed = False
        if self._stats is not None:
            self._stats.increment(SERVER_SHED if shed
                                  else SERVER_ADMITTED)
        return not shed

    def release(self) -> None:
        """Return a token taken by a successful :meth:`try_admit`."""
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError(
                    "release() without a matching try_admit()")
            self._in_flight -= 1
