"""The asyncio HTTP front-end over the synchronous serving core.

One event loop handles all connections; query evaluation (CPU-bound,
GIL-releasing only in SQLite) runs on a bounded thread pool sized to
the admission controller's concurrency. The loop therefore never
blocks on a query, and the three lifecycle endpoints stay responsive
even under full load -- the property the load-shedding contract
depends on (a shed request must cost microseconds).

Endpoints:

``GET /search?q=...&k=...&corpus=...&timeout_ms=...``
    Deadline-bounded top-k search. Degradation is visible, never
    silent: ``X-Degraded-Shards`` lists shards served around,
    ``X-Partial: 1`` flags a best-so-far prefix. 429 when shed, 504
    when the deadline expired before anything could be served.
``GET /healthz``
    Liveness: 200 whenever the process can answer at all.
``GET /readyz``
    Readiness: 200 only after every corpus is warm and validated, 503
    while warming and again while draining (load balancers stop
    routing before in-flight work finishes).
``GET /metrics``
    One consistent :meth:`~repro.core.stats.StatsRegistry.snapshot_all`
    scrape (counters + timers + epoch) plus live server state.

SIGTERM/SIGINT starts the graceful drain: stop accepting, flip
``/readyz`` to 503, wait up to ``drain_grace`` seconds for in-flight
requests, then exit 0.
"""

from __future__ import annotations

import asyncio
import functools
import signal
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..core.deadline import Deadline, DeadlineExceeded
from ..core.query.results import SearchOutcome
from ..core.stats import (SERVER_DEADLINE_TIMEOUTS, SERVER_DRAINED_INFLIGHT,
                          SERVER_ERRORS, SERVER_REQUEST_SECONDS,
                          SERVER_REQUESTS, StatsRegistry)
from .admission import AdmissionController
from .coalesce import Coalescer
from .http import BadRequest, Request, read_request, render_response
from .service import SearchService, UnknownCorpusError


class _Shed(Exception):
    """Internal: admission refused the request (becomes 429)."""


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one server process."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Worker threads evaluating queries (= max concurrent queries).
    max_concurrency: int = 4
    #: Admitted-but-waiting requests beyond the pool; more is shed.
    max_queue: int = 16
    #: Deadline applied when the request names none (0 = unbounded).
    default_timeout_ms: int = 2000
    #: Ceiling on client-requested timeouts.
    max_timeout_ms: int = 60_000
    #: Seconds the drain waits for in-flight requests on SIGTERM.
    drain_grace: float = 10.0

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.default_timeout_ms < 0 or self.drain_grace < 0:
            raise ValueError("timeouts must be >= 0")


class ServerApp:
    """Event loop, routes, worker pool, and lifecycle for one server."""

    def __init__(self, service: SearchService,
                 config: ServerConfig = ServerConfig(),
                 stats: StatsRegistry | None = None) -> None:
        self.service = service
        self.config = config
        self.stats = stats if stats is not None else service.stats
        self.admission = AdmissionController(config.max_concurrency,
                                             config.max_queue,
                                             stats=self.stats)
        self.coalescer = Coalescer(stats=self.stats)
        self._executor = ThreadPoolExecutor(
            max_workers=config.max_concurrency,
            thread_name_prefix="repro-serve")
        self._server: asyncio.AbstractServer | None = None
        self._ready = False
        self._draining = False
        self._http_inflight = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        return self._ready and not self._draining

    @property
    def draining(self) -> bool:
        return self._draining

    def mark_ready(self) -> None:
        """Flip ``/readyz`` to 200 (call after every corpus is warm)."""
        self._ready = True

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)

    @property
    def bound_port(self) -> int:
        """The actual port (resolves ``port=0`` ephemeral binds)."""
        assert self._server is not None, "start() must run first"
        return self._server.sockets[0].getsockname()[1]

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight work
        (up to ``drain_grace`` seconds), release the worker pool."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.stats.increment(SERVER_DRAINED_INFLIGHT,
                             self._http_inflight)
        loop = asyncio.get_running_loop()
        give_up = loop.time() + self.config.drain_grace
        while self._http_inflight > 0 and loop.time() < give_up:
            await asyncio.sleep(0.01)
        self._executor.shutdown(wait=False)

    async def serve_forever(self) -> None:
        """Run until SIGTERM/SIGINT, then drain and return."""
        if self._server is None:
            await self.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or unsupported platform
        try:
            await stop.wait()
        finally:
            await self.drain()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except BadRequest as error:
                    writer.write(render_response(
                        400, {"error": str(error)}, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                self._http_inflight += 1
                try:
                    status, body, headers = await self._dispatch(request)
                finally:
                    self._http_inflight -= 1
                self.stats.increment(f"server.responses.{status}")
                keep_alive = request.keep_alive and not self._draining
                writer.write(render_response(status, body,
                                             headers=headers,
                                             keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request: Request,
                        ) -> tuple[int, dict | str, dict[str, str]]:
        if request.method != "GET":
            return 405, {"error": "only GET is supported"}, {}
        if request.path == "/healthz":
            return 200, "ok\n", {}
        if request.path == "/readyz":
            if self._draining:
                return 503, "draining\n", {}
            if not self._ready:
                return 503, "warming\n", {}
            return 200, "ready\n", {}
        if request.path == "/metrics":
            return 200, self._metrics_body(), {}
        if request.path == "/search":
            return await self._handle_search(request)
        return 404, {"error": f"no route for {request.path}"}, {}

    # ------------------------------------------------------------------
    # /metrics
    # ------------------------------------------------------------------
    def _metrics_body(self) -> dict:
        scrape = self.stats.snapshot_all()
        return {
            "epoch": scrape.epoch,
            "counters": scrape.counters,
            "timers": {name: {"count": timer.count,
                              "total": timer.total,
                              "mean": timer.mean,
                              "p50": timer.p50,
                              "p95": timer.p95,
                              "p99": timer.p99,
                              "max": timer.maximum}
                       for name, timer in scrape.timers.items()},
            "server": {
                "ready": self.ready,
                "draining": self._draining,
                "in_flight": self.admission.in_flight,
                "capacity": self.admission.capacity,
                "corpora": {handle.name: {
                    "shards": handle.shard_count,
                    "breakers": handle.breaker_states()}
                    for handle in self.service.corpora()},
            },
        }

    # ------------------------------------------------------------------
    # /search
    # ------------------------------------------------------------------
    async def _handle_search(self, request: Request,
                             ) -> tuple[int, dict, dict[str, str]]:
        self.stats.increment(SERVER_REQUESTS)
        if self._draining:
            return 503, {"error": "draining"}, {}
        query = (request.param("q") or "").strip()
        if not query:
            return 400, {"error": "missing required parameter: q"}, {}
        corpus = request.param("corpus") or "default"
        narrative = (request.param("narrative") or "") \
            .lower() in ("1", "true", "yes")
        try:
            k = self._int_param(request, "k", minimum=1)
            timeout_ms = self._int_param(request, "timeout_ms",
                                         minimum=0)
        except ValueError as error:
            return 400, {"error": str(error)}, {}
        if timeout_ms is None:
            timeout_ms = self.config.default_timeout_ms
        timeout_ms = min(timeout_ms, self.config.max_timeout_ms)
        deadline = (Deadline.after(timeout_ms / 1000.0)
                    if timeout_ms > 0 else None)

        loop = asyncio.get_running_loop()

        async def lead() -> SearchOutcome:
            # Admission is charged to leaders only: a coalesced
            # follower consumes neither a token nor a worker thread.
            if not self.admission.try_admit():
                raise _Shed
            try:
                with self.stats.time(SERVER_REQUEST_SECONDS):
                    return await loop.run_in_executor(
                        self._executor,
                        functools.partial(self.service.execute, corpus,
                                          query, k, deadline,
                                          narrative=narrative))
            finally:
                self.admission.release()

        try:
            # The narrative flag is part of the coalescing key: a
            # narrative evaluation of the same text maps to different
            # keywords, so followers must not share its leader.
            outcome = await self.coalescer.run(
                (corpus, query, k, narrative), lead,
                timeout=(deadline.remaining()
                         if deadline is not None else None))
        except _Shed:
            return 429, {"error": "overloaded, request shed"}, \
                {"Retry-After": "1"}
        except UnknownCorpusError:
            return 404, {"error": f"unknown corpus: {corpus}"}, {}
        except DeadlineExceeded as error:
            self.stats.increment(SERVER_DEADLINE_TIMEOUTS)
            return 504, {"error": f"deadline exceeded: {error}"}, {}
        except ValueError as error:
            return 400, {"error": str(error)}, {}
        except Exception as error:  # the 500 backstop
            self.stats.increment(SERVER_ERRORS)
            return 500, {"error": f"{type(error).__name__}: {error}"}, {}

        headers: dict[str, str] = {}
        if outcome.degraded_shards:
            headers["X-Degraded-Shards"] = ",".join(
                str(shard) for shard in outcome.degraded_shards)
        if outcome.partial:
            headers["X-Partial"] = "1"
        body = {
            "query": query,
            "corpus": corpus,
            "k": k,
            "partial": outcome.partial,
            "degraded_shards": list(outcome.degraded_shards),
            "results": [{"rank": rank,
                         "score": round(result.score, 6),
                         "doc_id": result.doc_id,
                         "dewey": result.dewey.encode()}
                        for rank, result
                        in enumerate(outcome.results, start=1)],
        }
        if outcome.narrative is not None:
            mapping = outcome.narrative
            body["narrative"] = {
                "mapped_query": str(mapping.query),
                "mappings": [{"phrase": m.phrase,
                              "method": m.method,
                              "concept": m.concept_code,
                              "term": m.term,
                              "weight": round(m.weight, 4)}
                             for m in mapping.mappings],
            }
        return 200, body, headers

    @staticmethod
    def _int_param(request: Request, name: str,
                   minimum: int) -> int | None:
        raw = request.param(name)
        if raw is None or raw == "":
            return None
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"{name} must be an integer, "
                             f"got {raw!r}") from None
        if value < minimum:
            raise ValueError(f"{name} must be >= {minimum}, "
                             f"got {value}")
        return value
