"""Single-flight coalescing of identical in-flight queries.

A hot query (think a dashboard every clinician has open) arriving N
times concurrently should cost one evaluation, not N. The
:class:`Coalescer` keys in-flight work by ``(corpus, query, k)``: the
first arrival (the *leader*) runs the evaluation; every identical
request arriving while it runs (a *follower*) awaits the leader's
future and consumes **no admission token and no worker thread** --
coalesced followers are invisible to the load-shedding math.

Followers keep their own deadlines: each waits at most its own
remaining budget and times out independently (a follower with 50 ms
left gets 504 even though the leader, with 500 ms, eventually
succeeds). The leader's future is shielded so a follower timing out or
disconnecting never cancels the shared evaluation.

This class is asyncio-level (single event loop); the cross-thread
safety of the underlying evaluation is the service core's concern.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Hashable, TypeVar

from ..core.deadline import DeadlineExceeded
from ..core.stats import SERVER_COALESCED, StatsRegistry

Result = TypeVar("Result")


class Coalescer:
    """Map of in-flight keys to shared asyncio futures."""

    def __init__(self, stats: StatsRegistry | None = None) -> None:
        self._inflight: dict[Hashable, asyncio.Future] = {}
        self._stats = stats

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def leading(self, key: Hashable) -> bool:
        """Would a request for ``key`` be the leader right now?"""
        return key not in self._inflight

    async def run(self, key: Hashable,
                  factory: Callable[[], Awaitable[Result]],
                  timeout: float | None = None) -> Result:
        """Run ``factory`` once per concurrent batch of ``key``.

        The leader executes ``factory()`` and publishes the result (or
        exception) to every follower. Followers wait up to ``timeout``
        seconds (their own deadline's remainder; None = forever) and
        raise :class:`~repro.core.deadline.DeadlineExceeded` when it
        elapses first -- without disturbing the leader.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            if self._stats is not None:
                self._stats.increment(SERVER_COALESCED)
            try:
                return await asyncio.wait_for(asyncio.shield(existing),
                                              timeout)
            except asyncio.TimeoutError:
                raise DeadlineExceeded(
                    "deadline exceeded while waiting on the "
                    "coalesced in-flight query") from None

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            result = await factory()
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                # A batch with zero followers never awaits the future;
                # mark the exception retrieved so asyncio doesn't log
                # a spurious "exception was never retrieved".
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(result)
            return result
        finally:
            self._inflight.pop(key, None)
