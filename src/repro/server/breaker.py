"""A per-shard circuit breaker for the degraded serving mode.

When a shard's store starts failing (every read raising
:class:`~repro.storage.errors.TransientStorageError` or
:class:`~repro.storage.errors.CorruptIndexError`), retrying it on every
request burns the request's deadline on a shard that cannot answer.
The breaker converts that into fast, *bounded* degradation:

``CLOSED``
    Healthy. Requests flow; ``failure_threshold`` *consecutive*
    failures trip the breaker to ``OPEN``.
``OPEN``
    Tripped. :meth:`allow` answers False (the serving layer skips the
    shard entirely -- no store access, no deadline spent) until
    ``cooldown`` seconds have passed.
``HALF_OPEN``
    Probation. After the cooldown, exactly **one** request is let
    through as a probe; its success resets the breaker to ``CLOSED``
    (full fidelity resumes), its failure re-trips to ``OPEN`` for
    another cooldown. Concurrent requests during the probe stay
    skipped, so a still-broken shard sees one request per cooldown
    instead of the full load.

The clock is injectable, so breaker tests never sleep. Thread-safe:
the serving layer calls it from many worker threads.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..core.stats import (SERVER_BREAKER_FAILURES, SERVER_BREAKER_PROBES,
                          SERVER_BREAKER_RESETS, SERVER_BREAKER_TRIPS,
                          StatsRegistry)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a single-probe half-open state."""

    def __init__(self, failure_threshold: int = 3,
                 cooldown: float = 2.0,
                 clock: Callable[[], float] = time.monotonic,
                 stats: StatsRegistry | None = None) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._stats = stats
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._probe_started = 0.0

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` (open reported as
        half_open only once a probe actually started)."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a request touch the guarded shard right now?

        In ``OPEN`` past the cooldown this *takes* the single probe
        slot as a side effect: the first caller gets True (and must
        report the outcome via :meth:`record_success` /
        :meth:`record_failure`), every other caller gets False until
        the probe resolves. A probe whose request died without
        reporting (e.g. its deadline expired, which is deliberately
        breaker-neutral) goes stale after one cooldown and the slot is
        handed to the next caller -- the shard can never get stuck
        permanently skipped.
        """
        probe = False
        with self._lock:
            if self._state == CLOSED:
                return True
            now = self._clock()
            if self._state == OPEN \
                    and now - self._opened_at >= self.cooldown:
                self._state = HALF_OPEN
                probe = True
            elif self._state == HALF_OPEN \
                    and (not self._probing
                         or now - self._probe_started >= self.cooldown):
                probe = True
            if probe:
                self._probing = True
                self._probe_started = now
        if probe and self._stats is not None:
            self._stats.increment(SERVER_BREAKER_PROBES)
        return probe

    def record_success(self) -> None:
        """A guarded operation succeeded: reset to ``CLOSED``."""
        reset = False
        with self._lock:
            self._consecutive_failures = 0
            self._probing = False
            if self._state != CLOSED:
                self._state = CLOSED
                reset = True
        if reset and self._stats is not None:
            self._stats.increment(SERVER_BREAKER_RESETS)

    def record_failure(self) -> None:
        """A guarded operation failed: count it, trip at the threshold
        (a failed half-open probe re-trips immediately)."""
        tripped = False
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False
                tripped = True
            elif (self._state == CLOSED
                  and self._consecutive_failures
                  >= self.failure_threshold):
                self._state = OPEN
                self._opened_at = self._clock()
                tripped = True
        if self._stats is not None:
            self._stats.increment(SERVER_BREAKER_FAILURES)
            if tripped:
                self._stats.increment(SERVER_BREAKER_TRIPS)
