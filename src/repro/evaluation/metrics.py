"""Survey protocol and quality metrics for the Table I experiment.

Section VII-A's methodology: "For each query, we presented to the user
the union of the top-5 results from each of the four algorithms. The
user was asked to select up to 5 results that he found relevant to the
query." Table I then reports, per algorithm, how many of *its* top-5
results were judged relevant.

Two readings of that protocol are implemented:

* ``independent`` (default): each algorithm's top-5 list is judged
  directly -- its count is the number of relevant results it returned
  (relevant@5 · 5). Stable and per-algorithm decoupled.
* ``union``: the literal presentation protocol -- the union is shown
  best-score-first and the (simulated) expert marks at most five
  relevant results overall; an algorithm is only credited for marked
  results. With more than five relevant results in the union this
  couples the algorithms' counts through the mark budget; we keep it
  for fidelity but report the independent reading.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.query.engine import XOntoRankEngine
from ..core.query.results import QueryResult
from ..ir.tokenizer import KeywordQuery
from ..xmldoc.dewey import DeweyID
from .oracle import RelevanceOracle, expert_selection


@dataclass
class SurveyRow:
    """One Table I row: per-strategy relevant-result counts."""

    query_id: str
    query_text: str
    counts: dict[str, int]
    marked: set[str]


def run_survey(engines: dict[str, XOntoRankEngine],
               oracle: RelevanceOracle, query_text: str,
               query_id: str = "", k: int = 5, mark_limit: int = 5,
               protocol: str = "independent") -> SurveyRow:
    """Run one query through every engine and judge the top-k lists."""
    if protocol not in ("independent", "union"):
        raise ValueError(f"unknown survey protocol {protocol!r}")
    query = KeywordQuery.parse(query_text)
    top_lists: dict[str, list[QueryResult]] = {
        name: engine.search(query, k=k)
        for name, engine in engines.items()}

    best_score: dict[str, float] = {}
    fragments: dict[str, object] = {}
    for name, results in top_lists.items():
        engine = engines[name]
        for result in results:
            key = result.dewey.encode()
            if result.score > best_score.get(key, float("-inf")):
                best_score[key] = result.score
            if key not in fragments:
                fragments[key] = engine.fragment(result)

    if protocol == "independent":
        marked = {key for key, fragment in fragments.items()
                  if oracle.is_relevant(query, fragment)}
        counts = {name: min(mark_limit,
                            sum(1 for result in results
                                if result.dewey.encode() in marked))
                  for name, results in top_lists.items()}
        return SurveyRow(query_id=query_id, query_text=query_text,
                         counts=counts, marked=marked)

    # Literal union protocol: best-score-first presentation, at most
    # `mark_limit` marks overall.
    presentation = sorted(fragments,
                          key=lambda key: (-best_score[key],
                                           DeweyID.parse(key)))
    marked = expert_selection(
        oracle, query,
        [(key, fragments[key]) for key in presentation],
        limit=mark_limit)
    counts = {name: sum(1 for result in results
                        if result.dewey.encode() in marked)
              for name, results in top_lists.items()}
    return SurveyRow(query_id=query_id, query_text=query_text,
                     counts=counts, marked=marked)


def precision_at_k(results: list[QueryResult], relevant_keys: set[str],
                   k: int) -> float:
    """Fraction of the top-k results that are relevant."""
    if k < 1:
        raise ValueError("k must be positive")
    top = results[:k]
    if not top:
        return 0.0
    hits = sum(1 for result in top
               if result.dewey.encode() in relevant_keys)
    return hits / len(top)


def recall_at_k(results: list[QueryResult], relevant_keys: set[str],
                k: int) -> float:
    """Fraction of the relevant set found in the top-k results."""
    if k < 1:
        raise ValueError("k must be positive")
    if not relevant_keys:
        return 0.0
    hits = sum(1 for result in results[:k]
               if result.dewey.encode() in relevant_keys)
    return hits / len(relevant_keys)
