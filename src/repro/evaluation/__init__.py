"""Evaluation substrate: top-k Kendall tau, the expert relevance oracle,
the published query workload, and the survey protocol of Section VII."""

from .kendall import (average_matrices, distance_matrix, kendall_tau_topk)
from .metrics import (SurveyRow, precision_at_k, recall_at_k, run_survey)
from .oracle import Judgment, RelevanceOracle, expert_selection
from .workload import (NARRATIVE_WORKLOAD, PUBLISHED, RECONSTRUCTED,
                       STOPWORD_GLUE, SYNONYM_PHRASING, SYNTHESIZED,
                       TABLE1_WORKLOAD, WORKLOAD, NarrativeVariant,
                       WorkloadQuery, narrative_queries, table1_queries,
                       table2_queries)

__all__ = [
    "Judgment", "NARRATIVE_WORKLOAD", "NarrativeVariant", "PUBLISHED",
    "RECONSTRUCTED", "RelevanceOracle", "STOPWORD_GLUE",
    "SYNONYM_PHRASING", "SYNTHESIZED", "SurveyRow", "TABLE1_WORKLOAD",
    "WORKLOAD", "WorkloadQuery", "average_matrices", "distance_matrix",
    "expert_selection", "kendall_tau_topk", "narrative_queries",
    "precision_at_k", "recall_at_k", "run_survey", "table1_queries",
    "table2_queries",
]
