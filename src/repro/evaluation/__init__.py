"""Evaluation substrate: top-k Kendall tau, the expert relevance oracle,
the published query workload, and the survey protocol of Section VII."""

from .kendall import (average_matrices, distance_matrix, kendall_tau_topk)
from .metrics import (SurveyRow, precision_at_k, recall_at_k, run_survey)
from .oracle import Judgment, RelevanceOracle, expert_selection
from .workload import (PUBLISHED, RECONSTRUCTED, SYNTHESIZED,
                       TABLE1_WORKLOAD, WORKLOAD, WorkloadQuery,
                       table1_queries, table2_queries)

__all__ = [
    "Judgment", "PUBLISHED", "RECONSTRUCTED", "RelevanceOracle",
    "SYNTHESIZED", "SurveyRow", "TABLE1_WORKLOAD", "WORKLOAD",
    "WorkloadQuery", "average_matrices", "distance_matrix",
    "expert_selection", "kendall_tau_topk", "precision_at_k",
    "recall_at_k", "run_survey", "table1_queries", "table2_queries",
]
