"""Simulated domain-expert relevance judgment (paper Section VII-A).

The paper's quality survey asked a single pediatric-cardiology expert to
mark, for each query, up to five relevant results from the union of the
four algorithms' top-5 lists. We replace the human with a deterministic
oracle encoding the judgment patterns the paper reports:

* an **exact textual match** of every keyword is relevant (the expert
  marked all of XRANK's results relevant);
* a fragment satisfies a keyword through the ontology only under
  *clinically sound* mappings:

  - the fragment's concept equals the keyword's concept, or is a
    **more specific** subclass of it (a carbapenem query is satisfied by
    an imipenem order);
  - a **far ancestor** is *not* accepted -- "the Taxonomy algorithm
    could return results where a query keyword is matched to a far
    ancestor concept", which the expert penalized;
  - an anatomical keyword is satisfied by a disorder whose
    **finding site** is (a subclass of) that anatomy (an Asthma entry
    satisfies "Bronchial Structure");
  - a disorder keyword is satisfied by a **drug indicated for it** (the
    intro's motivating behavior: a Theophylline entry answers an
    asthma-related query) -- the indication may be the queried disorder,
    a subclass, or a direct superclass (amiodarone, indicated for
    cardiac arrhythmia, satisfies "supraventricular arrhythmia");
  - a **sibling drug is rejected** even when the ontology relates it to
    the queried drug through a shared context: "acetaminophen [mapped]
    to aspirin [...] in this specific case [...] these drugs are
    generally unrelated" -- the acetaminophen/aspirin trap that zeroes
    the ontology-aware algorithms on Table I's last query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.tokenizer import Keyword, KeywordQuery, contains_phrase, tokenize
from ..ontology.api import TerminologyService
from ..ontology.model import Ontology
from ..ontology.snomed import (ASSOCIATED_WITH, DUE_TO, FINDING_SITE_OF,
                               MAY_TREAT)
from ..xmldoc.model import TextPolicy, XMLNode


@dataclass
class Judgment:
    """The oracle's verdict on one result fragment."""

    relevant: bool
    reasons: list[str] = field(default_factory=list)


class RelevanceOracle:
    """Deterministic stand-in for the paper's medical expert."""

    def __init__(self, ontology: Ontology,
                 terminology: TerminologyService | None = None,
                 text_policy: TextPolicy | None = None,
                 max_subsumption_depth: int = 3) -> None:
        self._ontology = ontology
        self._terminology = terminology or TerminologyService([ontology])
        self._text_policy = text_policy
        if max_subsumption_depth < 1:
            raise ValueError("max_subsumption_depth must be positive")
        self._max_depth = max_subsumption_depth

    # ------------------------------------------------------------------
    def judge(self, query: KeywordQuery | str, fragment: XMLNode,
              ) -> Judgment:
        """Whether a result fragment is relevant to the query."""
        parsed = (KeywordQuery.parse(query) if isinstance(query, str)
                  else query)
        judgment = Judgment(relevant=True)
        for keyword in parsed:
            reason = self._keyword_satisfied(keyword, fragment)
            if reason is None:
                judgment.relevant = False
                judgment.reasons.append(f"{keyword}: not satisfied")
            else:
                judgment.reasons.append(f"{keyword}: {reason}")
        return judgment

    def is_relevant(self, query: KeywordQuery | str,
                    fragment: XMLNode) -> bool:
        return self.judge(query, fragment).relevant

    # ------------------------------------------------------------------
    def _keyword_satisfied(self, keyword: Keyword,
                           fragment: XMLNode) -> str | None:
        tokens = tokenize(fragment.subtree_text(self._text_policy))
        if self._textual_match(keyword, tokens):
            return "exact textual match"
        keyword_concepts = self._keyword_concepts(keyword)
        if not keyword_concepts:
            return None
        for node in fragment.iter():
            if node.reference is None:
                continue
            if node.reference.system_code != self._ontology.system_code:
                continue
            candidate = node.reference.concept_code
            if candidate not in self._ontology:
                continue
            reason = self._concept_acceptable(candidate, keyword_concepts)
            if reason is not None:
                return reason
        return None

    @staticmethod
    def _textual_match(keyword: Keyword, tokens: list[str]) -> bool:
        if keyword.is_phrase:
            return contains_phrase(tokens, keyword.tokens)
        return keyword.tokens[0] in tokens

    def _keyword_concepts(self, keyword: Keyword) -> set[str]:
        """The concepts the expert reads the keyword as naming."""
        concepts = {concept.code for concept
                    in self._terminology.lookup_term(
                        keyword.text, self._ontology.system_code)}
        return concepts

    # ------------------------------------------------------------------
    def _concept_acceptable(self, candidate: str,
                            keyword_concepts: set[str]) -> str | None:
        """Clinically sound concept-level mappings, per the paper's
        reported judgments."""
        ontology = self._ontology
        for target in keyword_concepts:
            if candidate == target:
                return "same concept"
            # A *near* subclass is a sound specialization; a bridge over
            # many taxonomy levels is the "far ancestor" mapping the
            # paper's expert rejected.
            if self._near_subclass(candidate, target):
                return "more specific concept"
            if ontology.concept(target).semantic_tag == "product":
                # A drug keyword names that drug: nothing but the drug
                # itself or a subclass satisfies it (the expert rejected
                # aspirin for acetaminophen despite their ontological
                # association).
                continue
            # Anatomical keyword satisfied by a disorder located there.
            if self._finding_site_match(candidate, target):
                return "finding site of the fragment's disorder"
            # Disorder keyword satisfied by a drug indicated for it.
            # Note the asymmetry: a *drug* keyword is never satisfied by
            # a different drug (the acetaminophen/aspirin rejection).
            if self._indication_match(candidate, target):
                return "drug indicated for the queried disorder"
            # One defining attribute edge between the two concepts is a
            # clinically sound association ("the ontology-enabled
            # algorithms find relevant results by mapping the keyword's
            # concept to other concepts present in the documents").
            # Multi-hop chains -- like acetaminophen-aspirin through the
            # shared pain-control context -- remain rejected.
            if self._direct_relation_match(candidate, target):
                return "directly related concept"
        return None

    def _direct_relation_match(self, candidate: str, target: str) -> bool:
        """One defining edge between target and the candidate -- or a
        concept the candidate nearly specializes. A clinician composes
        one role edge with subsumption: "neonatal cyanosis is due to
        congenital heart disease, and coarctation is one" makes a
        coarctation record relevant to a neonatal-cyanosis query."""
        ontology = self._ontology
        composable = (DUE_TO, ASSOCIATED_WITH, MAY_TREAT)
        for edge in (*ontology.outgoing(target),
                     *ontology.incoming(target)):
            endpoint = (edge.destination if edge.source == target
                        else edge.source)
            if candidate == endpoint:
                return True
            # Compose subsumption only over causal/associative edges:
            # "cyanosis is due to congenital heart disease, coarctation
            # is one" is sound; "SVA is found in the atrium, X is an
            # atrium subpart" is not evidence of SVA.
            if edge.type in composable and \
                    self._near_subclass(candidate, endpoint):
                return True
        return False

    def _near_subclass(self, candidate: str, target: str) -> bool:
        """Whether ``candidate`` is-a ``target`` within the depth bound."""
        frontier = {candidate}
        for _ in range(self._max_depth):
            frontier = {parent for code in frontier
                        for parent in self._ontology.parents(code)}
            if target in frontier:
                return True
            if not frontier:
                return False
        return False

    def _indication_match(self, candidate: str, target: str) -> bool:
        """Whether ``candidate`` (a drug) is indicated for ``target``
        (a disorder), exactly, for a subclass, or for a direct
        superclass of it."""
        ontology = self._ontology
        for edge in ontology.outgoing(candidate, MAY_TREAT):
            indication = edge.destination
            if indication == target:
                return True
            if ontology.is_subsumed_by(indication, target):
                return True
            if indication in ontology.parents(target):
                return True
        return False

    def _finding_site_match(self, candidate: str, target: str) -> bool:
        """Whether ``candidate`` (a disorder) has ``target`` (anatomy)
        as a finding site, directly or via inherited definitions."""
        sources = {candidate} | self._ontology.ancestors(candidate)
        for source in sources:
            for edge in self._ontology.outgoing(source, FINDING_SITE_OF):
                site = edge.destination
                if site == target or self._ontology.is_subsumed_by(
                        site, target):
                    return True
        return False


def expert_selection(oracle: RelevanceOracle, query: KeywordQuery | str,
                     fragments: list[tuple[str, XMLNode]],
                     limit: int = 5) -> set[str]:
    """The survey protocol: mark up to ``limit`` relevant results.

    ``fragments`` are (result key, fragment) pairs in presentation
    order; the expert marks relevant ones top-down until the cap.
    """
    marked: set[str] = set()
    for key, fragment in fragments:
        if len(marked) >= limit:
            break
        if oracle.is_relevant(query, fragment):
            marked.add(key)
    return marked
