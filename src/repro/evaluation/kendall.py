"""Top-k Kendall tau distance with penalty parameter p (Fagin, Kumar &
Sivakumar, "Comparing top k lists", SODA 2003 -- the paper's [26]).

Table II reports pairwise distances between the top-k result lists of
the four approaches using this measure. For two top-k lists ``τ1, τ2``
(rankings of possibly different item sets), every unordered pair
``{i, j}`` of items appearing in ``τ1 ∪ τ2`` contributes a penalty:

* **both in both lists**: 1 if the lists order them oppositely, else 0;
* **i and j in one list, only i in the other**: 0 if the shared list
  ranks i above j (consistent with j being absent, i.e. ranked below
  top-k), else 1;
* **i only in τ1, j only in τ2**: 1 (each list implies its own member
  ranks higher -- a certain disagreement);
* **both in exactly one list** (the other list contains neither): the
  penalty parameter ``p ∈ [0, 1]`` -- "we have absolutely no
  information", p interpolates between optimistic (0) and neutral (1/2)
  and pessimistic (1) readings.

The normalized distance divides by the value a pair of disjoint lists
would score, so it always lies in [0, 1].
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Sequence

Item = Hashable


def kendall_tau_topk(list_a: Sequence[Item], list_b: Sequence[Item],
                     p: float = 0.5, normalize: bool = True) -> float:
    """K^(p) distance between two top-k lists.

    Lists must be duplicate-free; they may have different lengths (the
    published definition assumes equal k, which the callers ensure, but
    the measure is well-defined regardless).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    rank_a = _ranks(list_a, "first")
    rank_b = _ranks(list_b, "second")
    universe = set(rank_a) | set(rank_b)
    if not universe:
        return 0.0

    distance = 0.0
    for i, j in combinations(sorted(universe, key=repr), 2):
        distance += _pair_penalty(i, j, rank_a, rank_b, p)
    if not normalize:
        return distance
    maximum = _max_distance(len(list_a), len(list_b), p)
    if maximum == 0.0:
        return 0.0
    return distance / maximum


def _ranks(items: Sequence[Item], label: str) -> dict[Item, int]:
    ranks: dict[Item, int] = {}
    for position, item in enumerate(items):
        if item in ranks:
            raise ValueError(f"duplicate item {item!r} in {label} list")
        ranks[item] = position
    return ranks


def _pair_penalty(i: Item, j: Item, rank_a: dict[Item, int],
                  rank_b: dict[Item, int], p: float) -> float:
    in_a = (i in rank_a, j in rank_a)
    in_b = (i in rank_b, j in rank_b)
    # Case 1: both items in both lists.
    if all(in_a) and all(in_b):
        opposite = ((rank_a[i] < rank_a[j]) != (rank_b[i] < rank_b[j]))
        return 1.0 if opposite else 0.0
    # Case 4: both items confined to a single list.
    if all(in_a) and not any(in_b):
        return p
    if all(in_b) and not any(in_a):
        return p
    # Case 2: both in one list, exactly one of them in the other.
    if all(in_a):
        present = i if in_b[0] else j
        missing = j if present is i else i
        return 0.0 if rank_a[present] < rank_a[missing] else 1.0
    if all(in_b):
        present = i if in_a[0] else j
        missing = j if present is i else i
        return 0.0 if rank_b[present] < rank_b[missing] else 1.0
    # Case 3: i exclusive to one list, j exclusive to the other.
    return 1.0


def _max_distance(size_a: int, size_b: int, p: float) -> float:
    """Distance of two fully disjoint lists of these sizes."""
    cross_pairs = size_a * size_b
    within_a = size_a * (size_a - 1) / 2.0
    within_b = size_b * (size_b - 1) / 2.0
    return cross_pairs + p * (within_a + within_b)


def distance_matrix(lists: dict[str, Sequence[Item]],
                    p: float = 0.5) -> dict[tuple[str, str], float]:
    """Pairwise normalized distances between named top-k lists
    (the cells of Table II for one query)."""
    names = sorted(lists)
    matrix: dict[tuple[str, str], float] = {}
    for first in names:
        for second in names:
            if first == second:
                matrix[(first, second)] = 0.0
            elif (second, first) in matrix:
                matrix[(first, second)] = matrix[(second, first)]
            else:
                matrix[(first, second)] = kendall_tau_topk(
                    lists[first], lists[second], p=p)
    return matrix


def average_matrices(matrices: Sequence[dict[tuple[str, str], float]],
                     ) -> dict[tuple[str, str], float]:
    """Cell-wise mean over per-query matrices ("normalized over 20
    queries", Table II)."""
    if not matrices:
        return {}
    keys = matrices[0].keys()
    for matrix in matrices:
        if matrix.keys() != keys:
            raise ValueError("matrices cover different strategy pairs")
    return {key: sum(matrix[key] for matrix in matrices) / len(matrices)
            for key in keys}
