"""The experimental query workload (paper Section VII-A, Table I).

The paper evaluates "a series of two-keyword queries obtained from
domain expert collaborators", showing ten of them in Table I and using
twenty for the Kendall-tau comparison. The OCR of Table I preserves the
query terms but not their pairing; the pairings below follow the
surviving fragments and the paper's own analysis (e.g. the
["supraventricular arrhythmia", acetaminophen] query is discussed
verbatim in the text). Queries 11-20 are same-style two-keyword expert
queries over the same clinical domain, added to reach the paper's
twenty; each entry records its provenance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.tokenizer import KeywordQuery

#: Provenance labels.
PUBLISHED = "published"        # pairing supported by the paper text
RECONSTRUCTED = "reconstructed"  # terms from Table I, pairing inferred
SYNTHESIZED = "synthesized"    # same-style addition to reach 20 queries


@dataclass(frozen=True)
class WorkloadQuery:
    """One expert query with its identifier and provenance."""

    query_id: str
    text: str
    provenance: str

    def parse(self) -> KeywordQuery:
        return KeywordQuery.parse(self.text)


#: The Table I queries (Q1-Q10) plus the Kendall-tau extension (Q11-Q20).
WORKLOAD: tuple[WorkloadQuery, ...] = (
    WorkloadQuery("Q1", '"cardiac arrest" "coarctation"', RECONSTRUCTED),
    WorkloadQuery("Q2", '"neonatal cyanosis" carbapenem', RECONSTRUCTED),
    WorkloadQuery("Q3", 'ibuprofen "supraventricular arrhythmia"',
                  RECONSTRUCTED),
    WorkloadQuery("Q4", '"pericardial effusion" "regurgitant flow"',
                  RECONSTRUCTED),
    WorkloadQuery("Q5", 'amiodarone "supraventricular arrhythmia"',
                  RECONSTRUCTED),
    WorkloadQuery("Q6", '"supraventricular arrhythmia" acetaminophen',
                  PUBLISHED),
    # The paper's workload is dominated by queries whose keywords never
    # co-occur textually ("For the remaining queries, XRANK does not
    # produce any results"); Q7/Q8 pair an anatomical concept with a
    # drug to preserve that property on any corpus.
    WorkloadQuery("Q7", '"bronchial structure" theophylline',
                  SYNTHESIZED),
    WorkloadQuery("Q8", '"heart structure" epinephrine', SYNTHESIZED),
    WorkloadQuery("Q9", 'asthma theophylline', SYNTHESIZED),
    WorkloadQuery("Q10", '"atrial fibrillation" digoxin', SYNTHESIZED),
    WorkloadQuery("Q11", 'cyanosis "tetralogy of fallot"', SYNTHESIZED),
    WorkloadQuery("Q12", '"ventricular septal defect" furosemide',
                  SYNTHESIZED),
    WorkloadQuery("Q13", '"cardiac arrest" amiodarone', SYNTHESIZED),
    WorkloadQuery("Q14", 'bronchitis albuterol', SYNTHESIZED),
    WorkloadQuery("Q15", 'pneumonia meropenem', SYNTHESIZED),
    WorkloadQuery("Q16", '"mitral valve" regurgitation', SYNTHESIZED),
    WorkloadQuery("Q17", '"pericardial effusion" furosemide',
                  SYNTHESIZED),
    WorkloadQuery("Q18", 'fever acetaminophen', SYNTHESIZED),
    WorkloadQuery("Q19", '"supraventricular tachycardia" propranolol',
                  SYNTHESIZED),
    WorkloadQuery("Q20", 'coarctation "aortic structure"', SYNTHESIZED),
)

#: The subset shown in Table I.
TABLE1_WORKLOAD: tuple[WorkloadQuery, ...] = WORKLOAD[:10]

#: Narrative-variant styles.
STOPWORD_GLUE = "glue"        # curated terms embedded in stopword glue
SYNONYM_PHRASING = "synonym"  # at least one term replaced by a synonym


@dataclass(frozen=True)
class NarrativeVariant:
    """A free-text paraphrase of one curated workload query.

    The paper's workload assumes curated keyword queries; the narrative
    front-end relaxes that to clinical prose. Each variant restates a
    curated query the way a chart note would: the same clinical content
    wrapped in function words (``glue``), optionally phrased through an
    ontology synonym instead of the preferred term (``synonym``). Glue
    tokens are drawn exclusively from the tokenizer's stopword list so
    the curated query remains the variant's exact information content.
    """

    variant_id: str
    query_id: str   # the curated WorkloadQuery this paraphrases
    text: str       # the clinical-narrative phrasing
    style: str      # STOPWORD_GLUE or SYNONYM_PHRASING


#: One narrative paraphrase per curated query. The synonym-style rows
#: use phrasings attested in the synthetic SNOMED's synonym lists
#: (paracetamol/acetaminophen, adrenaline/epinephrine, SVT, ...).
NARRATIVE_WORKLOAD: tuple[NarrativeVariant, ...] = (
    NarrativeVariant("N1", "Q1",
                     "was in cardiac arrest with coarctation",
                     STOPWORD_GLUE),
    NarrativeVariant("N2", "Q2",
                     "neonatal cyanosis and was on a carbapenem",
                     STOPWORD_GLUE),
    NarrativeVariant("N3", "Q3",
                     "on ibuprofen for a supraventricular arrhythmia",
                     STOPWORD_GLUE),
    NarrativeVariant("N4", "Q4",
                     "pericardial effusion with regurgitant flow",
                     STOPWORD_GLUE),
    NarrativeVariant("N5", "Q5",
                     "was on amiodarone for supraventricular arrhythmia",
                     STOPWORD_GLUE),
    NarrativeVariant("N6", "Q6",
                     "supraventricular arrhythmia and was on paracetamol",
                     SYNONYM_PHRASING),
    NarrativeVariant("N7", "Q7",
                     "theophylline for the bronchial structure",
                     STOPWORD_GLUE),
    NarrativeVariant("N8", "Q8",
                     "adrenaline to the heart structure",
                     SYNONYM_PHRASING),
    NarrativeVariant("N9", "Q9",
                     "has bronchial asthma and is on theophylline",
                     SYNONYM_PHRASING),
    NarrativeVariant("N10", "Q10",
                     "atrial fibrillation and on digoxin",
                     STOPWORD_GLUE),
    NarrativeVariant("N11", "Q11",
                     "cyanosis from tetralogy of fallot",
                     STOPWORD_GLUE),
    NarrativeVariant("N12", "Q12",
                     "a ventricular septal defect and on furosemide",
                     STOPWORD_GLUE),
    NarrativeVariant("N13", "Q13",
                     "was in cardiopulmonary arrest and is on amiodarone",
                     SYNONYM_PHRASING),
    NarrativeVariant("N14", "Q14",
                     "bronchitis and on salbutamol",
                     SYNONYM_PHRASING),
    NarrativeVariant("N15", "Q15",
                     "pneumonia and was on meropenem",
                     STOPWORD_GLUE),
    NarrativeVariant("N16", "Q16",
                     "the mitral valve with regurgitation",
                     STOPWORD_GLUE),
    NarrativeVariant("N17", "Q17",
                     "pericardial effusion and on furosemide",
                     STOPWORD_GLUE),
    NarrativeVariant("N18", "Q18",
                     "febrile and was on acetaminophen",
                     SYNONYM_PHRASING),
    NarrativeVariant("N19", "Q19",
                     "has svt and is on propranolol",
                     SYNONYM_PHRASING),
    NarrativeVariant("N20", "Q20",
                     "coarctation at the aortic structure",
                     STOPWORD_GLUE),
)


def table1_queries() -> list[WorkloadQuery]:
    """The ten Table I rows."""
    return list(TABLE1_WORKLOAD)


def table2_queries() -> list[WorkloadQuery]:
    """The twenty queries the Kendall-tau matrix averages over."""
    return list(WORKLOAD)


def narrative_queries() -> list[tuple[WorkloadQuery, NarrativeVariant]]:
    """Each curated query paired with its narrative paraphrase."""
    by_id = {query.query_id: query for query in WORKLOAD}
    return [(by_id[variant.query_id], variant)
            for variant in NARRATIVE_WORKLOAD]
