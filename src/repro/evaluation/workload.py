"""The experimental query workload (paper Section VII-A, Table I).

The paper evaluates "a series of two-keyword queries obtained from
domain expert collaborators", showing ten of them in Table I and using
twenty for the Kendall-tau comparison. The OCR of Table I preserves the
query terms but not their pairing; the pairings below follow the
surviving fragments and the paper's own analysis (e.g. the
["supraventricular arrhythmia", acetaminophen] query is discussed
verbatim in the text). Queries 11-20 are same-style two-keyword expert
queries over the same clinical domain, added to reach the paper's
twenty; each entry records its provenance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.tokenizer import KeywordQuery

#: Provenance labels.
PUBLISHED = "published"        # pairing supported by the paper text
RECONSTRUCTED = "reconstructed"  # terms from Table I, pairing inferred
SYNTHESIZED = "synthesized"    # same-style addition to reach 20 queries


@dataclass(frozen=True)
class WorkloadQuery:
    """One expert query with its identifier and provenance."""

    query_id: str
    text: str
    provenance: str

    def parse(self) -> KeywordQuery:
        return KeywordQuery.parse(self.text)


#: The Table I queries (Q1-Q10) plus the Kendall-tau extension (Q11-Q20).
WORKLOAD: tuple[WorkloadQuery, ...] = (
    WorkloadQuery("Q1", '"cardiac arrest" "coarctation"', RECONSTRUCTED),
    WorkloadQuery("Q2", '"neonatal cyanosis" carbapenem', RECONSTRUCTED),
    WorkloadQuery("Q3", 'ibuprofen "supraventricular arrhythmia"',
                  RECONSTRUCTED),
    WorkloadQuery("Q4", '"pericardial effusion" "regurgitant flow"',
                  RECONSTRUCTED),
    WorkloadQuery("Q5", 'amiodarone "supraventricular arrhythmia"',
                  RECONSTRUCTED),
    WorkloadQuery("Q6", '"supraventricular arrhythmia" acetaminophen',
                  PUBLISHED),
    # The paper's workload is dominated by queries whose keywords never
    # co-occur textually ("For the remaining queries, XRANK does not
    # produce any results"); Q7/Q8 pair an anatomical concept with a
    # drug to preserve that property on any corpus.
    WorkloadQuery("Q7", '"bronchial structure" theophylline',
                  SYNTHESIZED),
    WorkloadQuery("Q8", '"heart structure" epinephrine', SYNTHESIZED),
    WorkloadQuery("Q9", 'asthma theophylline', SYNTHESIZED),
    WorkloadQuery("Q10", '"atrial fibrillation" digoxin', SYNTHESIZED),
    WorkloadQuery("Q11", 'cyanosis "tetralogy of fallot"', SYNTHESIZED),
    WorkloadQuery("Q12", '"ventricular septal defect" furosemide',
                  SYNTHESIZED),
    WorkloadQuery("Q13", '"cardiac arrest" amiodarone', SYNTHESIZED),
    WorkloadQuery("Q14", 'bronchitis albuterol', SYNTHESIZED),
    WorkloadQuery("Q15", 'pneumonia meropenem', SYNTHESIZED),
    WorkloadQuery("Q16", '"mitral valve" regurgitation', SYNTHESIZED),
    WorkloadQuery("Q17", '"pericardial effusion" furosemide',
                  SYNTHESIZED),
    WorkloadQuery("Q18", 'fever acetaminophen', SYNTHESIZED),
    WorkloadQuery("Q19", '"supraventricular tachycardia" propranolol',
                  SYNTHESIZED),
    WorkloadQuery("Q20", 'coarctation "aortic structure"', SYNTHESIZED),
)

#: The subset shown in Table I.
TABLE1_WORKLOAD: tuple[WorkloadQuery, ...] = WORKLOAD[:10]


def table1_queries() -> list[WorkloadQuery]:
    """The ten Table I rows."""
    return list(TABLE1_WORKLOAD)


def table2_queries() -> list[WorkloadQuery]:
    """The twenty queries the Kendall-tau matrix averages over."""
    return list(WORKLOAD)
