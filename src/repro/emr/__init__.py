"""EMR substrate: the relational source database the CDA corpus is built
from, plus its synthetic pediatric-cardiology generator."""

from .database import EMRDatabase, IntegrityError
from .schema import (ClinicalNote, Diagnosis, Encounter, LabResult,
                     MedicationOrder, Patient, PatientGroundTruth,
                     ProcedureRecord, Provider, VitalSign)
from .synth import (CardiacEMRGenerator, ConditionProfile, SynthConfig,
                    generate_cardiac_emr)

__all__ = [
    "CardiacEMRGenerator", "ClinicalNote", "ConditionProfile", "Diagnosis",
    "EMRDatabase", "Encounter", "IntegrityError", "LabResult",
    "MedicationOrder",
    "Patient", "PatientGroundTruth", "ProcedureRecord", "Provider",
    "SynthConfig", "VitalSign", "generate_cardiac_emr",
]
