"""Synthetic pediatric-cardiology EMR generator (substitute substrate).

Stands in for "the relational anonymized EMR database of the Cardiac
Division of a local hospital" (Section VII): a seeded generator that
populates :class:`~repro.emr.database.EMRDatabase` with patients of a
children's cardiac clinic. Diagnoses, medication orders (with clinically
matched indications), vitals, procedures and free-text notes all carry
SNOMED codes/terms from the synthetic ontology so the CDA conversion
produces the paper's density of ontological references.

Everything is driven by ``seed``; the same seed always produces the same
database, which the relevance oracle relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..ontology import snomed
from ..ontology.model import Ontology
from .database import EMRDatabase
from .schema import (ClinicalNote, Diagnosis, Encounter, LabResult,
                     MedicationOrder, Patient, ProcedureRecord, Provider,
                     VitalSign)


@dataclass(frozen=True)
class ConditionProfile:
    """A diagnosable condition plus the drugs that treat it."""

    code: str
    display: str
    treatments: tuple[tuple[str, str, str], ...]  # (code, display, dose)
    narrative: str


#: The clinic's case mix. Weights skew toward arrhythmia and congenital
#: disease, matching a pediatric cardiac division; respiratory cases
#: appear because the paper's own examples (asthma/theophylline) do.
_CONDITIONS: tuple[tuple[ConditionProfile, float], ...] = (
    (ConditionProfile(
        snomed.SUPRAVENTRICULAR_ARRHYTHMIA, "Supraventricular arrhythmia",
        ((snomed.AMIODARONE, "Amiodarone", "5 mg/kg IV load"),
         (snomed.PROPRANOLOL, "Propranolol", "1 mg/kg orally three times daily"),
         (snomed.DIGOXIN, "Digoxin", "10 mcg/kg daily")),
        "Patient presented with palpitations and documented "
        "supraventricular arrhythmia on telemetry."), 3.0),
    (ConditionProfile(
        snomed.SUPRAVENTRICULAR_TACHYCARDIA, "Supraventricular tachycardia",
        ((snomed.AMIODARONE, "Amiodarone", "5 mg/kg IV over 30 minutes"),
         (snomed.PROPRANOLOL, "Propranolol", "0.5 mg/kg every 8 hours")),
        "Episodes of supraventricular tachycardia with heart rate above "
        "220 per minute, converted after vagal maneuvers."), 2.5),
    (ConditionProfile(
        snomed.ATRIAL_FIBRILLATION, "Atrial fibrillation",
        ((snomed.AMIODARONE, "Amiodarone", "load then 200 mg daily"),
         (snomed.DIGOXIN, "Digoxin", "8 mcg/kg daily"),
         (snomed.WARFARIN, "Warfarin", "titrated to INR 2-3")),
        "Irregularly irregular rhythm; atrial fibrillation confirmed by "
        "electrocardiogram."), 1.5),
    (ConditionProfile(
        snomed.CARDIAC_ARREST, "Cardiac arrest",
        ((snomed.EPINEPHRINE, "Epinephrine", "0.01 mg/kg IV push"),
         (snomed.AMIODARONE, "Amiodarone", "5 mg/kg IV bolus")),
        "Witnessed cardiac arrest with return of spontaneous circulation "
        "after two rounds of compressions."), 1.5),
    (ConditionProfile(
        snomed.PERICARDIAL_EFFUSION, "Pericardial effusion",
        ((snomed.FUROSEMIDE, "Furosemide", "1 mg/kg IV twice daily"),
         (snomed.IBUPROFEN, "Ibuprofen", "10 mg/kg every 6 hours")),
        "Echocardiogram demonstrates a moderate pericardial effusion "
        "without tamponade physiology."), 2.0),
    (ConditionProfile(
        snomed.COARCTATION_OF_AORTA, "Coarctation of aorta",
        ((snomed.FUROSEMIDE, "Furosemide", "1 mg/kg daily"),),
        "Neonatal coarctation of aorta with diminished femoral pulses; "
        "surgical repair planned."), 2.0),
    (ConditionProfile(
        snomed.NEONATAL_CYANOSIS, "Neonatal cyanosis",
        ((snomed.EPINEPHRINE, "Epinephrine", "infusion 0.05 mcg/kg/min"),),
        "Term newborn with neonatal cyanosis unresponsive to oxygen, "
        "concerning for ductal-dependent lesion."), 1.5),
    (ConditionProfile(
        snomed.MITRAL_REGURGITATION, "Mitral valve regurgitation",
        ((snomed.FUROSEMIDE, "Furosemide", "0.5 mg/kg twice daily"),),
        "Holosystolic murmur with regurgitant flow across the mitral "
        "valve on color Doppler."), 1.5),
    (ConditionProfile(
        snomed.VENTRICULAR_SEPTAL_DEFECT, "Ventricular septal defect",
        ((snomed.FUROSEMIDE, "Furosemide", "1 mg/kg twice daily"),
         (snomed.DIGOXIN, "Digoxin", "8 mcg/kg daily")),
        "Moderate perimembranous ventricular septal defect with "
        "left-to-right shunt."), 2.0),
    (ConditionProfile(
        snomed.TETRALOGY_OF_FALLOT, "Tetralogy of Fallot",
        ((snomed.PROPRANOLOL, "Propranolol", "1 mg/kg every 6 hours"),),
        "Cyanotic spells consistent with Tetralogy of Fallot; oxygen "
        "saturation 82 percent on room air."), 1.5),
    (ConditionProfile(
        snomed.ASTHMA, "Asthma",
        ((snomed.THEOPHYLLINE, "Theophylline",
          "20 mg every other day, alternating with 18 mg"),
         (snomed.ALBUTEROL, "Albuterol", "2 puffs every 4 hours as needed")),
        "Known asthma with nocturnal cough and expiratory wheeze."), 1.0),
    (ConditionProfile(
        snomed.BRONCHITIS, "Bronchitis",
        ((snomed.ALBUTEROL, "Albuterol", "nebulized every 6 hours"),),
        "Productive cough and rhonchi consistent with bronchitis."), 1.0),
    (ConditionProfile(
        snomed.PNEUMONIA, "Pneumonia",
        ((snomed.MEROPENEM, "Meropenem", "20 mg/kg IV every 8 hours"),
         (snomed.IMIPENEM, "Imipenem", "15 mg/kg IV every 6 hours")),
        "Right lower lobe consolidation on chest radiograph; pneumonia "
        "treated with a carbapenem."), 1.0),
    (ConditionProfile(
        snomed.FEVER, "Fever",
        ((snomed.ACETAMINOPHEN, "Acetaminophen", "15 mg/kg every 6 hours"),
         (snomed.IBUPROFEN, "Ibuprofen", "10 mg/kg every 8 hours")),
        "Postoperative fever to 38.9 C, treated with antipyretics."), 1.2),
    (ConditionProfile(
        snomed.PAIN_FINDING, "Pain",
        ((snomed.ACETAMINOPHEN, "Acetaminophen", "15 mg/kg every 6 hours"),
         (snomed.ASPIRIN, "Aspirin", "3 mg/kg daily"),),
        "Incisional pain managed with scheduled analgesics per the pain "
        "control protocol."), 1.2),
)

_GIVEN_NAMES = ("Maria", "Juan", "Sofia", "Diego", "Lucia", "Carlos",
                "Elena", "Miguel", "Ana", "Pedro", "Isabel", "Jorge",
                "Carmen", "Luis", "Valeria", "Andres", "Paula", "Hector",
                "Julia", "Ramon")

_FAMILY_NAMES = ("Garcia", "Rodriguez", "Martinez", "Hernandez", "Lopez",
                 "Gonzalez", "Perez", "Sanchez", "Ramirez", "Torres",
                 "Flores", "Rivera", "Gomez", "Diaz", "Cruz", "Morales")

_PROVIDER_NAMES = (("Juan", "Woodblack"), ("Alice", "Chen"),
                   ("Robert", "Osei"), ("Priya", "Natarajan"),
                   ("Samuel", "Ortiz"), ("Hannah", "Kim"))

#: (loinc code, name, low, high, unit) -- common pediatric labs.
_LAB_PANEL = (
    ("718-7", "Hemoglobin", 10.5, 15.5, "g/dL"),
    ("6690-2", "Leukocytes", 4.5, 13.5, "10*3/uL"),
    ("2823-3", "Potassium", 3.4, 4.7, "mmol/L"),
    ("2951-2", "Sodium", 136.0, 145.0, "mmol/L"),
    ("2160-0", "Creatinine", 0.3, 0.7, "mg/dL"),
    ("30934-4", "Natriuretic peptide B", 0.0, 100.0, "pg/mL"),
    ("2157-6", "Creatine kinase", 30.0, 200.0, "U/L"),
)

_PLAN_SENTENCES = (
    "Continue current regimen and reassess in the morning.",
    "Repeat echocardiogram prior to discharge.",
    "Cardiology follow up in two weeks.",
    "Monitor electrolytes daily while on diuretics.",
    "Strict intake and output documentation.",
)


#: Condition groups that never co-occur in one patient. The default keeps
#: arrhythmia patients off analgesic/antipyretic indications, mirroring
#: the property of the paper's corpus that makes the
#: ["supraventricular arrhythmia", acetaminophen] query unanswerable by
#: exact match (Table I's all-zero row).
DEFAULT_EXCLUSIVE_GROUPS: tuple[tuple[frozenset[str], frozenset[str]], ...] = (
    (frozenset({snomed.SUPRAVENTRICULAR_ARRHYTHMIA,
                snomed.SUPRAVENTRICULAR_TACHYCARDIA,
                snomed.ATRIAL_FIBRILLATION, snomed.ATRIAL_FLUTTER}),
     frozenset({snomed.FEVER, snomed.PAIN_FINDING})),
)


@dataclass(frozen=True)
class SynthConfig:
    """Knobs of the generator; defaults give a small but realistic clinic."""

    n_patients: int = 40
    seed: int = 11
    min_encounters: int = 1
    max_encounters: int = 4
    min_conditions: int = 1
    max_conditions: int = 3
    extra_concept_fraction: float = 0.3
    exclusive_groups: tuple[tuple[frozenset[str], frozenset[str]], ...] = \
        DEFAULT_EXCLUSIVE_GROUPS


class CardiacEMRGenerator:
    """Seeded population of an :class:`EMRDatabase`.

    When an ontology is supplied, a fraction of encounters additionally
    samples generated long-tail disorders/drugs from it, widening the
    corpus vocabulary the way a real hospital system would.
    """

    def __init__(self, config: SynthConfig | None = None,
                 ontology: Ontology | None = None) -> None:
        self.config = config or SynthConfig()
        self._ontology = ontology
        self._extra_disorders: list[tuple[str, str]] = []
        self._extra_drugs: list[tuple[str, str]] = []
        if ontology is not None:
            self._collect_extra_concepts(ontology)

    def _collect_extra_concepts(self, ontology: Ontology) -> None:
        for concept in ontology.concepts():
            if not concept.code.startswith("92"):
                continue  # only procedurally generated long-tail concepts
            if concept.semantic_tag == "disorder":
                self._extra_disorders.append((concept.code,
                                              concept.preferred_term))
            elif concept.semantic_tag == "product":
                self._extra_drugs.append((concept.code,
                                          concept.preferred_term))

    # ------------------------------------------------------------------
    def generate(self) -> EMRDatabase:
        rng = random.Random(self.config.seed)
        database = EMRDatabase()
        providers = self._make_providers(database)
        conditions, weights = zip(*_CONDITIONS)
        for patient_number in range(self.config.n_patients):
            patient = self._make_patient(database, rng, patient_number)
            patient_codes: set[str] = set()
            encounter_count = rng.randint(self.config.min_encounters,
                                          self.config.max_encounters)
            for encounter_number in range(encounter_count):
                self._make_encounter(database, rng, patient,
                                     rng.choice(providers),
                                     patient_number, encounter_number,
                                     conditions, weights, patient_codes)
        return database

    # ------------------------------------------------------------------
    def _make_providers(self, database: EMRDatabase) -> list[Provider]:
        providers = [Provider(provider_id=f"KP{index:05d}", given_name=given,
                              family_name=family)
                     for index, (given, family)
                     in enumerate(_PROVIDER_NAMES, start=17)]
        for provider in providers:
            database.insert_provider(provider)
        return providers

    def _make_patient(self, database: EMRDatabase, rng: random.Random,
                      number: int) -> Patient:
        birth_year = rng.randint(1990, 2007)
        patient = Patient(
            patient_id=f"{49900 + number}",
            given_name=rng.choice(_GIVEN_NAMES),
            family_name=rng.choice(_FAMILY_NAMES),
            gender=rng.choice(("M", "F")),
            birth_date=(f"{birth_year:04d}-{rng.randint(1, 12):02d}-"
                        f"{rng.randint(1, 28):02d}"),
            medical_record_number=f"M{300 + number}")
        return database.insert_patient(patient)

    def _make_encounter(self, database: EMRDatabase, rng: random.Random,
                        patient: Patient, provider: Provider,
                        patient_number: int, encounter_number: int,
                        conditions: tuple[ConditionProfile, ...],
                        weights: tuple[float, ...],
                        patient_codes: set[str]) -> None:
        year = rng.randint(2005, 2008)
        month = rng.randint(1, 12)
        day = rng.randint(1, 27)
        encounter = database.insert_encounter(Encounter(
            encounter_id=f"E{patient_number:04d}-{encounter_number}",
            patient_id=patient.patient_id,
            provider_id=provider.provider_id,
            admit_date=f"{year:04d}-{month:02d}-{day:02d}",
            discharge_date=f"{year:04d}-{month:02d}-{day + 1:02d}"))

        chosen = self._sample_conditions(rng, conditions, weights,
                                         patient_codes)
        patient_codes.update(condition.code for condition in chosen)
        note_sentences: list[str] = []
        for condition_index, condition in enumerate(chosen):
            database.insert_diagnosis(Diagnosis(
                diagnosis_id=f"{encounter.encounter_id}-D{condition_index}",
                encounter_id=encounter.encounter_id,
                concept_code=condition.code,
                display_name=condition.display,
                note=condition.narrative))
            note_sentences.append(condition.narrative)
            for order_index, (code, display, dose) in enumerate(
                    self._sample_treatments(rng, condition)):
                database.insert_medication_order(MedicationOrder(
                    order_id=(f"{encounter.encounter_id}-"
                              f"M{condition_index}-{order_index}"),
                    encounter_id=encounter.encounter_id,
                    concept_code=code, display_name=display,
                    dose_text=dose, indication_code=condition.code))
                note_sentences.append(
                    f"Started on {display} {dose} for {condition.display}.")

        self._maybe_add_extra_concepts(database, rng, encounter,
                                       note_sentences)
        self._add_vitals(database, rng, encounter)
        self._add_labs(database, rng, encounter, note_sentences)
        note_sentences.append(rng.choice(_PLAN_SENTENCES))
        database.insert_note(ClinicalNote(
            note_id=f"{encounter.encounter_id}-N0",
            encounter_id=encounter.encounter_id,
            section="assessment", text=" ".join(note_sentences)))

    def _sample_conditions(self, rng: random.Random,
                           conditions: tuple[ConditionProfile, ...],
                           weights: tuple[float, ...],
                           patient_codes: set[str],
                           ) -> list[ConditionProfile]:
        count = rng.randint(self.config.min_conditions,
                            self.config.max_conditions)
        chosen: list[ConditionProfile] = []
        codes: set[str] = set(patient_codes)
        for condition in rng.choices(conditions, weights=weights,
                                     k=count * 4):
            if (condition.code not in codes
                    and not self._excluded(condition.code, codes)):
                codes.add(condition.code)
                chosen.append(condition)
            if len(chosen) == count:
                break
        return chosen

    def _excluded(self, code: str, existing: set[str]) -> bool:
        """Whether adding ``code`` violates an exclusive-group rule."""
        for group_a, group_b in self.config.exclusive_groups:
            if code in group_a and existing & group_b:
                return True
            if code in group_b and existing & group_a:
                return True
        return False

    def _sample_treatments(self, rng: random.Random,
                           condition: ConditionProfile,
                           ) -> list[tuple[str, str, str]]:
        if not condition.treatments:
            return []
        count = rng.randint(1, len(condition.treatments))
        return rng.sample(list(condition.treatments), count)

    def _maybe_add_extra_concepts(self, database: EMRDatabase,
                                  rng: random.Random, encounter: Encounter,
                                  note_sentences: list[str]) -> None:
        if rng.random() >= self.config.extra_concept_fraction:
            return
        index = len(database.diagnoses_for(encounter.encounter_id))
        if self._extra_disorders:
            code, display = rng.choice(self._extra_disorders)
            database.insert_diagnosis(Diagnosis(
                diagnosis_id=f"{encounter.encounter_id}-D{index}x",
                encounter_id=encounter.encounter_id,
                concept_code=code, display_name=display))
            note_sentences.append(f"Also noted: {display}.")
        if self._extra_drugs and rng.random() < 0.5:
            code, display = rng.choice(self._extra_drugs)
            database.insert_medication_order(MedicationOrder(
                order_id=f"{encounter.encounter_id}-Mx",
                encounter_id=encounter.encounter_id,
                concept_code=code, display_name=display,
                dose_text="per protocol"))
            note_sentences.append(f"Continued home {display}.")

    def _add_vitals(self, database: EMRDatabase, rng: random.Random,
                    encounter: Encounter) -> None:
        vitals = (
            (snomed.BODY_TEMPERATURE, "Body temperature",
             round(rng.uniform(36.2, 39.4), 1), "Cel"),
            (snomed.HEART_RATE, "Heart rate",
             float(rng.randint(70, 190)), "/min"),
            (snomed.BODY_HEIGHT, "Body height",
             round(rng.uniform(0.5, 1.85), 2), "m"),
            (snomed.BODY_WEIGHT, "Body weight",
             round(rng.uniform(3.0, 80.0), 1), "kg"),
        )
        for index, (code, display, value, unit) in enumerate(vitals):
            database.insert_vital_sign(VitalSign(
                vital_id=f"{encounter.encounter_id}-V{index}",
                encounter_id=encounter.encounter_id,
                concept_code=code, display_name=display,
                value=value, unit=unit, taken_at=encounter.admit_date))
        if rng.random() < 0.2:
            database.insert_procedure(ProcedureRecord(
                procedure_id=f"{encounter.encounter_id}-P0",
                encounter_id=encounter.encounter_id,
                concept_code=snomed.PAIN_CONTROL,
                display_name="Pain control",
                note="Pain control protocol initiated."))


    def _add_labs(self, database: EMRDatabase, rng: random.Random,
                  encounter: Encounter,
                  note_sentences: list[str]) -> None:
        panel_size = rng.randint(2, len(_LAB_PANEL))
        for index, (loinc, name, low, high, unit) in enumerate(
                rng.sample(_LAB_PANEL, panel_size)):
            spread = high - low
            value = round(rng.uniform(low - 0.3 * spread,
                                      high + 0.3 * spread), 1)
            flag = "H" if value > high else "L" if value < low else ""
            database.insert_lab_result(LabResult(
                lab_id=f"{encounter.encounter_id}-L{index}",
                encounter_id=encounter.encounter_id,
                loinc_code=loinc, display_name=name, value=value,
                unit=unit, reference_range=f"{low}-{high} {unit}",
                abnormal_flag=flag))
            if flag:
                direction = "elevated" if flag == "H" else "low"
                note_sentences.append(
                    f"Laboratory notable for {direction} {name} of "
                    f"{value} {unit}.")


def generate_cardiac_emr(n_patients: int = 40, seed: int = 11,
                         ontology: Ontology | None = None) -> EMRDatabase:
    """One-shot convenience wrapper around :class:`CardiacEMRGenerator`."""
    config = SynthConfig(n_patients=n_patients, seed=seed)
    return CardiacEMRGenerator(config, ontology).generate()
