"""Relational schema of the source EMR database.

The paper's corpus is generated "to convert automatically the relational
anonymized EMR database of the Cardiac Division of a local hospital into
a set of XML CDA documents. Each CDA document represents the medical
record of a single patient conglomerating all her hospitalization
entries." This module models that relational source: plain rows with
primary/foreign keys, one class per table.

Rows carry SNOMED concept codes next to their display text, exactly like
a coded hospital system would; the CDA generator turns these into the
ontological references of the XML corpus, and the relevance oracle uses
them as ground truth about each patient.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Patient:
    """A registered patient (the unit of CDA document generation)."""

    patient_id: str
    given_name: str
    family_name: str
    gender: str  # administrative gender code: "M" or "F"
    birth_date: str  # ISO date, e.g. "1998-11-02"
    medical_record_number: str = ""


@dataclass(frozen=True)
class Provider:
    """A clinician who authors encounters."""

    provider_id: str
    given_name: str
    family_name: str
    credential: str = "MD"


@dataclass(frozen=True)
class Encounter:
    """One hospitalization / visit of a patient."""

    encounter_id: str
    patient_id: str
    provider_id: str
    admit_date: str
    discharge_date: str
    encounter_type: str = "inpatient"


@dataclass(frozen=True)
class Diagnosis:
    """A coded problem recorded during an encounter."""

    diagnosis_id: str
    encounter_id: str
    concept_code: str  # SNOMED code
    display_name: str
    status: str = "active"
    note: str = ""


@dataclass(frozen=True)
class MedicationOrder:
    """A drug prescribed during an encounter."""

    order_id: str
    encounter_id: str
    concept_code: str  # SNOMED product code
    display_name: str
    dose_text: str = ""
    indication_code: str = ""  # SNOMED code of the treated problem


@dataclass(frozen=True)
class VitalSign:
    """A measured vital (height, weight, temperature, pulse, ...)."""

    vital_id: str
    encounter_id: str
    concept_code: str  # SNOMED observable-entity code
    display_name: str
    value: float
    unit: str
    taken_at: str = ""


@dataclass(frozen=True)
class ProcedureRecord:
    """A procedure performed during an encounter."""

    procedure_id: str
    encounter_id: str
    concept_code: str
    display_name: str
    note: str = ""


@dataclass(frozen=True)
class LabResult:
    """A laboratory measurement reported during an encounter."""

    lab_id: str
    encounter_id: str
    loinc_code: str
    display_name: str
    value: float
    unit: str
    reference_range: str = ""
    abnormal_flag: str = ""  # "", "H" or "L"


@dataclass(frozen=True)
class ClinicalNote:
    """Free-text narrative attached to an encounter."""

    note_id: str
    encounter_id: str
    section: str  # e.g. "history", "assessment", "plan"
    text: str


@dataclass
class PatientGroundTruth:
    """Generation-time truth about one patient, for the relevance oracle.

    ``condition_codes`` / ``drug_codes`` are the SNOMED concepts the
    generator deliberately gave this patient; anything the search system
    returns for this patient is judged against these.
    """

    patient_id: str
    condition_codes: set[str] = field(default_factory=set)
    drug_codes: set[str] = field(default_factory=set)
