"""In-memory relational EMR database with integrity checking.

A small relational engine in the shape the paper's source system had:
tables keyed by primary key, foreign keys validated on insert, and the
join-style accessors the CDA generator needs (all encounters of a
patient, all diagnoses of an encounter, ...).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from .schema import (ClinicalNote, Diagnosis, Encounter, LabResult,
                     MedicationOrder, Patient, PatientGroundTruth,
                     ProcedureRecord, Provider, VitalSign)


class IntegrityError(ValueError):
    """Raised on primary-key collisions or dangling foreign keys."""


class EMRDatabase:
    """The Cardiac Division's relational EMR, in memory."""

    def __init__(self) -> None:
        self._patients: dict[str, Patient] = {}
        self._providers: dict[str, Provider] = {}
        self._encounters: dict[str, Encounter] = {}
        self._diagnoses: dict[str, Diagnosis] = {}
        self._orders: dict[str, MedicationOrder] = {}
        self._vitals: dict[str, VitalSign] = {}
        self._procedures: dict[str, ProcedureRecord] = {}
        self._labs: dict[str, LabResult] = {}
        self._notes: dict[str, ClinicalNote] = {}
        self._encounters_by_patient: dict[str, list[str]] = defaultdict(list)
        self._by_encounter: dict[str, dict[str, list[str]]] = defaultdict(
            lambda: defaultdict(list))
        self._ground_truth: dict[str, PatientGroundTruth] = {}

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------
    def insert_patient(self, patient: Patient) -> Patient:
        self._insert(self._patients, patient.patient_id, patient, "patient")
        self._ground_truth[patient.patient_id] = PatientGroundTruth(
            patient.patient_id)
        return patient

    def insert_provider(self, provider: Provider) -> Provider:
        self._insert(self._providers, provider.provider_id, provider,
                     "provider")
        return provider

    def insert_encounter(self, encounter: Encounter) -> Encounter:
        self._require(self._patients, encounter.patient_id, "patient")
        self._require(self._providers, encounter.provider_id, "provider")
        self._insert(self._encounters, encounter.encounter_id, encounter,
                     "encounter")
        self._encounters_by_patient[encounter.patient_id].append(
            encounter.encounter_id)
        return encounter

    def insert_diagnosis(self, diagnosis: Diagnosis) -> Diagnosis:
        self._require(self._encounters, diagnosis.encounter_id, "encounter")
        self._insert(self._diagnoses, diagnosis.diagnosis_id, diagnosis,
                     "diagnosis")
        self._by_encounter[diagnosis.encounter_id]["diagnoses"].append(
            diagnosis.diagnosis_id)
        patient = self._encounters[diagnosis.encounter_id].patient_id
        self._ground_truth[patient].condition_codes.add(
            diagnosis.concept_code)
        return diagnosis

    def insert_medication_order(self, order: MedicationOrder,
                                ) -> MedicationOrder:
        self._require(self._encounters, order.encounter_id, "encounter")
        self._insert(self._orders, order.order_id, order, "medication order")
        self._by_encounter[order.encounter_id]["orders"].append(
            order.order_id)
        patient = self._encounters[order.encounter_id].patient_id
        self._ground_truth[patient].drug_codes.add(order.concept_code)
        return order

    def insert_vital_sign(self, vital: VitalSign) -> VitalSign:
        self._require(self._encounters, vital.encounter_id, "encounter")
        self._insert(self._vitals, vital.vital_id, vital, "vital sign")
        self._by_encounter[vital.encounter_id]["vitals"].append(
            vital.vital_id)
        return vital

    def insert_procedure(self, procedure: ProcedureRecord,
                         ) -> ProcedureRecord:
        self._require(self._encounters, procedure.encounter_id, "encounter")
        self._insert(self._procedures, procedure.procedure_id, procedure,
                     "procedure")
        self._by_encounter[procedure.encounter_id]["procedures"].append(
            procedure.procedure_id)
        return procedure

    def insert_lab_result(self, lab: LabResult) -> LabResult:
        self._require(self._encounters, lab.encounter_id, "encounter")
        self._insert(self._labs, lab.lab_id, lab, "lab result")
        self._by_encounter[lab.encounter_id]["labs"].append(lab.lab_id)
        return lab

    def insert_note(self, note: ClinicalNote) -> ClinicalNote:
        self._require(self._encounters, note.encounter_id, "encounter")
        self._insert(self._notes, note.note_id, note, "note")
        self._by_encounter[note.encounter_id]["notes"].append(note.note_id)
        return note

    def _insert(self, table: dict, key: str, row, kind: str) -> None:
        if key in table:
            raise IntegrityError(f"duplicate {kind} key {key!r}")
        table[key] = row

    def _require(self, table: dict, key: str, kind: str) -> None:
        if key not in table:
            raise IntegrityError(f"unknown {kind} {key!r}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def patients(self) -> Iterator[Patient]:
        return iter(self._patients.values())

    def patient(self, patient_id: str) -> Patient:
        self._require(self._patients, patient_id, "patient")
        return self._patients[patient_id]

    def provider(self, provider_id: str) -> Provider:
        self._require(self._providers, provider_id, "provider")
        return self._providers[provider_id]

    def providers(self) -> Iterator[Provider]:
        return iter(self._providers.values())

    def encounters_for(self, patient_id: str) -> list[Encounter]:
        self._require(self._patients, patient_id, "patient")
        return [self._encounters[encounter_id] for encounter_id
                in self._encounters_by_patient.get(patient_id, ())]

    def diagnoses_for(self, encounter_id: str) -> list[Diagnosis]:
        self._require(self._encounters, encounter_id, "encounter")
        return [self._diagnoses[key] for key
                in self._by_encounter[encounter_id]["diagnoses"]]

    def orders_for(self, encounter_id: str) -> list[MedicationOrder]:
        self._require(self._encounters, encounter_id, "encounter")
        return [self._orders[key] for key
                in self._by_encounter[encounter_id]["orders"]]

    def vitals_for(self, encounter_id: str) -> list[VitalSign]:
        self._require(self._encounters, encounter_id, "encounter")
        return [self._vitals[key] for key
                in self._by_encounter[encounter_id]["vitals"]]

    def procedures_for(self, encounter_id: str) -> list[ProcedureRecord]:
        self._require(self._encounters, encounter_id, "encounter")
        return [self._procedures[key] for key
                in self._by_encounter[encounter_id]["procedures"]]

    def labs_for(self, encounter_id: str) -> list[LabResult]:
        self._require(self._encounters, encounter_id, "encounter")
        return [self._labs[key] for key
                in self._by_encounter[encounter_id]["labs"]]

    def notes_for(self, encounter_id: str) -> list[ClinicalNote]:
        self._require(self._encounters, encounter_id, "encounter")
        return [self._notes[key] for key
                in self._by_encounter[encounter_id]["notes"]]

    def ground_truth(self, patient_id: str) -> PatientGroundTruth:
        self._require(self._patients, patient_id, "patient")
        return self._ground_truth[patient_id]

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        return {
            "patients": len(self._patients),
            "providers": len(self._providers),
            "encounters": len(self._encounters),
            "diagnoses": len(self._diagnoses),
            "medication_orders": len(self._orders),
            "vital_signs": len(self._vitals),
            "procedures": len(self._procedures),
            "lab_results": len(self._labs),
            "notes": len(self._notes),
        }
