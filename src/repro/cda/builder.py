"""Construction of CDA Release 2 document trees (paper Section II).

Builds :class:`~repro.xmldoc.model.XMLNode` trees with the structure of
Figure 1: a ``ClinicalDocument`` root wrapping a header (author, record
target) and a ``StructuredBody`` whose components are coded sections
with ``Observation`` / ``SubstanceAdministration`` entries, following
the clinical-statement fragment of the CDA object model (Figure 3).

Every coded element receives the ``code``/``codeSystem`` attribute pair
so :func:`repro.xmldoc.parser.cda_reference_extractor` (and any other
CDA consumer) recognizes it as an ontological reference.
"""

from __future__ import annotations

from ..xmldoc.model import OntologicalReference, XMLNode
from . import codes


def _coded(tag: str, concept_code: str, display_name: str,
           code_system: str = codes.SNOMED_CT_OID,
           code_system_name: str = codes.SNOMED_CT_NAME,
           extra: dict[str, str] | None = None) -> XMLNode:
    """A coded element carrying an ontological reference."""
    attributes = dict(extra or {})
    attributes.update({
        "code": concept_code,
        "codeSystem": code_system,
        "codeSystemName": code_system_name,
    })
    if display_name:
        attributes["displayName"] = display_name
    return XMLNode(tag, attributes,
                   reference=OntologicalReference(code_system, concept_code))


class CDABuilder:
    """Assembles one ClinicalDocument tree piece by piece.

    Usage: construct, fill the header via :meth:`set_author` /
    :meth:`set_patient`, add sections with :meth:`add_section` and entry
    helpers, then take :attr:`root`.
    """

    def __init__(self, document_extension: str) -> None:
        self.root = XMLNode("ClinicalDocument",
                            dict(codes.CLINICAL_DOCUMENT_ATTRIBUTES))
        self.root.add("id", {"extension": document_extension,
                             "root": codes.DOCUMENT_ID_ROOT})
        self._body: XMLNode | None = None

    # ------------------------------------------------------------------
    # Header (Figure 1 lines 3-29)
    # ------------------------------------------------------------------
    def set_author(self, given: str, family: str, suffix: str = "MD",
                   provider_extension: str = "", time: str = "") -> None:
        author = self.root.add("author")
        if time:
            author.add("time", {"value": time})
        assigned = author.add("assignedAuthor")
        if provider_extension:
            assigned.add("id", {"extension": provider_extension,
                                "root": codes.PROVIDER_ID_ROOT})
        person = assigned.add("assignedPerson")
        name = person.add("name")
        name.add("given", text=given)
        name.add("family", text=family)
        if suffix:
            name.add("suffix", text=suffix)

    def set_patient(self, given: str, family: str, gender: str,
                    birth_time: str, patient_extension: str,
                    organization_extension: str = "", suffix: str = "",
                    ) -> None:
        target = self.root.add("recordTarget")
        role = target.add("patientRole")
        role.add("id", {"extension": patient_extension,
                        "root": codes.PATIENT_ID_ROOT})
        patient = role.add("patientPatient")
        name = patient.add("name")
        name.add("given", text=given)
        name.add("family", text=family)
        if suffix:
            name.add("suffix", text=suffix)
        patient.append(XMLNode(
            "administrativeGenderCode",
            {"code": gender, "codeSystem": codes.GENDER_CODE_SYSTEM},
            reference=OntologicalReference(codes.GENDER_CODE_SYSTEM,
                                           gender)))
        if birth_time:
            patient.add("birthTime", {"value": birth_time})
        if organization_extension:
            organization = role.add("providerOrganization")
            organization.add("id", {"extension": organization_extension,
                                    "root": codes.ORGANIZATION_ID_ROOT})

    # ------------------------------------------------------------------
    # Body (Figure 1 lines 30-82)
    # ------------------------------------------------------------------
    def set_unstructured_body(self, text: str) -> XMLNode:
        """An unstructured body (Section II: the body "can be either an
        unstructured segment or an XML fragment"). Mutually exclusive
        with structured sections."""
        if self._body is not None:
            raise ValueError("document already has a structured body")
        component = self.root.add("component")
        non_xml = component.add("nonXMLBody")
        return non_xml.add("text", {"mediaType": "text/plain"}, text=text)

    def _structured_body(self) -> XMLNode:
        if self._body is None:
            component = self.root.add("component")
            self._body = component.add("StructuredBody")
        return self._body

    def add_section(self, loinc_code: str, title: str = "",
                    parent: XMLNode | None = None) -> XMLNode:
        """Add a coded section; returns the ``section`` element.

        ``parent`` allows nested sections (Figure 1 nests Vital Signs
        inside Physical Examination); by default sections attach to the
        StructuredBody.
        """
        container = parent if parent is not None else self._structured_body()
        component = container.add("component")
        section = component.add("section")
        section.append(_coded("code", loinc_code,
                              display_name="",
                              code_system=codes.LOINC_OID,
                              code_system_name=codes.LOINC_NAME))
        section.add("title",
                    text=title or codes.SECTION_TITLES.get(loinc_code, ""))
        return section

    def add_observation_entry(self, section: XMLNode, value_code: str,
                              value_display: str,
                              observation_code: str = "",
                              observation_display: str = "",
                              narrative_reference: str = "") -> XMLNode:
        """A coded Observation entry (Figure 1 lines 36-41).

        ``value_code`` is the SNOMED concept observed (e.g. Asthma);
        ``observation_code`` classifies the observation itself (e.g. the
        Medications concept). Returns the ``Observation`` element.
        """
        entry = section.add("entry")
        observation = entry.add("Observation")
        if observation_code:
            observation.append(_coded("code", observation_code,
                                      observation_display))
        value = _coded("value", value_code, value_display,
                       extra={"xsi:type": "CD"})
        observation.append(value)
        if narrative_reference:
            original = value.add("originalText")
            original.add("reference", {"value": narrative_reference})
        return observation

    def add_quantity_observation(self, section: XMLNode, code: str,
                                 display: str, value: float, unit: str,
                                 effective_time: str = "") -> XMLNode:
        """A physical-quantity Observation (Figure 1 lines 76-81)."""
        entry = section.add("entry")
        observation = entry.add("Observation")
        observation.append(_coded("code", code, display))
        if effective_time:
            observation.add("effectiveTime", {"value": effective_time})
        observation.add("value", {"xsi:type": "PQ", "value": str(value),
                                  "unit": unit})
        return observation

    def add_substance_administration(self, section: XMLNode, drug_code: str,
                                     drug_display: str, text: str = "",
                                     content_id: str = "") -> XMLNode:
        """A SubstanceAdministration entry (Figure 1 lines 48-56)."""
        entry = section.add("entry")
        administration = entry.add("SubstanceAdministration")
        if text:
            text_node = administration.add("text")
            if content_id:
                content = text_node.add("content", {"ID": content_id},
                                        text=drug_display)
                content.tail = text
            else:
                text_node.text = text
        consumable = administration.add("consumable")
        product = consumable.add("manufacturedProduct")
        labeled = product.add("manufacturedLabeledDrug")
        labeled.append(_coded("code", drug_code, drug_display))
        return administration

    def add_narrative(self, section: XMLNode, text: str) -> XMLNode:
        """Free-text narrative inside a section's ``text`` element."""
        text_node = section.find("text")
        if text_node is None or text_node.parent is not section:
            text_node = section.add("text")
        paragraph = text_node.add("paragraph", text=text)
        return paragraph

    def add_vitals_table(self, section: XMLNode,
                         rows: list[tuple[str, str]]) -> XMLNode:
        """The header/value table of Figure 1 lines 66-75."""
        text_node = section.add("text")
        table = text_node.add("table")
        for header, value in rows:
            row = table.add("tr")
            row.add("th", text=header)
            row.add("td", text=value)
        return table
