"""The paper's running example: the Figure 1 CDA document.

Reconstructs, element for element, the sample ClinicalDocument of
Figure 1 (author Juan Woodblack MD; Medications section with Asthma /
Bronchitis+Albuterol Observations and a Theophylline
SubstanceAdministration; Physical Examination with nested Vital Signs).
Tests and the quickstart example run the paper's worked queries
(``asthma medications``, ``"Bronchial Structure" Theophylline``) against
it.
"""

from __future__ import annotations

from ..ontology import snomed
from ..xmldoc.model import XMLDocument, XMLNode
from . import codes
from .builder import CDABuilder, _coded

#: Concept code the paper's Figure 1 uses for the Bronchitis value node.
_BRONCHITIS_DISPLAY = "Bronchitis"


def build_figure1_document(doc_id: int = 0) -> XMLDocument:
    """Build the Figure 1 document as an :class:`XMLDocument`."""
    builder = CDABuilder(document_extension="c266")
    builder.set_author("Juan", "Woodblack", "MD",
                       provider_extension="KP00017", time="20050329224411")
    builder.set_patient("FirstName", "LastName", "M",
                        birth_time="19541125", patient_extension="49912",
                        organization_extension="M345", suffix="Jr.")

    # Medications section (lines 32-57).
    medications = builder.add_section(codes.LOINC_MEDICATIONS,
                                      title="Medications")

    # Lines 36-41: Observation whose value is the Asthma concept, with an
    # originalText reference pointing at the Theophylline narrative.
    asthma_observation = builder.add_observation_entry(
        medications, value_code=snomed.ASTHMA, value_display="Asthma",
        observation_code=codes.SNOMED_MEDICATIONS_CODE,
        observation_display="Medications", narrative_reference="m1")

    # Lines 42-47: Observation with nested Bronchitis / Albuterol values.
    entry = medications.add("entry")
    observation = entry.add("Observation")
    observation.append(_coded("code", codes.SNOMED_MEDICATIONS_CODE,
                              "Medications"))
    bronchitis = _coded("value", snomed.BRONCHITIS, _BRONCHITIS_DISPLAY,
                        extra={"xsi:type": "CD"})
    observation.append(bronchitis)
    bronchitis.append(_coded("value", snomed.ALBUTEROL, "Albuterol",
                             extra={"xsi:type": "CD"}))

    # Lines 48-56: the Theophylline SubstanceAdministration with dosing
    # narrative ("20 mg every other day, alternating with 18 mg...").
    builder.add_substance_administration(
        medications, drug_code=snomed.THEOPHYLLINE,
        drug_display="Theophylline",
        text=("20 mg every other day, alternating with 18 mg every other "
              "day. Stop if temperature is above 103F."),
        content_id="m1")

    # Physical Examination with nested Vital Signs (lines 58-81).
    exam = builder.add_section(codes.LOINC_PHYSICAL_EXAM,
                               title="Physical Examination")
    vitals = builder.add_section(codes.LOINC_VITAL_SIGNS,
                                 title="Vital Signs", parent=exam)
    builder.add_vitals_table(vitals, [("Temperature", "36.9 C (98.5 F)"),
                                      ("Pulse", "86 / minute")])
    builder.add_quantity_observation(vitals, code=snomed.BODY_HEIGHT,
                                     display="Body height", value=1.77,
                                     unit="m", effective_time="20040830")

    assert asthma_observation is not None
    return XMLDocument(doc_id=doc_id, root=builder.root,
                       source_name="figure1")


def find_asthma_value_node(document: XMLDocument) -> XMLNode:
    """The Line-39 node: the ``value`` element referencing Asthma."""
    for node in document.iter():
        if (node.tag == "value" and node.reference is not None
                and node.reference.concept_code == snomed.ASTHMA):
            return node
    raise LookupError("Figure 1 document has no Asthma value node")
