"""Ontological-reference annotation of CDA text (paper Section VII).

"Ontological references were inserted for every XML node whose value
matched one of the concepts in SNOMED." This module reproduces that
preliminary step of the paper's corpus generation: it walks a document,
matches the textual content of reference-free nodes against the
terminology service, and attaches the reference of the longest/first
matching concept.

Since the tree model gives every node at most one ontological reference
(Section III), the first match of the longest phrase wins; additional
matches in the same node are left to IR scoring, which still sees the
words.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ontology.api import TerminologyService
from ..xmldoc.model import (OntologicalReference, TextPolicy, XMLDocument,
                            XMLNode)


@dataclass
class AnnotationReport:
    """What an annotation pass did: counters for tests and experiments."""

    nodes_visited: int = 0
    nodes_annotated: int = 0
    matches_found: int = 0


class ReferenceAnnotator:
    """Inserts ontological references into text-bearing nodes."""

    def __init__(self, terminology: TerminologyService,
                 system_code: str | None = None,
                 text_policy: TextPolicy | None = None,
                 max_phrase_words: int = 4) -> None:
        self._terminology = terminology
        self._system_code = system_code
        self._text_policy = text_policy
        self._max_phrase_words = max_phrase_words

    def annotate_document(self, document: XMLDocument) -> AnnotationReport:
        """Annotate every reference-free node whose text matches SNOMED."""
        report = AnnotationReport()
        for node in document.iter():
            report.nodes_visited += 1
            self._annotate_node(node, report)
        return report

    def _annotate_node(self, node: XMLNode,
                       report: AnnotationReport) -> None:
        if node.is_code_node:
            return
        text = node.textual_description(self._text_policy)
        if not text:
            return
        matches = self._terminology.match_in_text(
            text, system_code=self._system_code,
            max_phrase_words=self._max_phrase_words)
        if not matches:
            return
        report.matches_found += len(matches)
        # Longest matched phrase wins; ties break by document order.
        best_phrase, best_concept = max(
            matches, key=lambda match: len(match[0].split()))
        system = self._system_for(best_concept.code)
        if system is None:
            return
        node.reference = OntologicalReference(system, best_concept.code)
        report.nodes_annotated += 1

    def _system_for(self, concept_code: str) -> str | None:
        for system_code in self._terminology.systems():
            if self._system_code is not None and system_code != self._system_code:
                continue
            if concept_code in self._terminology.ontology(system_code):
                return system_code
        return None
