"""HL7 CDA substrate: document construction, EMR conversion, annotation.

Stands in for the paper's "program to convert automatically the
relational anonymized EMR database [...] into a set of XML CDA
documents" plus the reference-insertion pass.
"""

from . import codes
from .annotator import AnnotationReport, ReferenceAnnotator
from .builder import CDABuilder
from .generator import CDAGenerator, GenerationReport, build_cda_corpus
from .sample import build_figure1_document, find_asthma_value_node

__all__ = [
    "AnnotationReport", "CDABuilder", "CDAGenerator", "GenerationReport",
    "ReferenceAnnotator", "build_cda_corpus", "build_figure1_document",
    "codes", "find_asthma_value_node",
]
