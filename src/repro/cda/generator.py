"""EMR-to-CDA conversion (paper Section VII, "CDA Documents Generation").

"We developed a program to convert automatically the relational
anonymized EMR database of the Cardiac Division of a local hospital into
a set of XML CDA documents. Each CDA document represents the medical
record of a single patient conglomerating all her hospitalization
entries." This module is that program, over our synthetic EMR substrate:

* one ClinicalDocument per patient;
* per encounter: a Problems section (coded Observations), a Medications
  section (Observation + SubstanceAdministration entries, as in
  Figure 1), a Physical Examination section with a nested Vital Signs
  section (narrative table + PQ Observations), a Results section with
  LOINC-coded lab Observations, an optional Procedures section, and an
  Assessment narrative;
* a final annotation pass inserting ontological references wherever
  free text matches a SNOMED concept.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..emr.database import EMRDatabase
from ..emr.schema import Encounter, Patient
from ..ontology.api import TerminologyService
from ..xmldoc.model import (Corpus, OntologicalReference, XMLDocument,
                            XMLNode)
from . import codes
from .annotator import AnnotationReport, ReferenceAnnotator
from .builder import CDABuilder


@dataclass
class GenerationReport:
    """Corpus statistics, comparable to the paper's reported averages
    (documents, elements per document, references per document)."""

    documents: int = 0
    total_elements: int = 0
    total_references: int = 0
    annotation: AnnotationReport | None = None

    @property
    def average_elements(self) -> float:
        return self.total_elements / self.documents if self.documents else 0.0

    @property
    def average_references(self) -> float:
        return (self.total_references / self.documents
                if self.documents else 0.0)


class CDAGenerator:
    """Converts an :class:`EMRDatabase` into a CDA :class:`Corpus`."""

    def __init__(self, database: EMRDatabase,
                 terminology: TerminologyService | None = None,
                 annotate_narrative: bool = True,
                 structured: bool = True) -> None:
        self._database = database
        self._terminology = terminology
        self._annotate_narrative = annotate_narrative and terminology is not None
        self._structured = structured

    # ------------------------------------------------------------------
    def generate_corpus(self) -> tuple[Corpus, GenerationReport]:
        """Build the whole corpus, one document per patient."""
        corpus = Corpus()
        report = GenerationReport(annotation=AnnotationReport())
        annotator = (ReferenceAnnotator(self._terminology)
                     if self._annotate_narrative else None)
        patients = sorted(self._database.patients(),
                          key=lambda patient: patient.patient_id)
        for doc_id, patient in enumerate(patients):
            document = self.generate_document(patient, doc_id)
            if annotator is not None:
                pass_report = annotator.annotate_document(document)
                report.annotation.nodes_visited += pass_report.nodes_visited
                report.annotation.nodes_annotated += \
                    pass_report.nodes_annotated
                report.annotation.matches_found += pass_report.matches_found
            corpus.add(document)
            report.documents += 1
            report.total_elements += document.node_count()
            report.total_references += len(document.code_nodes())
        return corpus, report

    # ------------------------------------------------------------------
    def generate_document(self, patient: Patient,
                          doc_id: int) -> XMLDocument:
        """One patient's conglomerated clinical document."""
        builder = CDABuilder(document_extension=f"c{doc_id:04d}")
        encounters = self._database.encounters_for(patient.patient_id)
        author = (self._database.provider(encounters[0].provider_id)
                  if encounters else None)
        if author is not None:
            builder.set_author(author.given_name, author.family_name,
                               author.credential,
                               provider_extension=author.provider_id,
                               time=encounters[0].admit_date.replace("-", ""))
        builder.set_patient(
            patient.given_name, patient.family_name, patient.gender,
            birth_time=patient.birth_date.replace("-", ""),
            patient_extension=patient.patient_id,
            organization_extension=patient.medical_record_number)
        if self._structured:
            for encounter in encounters:
                self._add_encounter_sections(builder, encounter)
        else:
            builder.set_unstructured_body(
                self._narrative_body(encounters))
        return XMLDocument(doc_id=doc_id, root=builder.root,
                           source_name=f"patient-{patient.patient_id}",
                           metadata={"patient_id": patient.patient_id})

    # ------------------------------------------------------------------
    def _add_encounter_sections(self, builder: CDABuilder,
                                encounter: Encounter) -> None:
        database = self._database
        diagnoses = database.diagnoses_for(encounter.encounter_id)
        if diagnoses:
            problems = builder.add_section(codes.LOINC_PROBLEM_LIST)
            for diagnosis in diagnoses:
                builder.add_observation_entry(
                    problems, value_code=diagnosis.concept_code,
                    value_display=diagnosis.display_name)
                if diagnosis.note:
                    builder.add_narrative(problems, diagnosis.note)

        orders = database.orders_for(encounter.encounter_id)
        if orders:
            medications = builder.add_section(codes.LOINC_MEDICATIONS)
            for order_index, order in enumerate(orders):
                builder.add_substance_administration(
                    medications, drug_code=order.concept_code,
                    drug_display=order.display_name,
                    text=f" {order.dose_text}" if order.dose_text else "",
                    content_id=f"{encounter.encounter_id}-m{order_index}")
                if order.indication_code:
                    # As in Figure 1, the indication Observation points
                    # back at the drug narrative through originalText/
                    # reference -> content ID.
                    builder.add_observation_entry(
                        medications, value_code=order.indication_code,
                        value_display=self._indication_display(order),
                        observation_code=codes.SNOMED_MEDICATIONS_CODE,
                        observation_display="Medications",
                        narrative_reference=(
                            f"{encounter.encounter_id}-m{order_index}"))

        vitals = database.vitals_for(encounter.encounter_id)
        if vitals:
            exam = builder.add_section(codes.LOINC_PHYSICAL_EXAM)
            vital_section = builder.add_section(codes.LOINC_VITAL_SIGNS,
                                                parent=exam)
            builder.add_vitals_table(
                vital_section,
                [(vital.display_name, f"{vital.value} {vital.unit}")
                 for vital in vitals])
            for vital in vitals:
                builder.add_quantity_observation(
                    vital_section, code=vital.concept_code,
                    display=vital.display_name, value=vital.value,
                    unit=vital.unit,
                    effective_time=vital.taken_at.replace("-", ""))

        procedures = database.procedures_for(encounter.encounter_id)
        if procedures:
            section = builder.add_section(codes.LOINC_PROCEDURES)
            for procedure in procedures:
                builder.add_observation_entry(
                    section, value_code=procedure.concept_code,
                    value_display=procedure.display_name)
                if procedure.note:
                    builder.add_narrative(section, procedure.note)

        labs = database.labs_for(encounter.encounter_id)
        if labs:
            results_section = builder.add_section(codes.LOINC_RESULTS)
            builder.add_vitals_table(
                results_section,
                [(lab.display_name,
                  f"{lab.value} {lab.unit}"
                  + (f" ({lab.abnormal_flag})" if lab.abnormal_flag
                     else ""))
                 for lab in labs])
            for lab in labs:
                entry = results_section.add("entry")
                observation = entry.add("Observation")
                code_attributes = {
                    "code": lab.loinc_code,
                    "codeSystem": codes.LOINC_OID,
                    "codeSystemName": codes.LOINC_NAME,
                    "displayName": lab.display_name,
                }
                observation.append(XMLNode(
                    "code", code_attributes,
                    reference=OntologicalReference(codes.LOINC_OID,
                                                   lab.loinc_code)))
                observation.add("value", {"xsi:type": "PQ",
                                          "value": str(lab.value),
                                          "unit": lab.unit})
                if lab.abnormal_flag:
                    observation.add("interpretationCode",
                                    {"code": lab.abnormal_flag})

        for note in database.notes_for(encounter.encounter_id):
            section = builder.add_section(codes.LOINC_ASSESSMENT)
            builder.add_narrative(section, note.text)

    def _narrative_body(self, encounters) -> str:
        """Flat prose rendering of the record for nonXMLBody documents."""
        database = self._database
        paragraphs: list[str] = []
        for encounter in encounters:
            pieces = [f"Admission {encounter.admit_date}."]
            for diagnosis in database.diagnoses_for(encounter.encounter_id):
                pieces.append(f"Diagnosis: {diagnosis.display_name}.")
                if diagnosis.note:
                    pieces.append(diagnosis.note)
            for order in database.orders_for(encounter.encounter_id):
                pieces.append(
                    f"Medication: {order.display_name} {order.dose_text}.")
            for procedure in database.procedures_for(
                    encounter.encounter_id):
                pieces.append(f"Procedure: {procedure.display_name}.")
            for lab in database.labs_for(encounter.encounter_id):
                pieces.append(f"Lab {lab.display_name}: {lab.value} "
                              f"{lab.unit}.")
            for note in database.notes_for(encounter.encounter_id):
                pieces.append(note.text)
            paragraphs.append(" ".join(pieces))
        return "\n".join(paragraphs)

    def _indication_display(self, order) -> str:
        if self._terminology is None:
            return ""
        for system_code in self._terminology.systems():
            ontology = self._terminology.ontology(system_code)
            if order.indication_code in ontology:
                return ontology.concept(order.indication_code).preferred_term
        return ""


def build_cda_corpus(database: EMRDatabase,
                     terminology: TerminologyService | None = None,
                     ) -> tuple[Corpus, GenerationReport]:
    """One-shot convenience wrapper around :class:`CDAGenerator`."""
    return CDAGenerator(database, terminology).generate_corpus()
