"""Code systems and fixed codes used by HL7 CDA documents (Section II).

CDA identifies vocabularies by ISO OIDs. The ones exercised by the paper
are SNOMED CT (clinical concepts) and LOINC (document/section codes, the
``<code>`` elements of Figure 1 such as the Medications section).
"""

from __future__ import annotations

#: OID of SNOMED CT, as it appears in ``codeSystem`` attributes.
SNOMED_CT_OID = "2.16.840.1.113883.6.96"
SNOMED_CT_NAME = "SNOMED CT"

#: OID of LOINC.
LOINC_OID = "2.16.840.1.113883.6.1"
LOINC_NAME = "LOINC"

#: OIDs for instance identifiers (documents, providers, patients), as in
#: the ``root`` attributes of Figure 1.
DOCUMENT_ID_ROOT = "2.16.840.1.113883.19.4"
PROVIDER_ID_ROOT = "2.16.840.1.113883.19.5"
PATIENT_ID_ROOT = "2.16.840.1.113883.19.6"
ORGANIZATION_ID_ROOT = "2.16.840.1.113883.19.7"

#: Administrative gender code system.
GENDER_CODE_SYSTEM = "2.16.840.1.113883.5.1"

# LOINC section codes (Figure 1 uses 10160-0 Medications and 8716-3
# Vital signs; the others are standard CCD section codes).
LOINC_MEDICATIONS = "10160-0"
LOINC_PHYSICAL_EXAM = "29545-1"
LOINC_VITAL_SIGNS = "8716-3"
LOINC_PROBLEM_LIST = "11450-4"
LOINC_HOSPITAL_COURSE = "8648-8"
LOINC_PROCEDURES = "47519-4"
LOINC_ASSESSMENT = "51848-0"
LOINC_RESULTS = "30954-2"

SECTION_TITLES = {
    LOINC_MEDICATIONS: "Medications",
    LOINC_PHYSICAL_EXAM: "Physical Examination",
    LOINC_VITAL_SIGNS: "Vital Signs",
    LOINC_PROBLEM_LIST: "Problems",
    LOINC_HOSPITAL_COURSE: "Hospital Course",
    LOINC_PROCEDURES: "Procedures",
    LOINC_ASSESSMENT: "Assessment",
    LOINC_RESULTS: "Results",
}

#: SNOMED code CDA medication Observations use for their ``<code>``
#: element in Figure 1 (displayName="Medications").
SNOMED_MEDICATIONS_CODE = "410942007"

#: CDA namespace declarations of the ClinicalDocument root element.
CLINICAL_DOCUMENT_ATTRIBUTES = {
    "xmlns": "urn:hl7-org:v3",
    "xmlns:voc": "urn:hl7-org:v3/voc",
    "xmlns:xsi": "http://www.w3.org/2001/XMLSchema-instance",
    "xsi:schemaLocation": "urn:hl7-org:v3 CDA.ReleaseTwo.Committee.2004.xsd",
    "templateId": "2.16.840.1.113883.3.27.1776",
}
