"""XOntoRank: ontology-aware keyword search of XML electronic medical
records.

A from-scratch reproduction of Farfán, Hristidis, Ranganathan & Weiner,
"XOntoRank: Ontology-Aware Search of Electronic Medical Records"
(ICDE 2009), including every substrate the paper runs on: an XML/Dewey
layer, a synthetic SNOMED-CT-shaped ontology with an EL
description-logic view, a BM25 IR engine, a synthetic cardiac-division
EMR database with HL7 CDA conversion, persistent index stores, and the
evaluation harness (top-k Kendall tau, relevance oracle, the published
query workload).

Quickstart::

    from repro import XOntoRankEngine, RELATIONSHIPS
    from repro.ontology import build_synthetic_snomed, TerminologyService
    from repro.emr import generate_cardiac_emr
    from repro.cda import build_cda_corpus

    ontology = build_synthetic_snomed()
    database = generate_cardiac_emr(n_patients=40, ontology=ontology)
    corpus, _ = build_cda_corpus(database, TerminologyService([ontology]))
    engine = XOntoRankEngine(corpus, ontology, strategy=RELATIONSHIPS)
    for result in engine.search('"cardiac arrest" amiodarone', k=5):
        print(result, engine.fragment_text(result)[:120])
"""

from .core import (ALL_STRATEGIES, DEFAULT_CONFIG, GRAPH,
                   ONTOLOGY_STRATEGIES, RELATIONSHIPS, TAXONOMY, XRANK,
                   DILCache, FederatedEngine, IndexManager,
                   ParallelIndexBuilder, QueryPipeline, QueryResult,
                   XOntoRankConfig, XOntoRankEngine, build_engines)
from .ir import Keyword, KeywordQuery
from .xmldoc import ShardedCorpus

__version__ = "1.2.0"

__all__ = [
    "ALL_STRATEGIES", "DEFAULT_CONFIG", "DILCache", "FederatedEngine",
    "GRAPH", "IndexManager", "Keyword", "KeywordQuery",
    "ONTOLOGY_STRATEGIES", "ParallelIndexBuilder", "QueryPipeline",
    "QueryResult", "RELATIONSHIPS", "ShardedCorpus", "TAXONOMY",
    "XOntoRankConfig", "XOntoRankEngine", "XRANK", "build_engines",
    "__version__",
]
