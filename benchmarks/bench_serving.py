"""Serving-layer benchmark: a live server under closed- and open-loop
load, plus a chaos round.

Four measurements, recorded to ``results/serving.txt``:

* **warm vs cold** -- p50 of a warm served query against the wall time
  of a one-shot ``python -m repro search`` process (the pre-serving
  workflow pays interpreter start, corpus parse and index construction
  on every query; the server pays them once at boot);
* **closed loop** -- T workers with distinct queries over keep-alive
  connections: p50/p99 latency and sustained QPS;
* **open loop** -- a burst far beyond ``concurrency + queue``: the
  measured shed (429) rate, demonstrating bounded admission instead of
  latency collapse;
* **coalescing** -- one hot query fired by many concurrent clients:
  measured single-flight hit rate (the acceptance bar is >= 50%);
* **chaos mode** -- a federated 2-shard server whose shard 1 store
  starts failing 100% mid-load: degraded (``X-Degraded-Shards``)
  responses are counted and *zero* non-deadline 5xx are tolerated.
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection

import pytest

from repro.core.config import XRANK, XOntoRankConfig
from repro.core.query.engine import XOntoRankEngine
from repro.core.query.federated import FederatedEngine
from repro.ontology.io import save_ontology
from repro.server import SearchService, ServerApp, ServerConfig
from repro.storage.errors import TransientStorageError
from repro.storage.interface import IndexStore
from repro.storage.memory_store import MemoryStore
from repro.xmldoc.serializer import serialize

from conftest import record_result

QUERIES = ["asthma", "chest pain", "aspirin", "myocardial infarction",
           "blood pressure", "heart murmur", "fever", "amiodarone"]


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
class ServerThread:
    """One ServerApp on an ephemeral port, on a background loop."""

    def __init__(self, service, config: ServerConfig) -> None:
        self.app = ServerApp(service, config)
        self.port: int | None = None
        self._loop = None
        self._stop = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.app.start()
        self.port = self.app.bound_port
        self.app.mark_ready()
        self._started.set()
        await self._stop.wait()
        await self.app.drain()

    def start(self) -> "ServerThread":
        self._thread.start()
        assert self._started.wait(30)
        return self

    def stop(self) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)

    def get(self, path: str,
            connection: HTTPConnection | None = None):
        own = connection is None
        if connection is None:
            connection = HTTPConnection("127.0.0.1", self.port,
                                        timeout=30)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            body = response.read()
            headers = {name.lower(): value
                       for name, value in response.getheaders()}
            return response.status, headers, body
        finally:
            if own:
                connection.close()

    def metrics(self) -> dict:
        return json.loads(self.get("/metrics")[2])


def closed_loop(server: ServerThread, workers: int, rounds: int,
                corpus: str = "default"):
    """Each worker owns a keep-alive connection and a distinct query
    mix; returns (latencies_seconds, wall_seconds, responses)."""
    latencies: list[float] = []
    lock = threading.Lock()
    statuses: list[int] = []

    def worker(worker_id: int) -> None:
        connection = HTTPConnection("127.0.0.1", server.port,
                                    timeout=30)
        mine: list[float] = []
        mine_status: list[int] = []
        try:
            for round_id in range(rounds):
                query = QUERIES[(worker_id + round_id) % len(QUERIES)]
                started = time.perf_counter()
                status, _, _ = server.get(
                    f"/search?q={query.replace(' ', '+')}"
                    f"&k=10&corpus={corpus}", connection)
                mine.append(time.perf_counter() - started)
                mine_status.append(status)
        finally:
            connection.close()
        with lock:
            latencies.extend(mine)
            statuses.extend(mine_status)

    wall_started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        list(pool.map(worker, range(workers)))
    wall = time.perf_counter() - wall_started
    return latencies, wall, statuses


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def data_dir(tmp_path_factory, bench_corpus, bench_ontology):
    """The corpus persisted as a CLI-loadable data directory (for the
    one-shot-process comparison)."""
    root = tmp_path_factory.mktemp("serving_data")
    save_ontology(bench_ontology, str(root / "ontology"))
    corpus_dir = root / "corpus"
    corpus_dir.mkdir()
    for document in bench_corpus:
        path = corpus_dir / f"patient-{document.doc_id:04d}.xml"
        path.write_text(serialize(document, indent="  "),
                        encoding="utf-8")
    return root


def test_serving_throughput_and_degradation(quick_mode, bench_corpus,
                                            bench_ontology, data_dir):
    workers = 4 if quick_mode else 8
    rounds = 3 if quick_mode else 25
    burst = 24 if quick_mode else 96
    cli_runs = 1 if quick_mode else 3
    lines = ["SERVING -- warm server vs one-shot CLI, load shedding, "
             "coalescing, chaos", ""]

    # ------------------------------------------------------------------
    # Warm server: closed-loop latency + QPS
    # ------------------------------------------------------------------
    engine = XOntoRankEngine(bench_corpus, bench_ontology,
                             strategy="relationships")
    for query in QUERIES:  # warm every workload DIL once
        engine.search(query, k=10)
    service = SearchService(stats=engine.stats)
    service.add_corpus("default", engine)
    server = ServerThread(service, ServerConfig(
        port=0, max_concurrency=4, max_queue=8,
        default_timeout_ms=10_000)).start()
    try:
        latencies, wall, statuses = closed_loop(server, workers, rounds)
        assert set(statuses) == {200}
        warm_p50 = percentile(latencies, 0.50)
        warm_p99 = percentile(latencies, 0.99)
        qps = len(latencies) / wall
        lines += [
            f"closed loop: {workers} workers x {rounds} rounds "
            f"({len(latencies)} requests, keep-alive)",
            f"  warm p50 {warm_p50 * 1e3:8.2f} ms   "
            f"p99 {warm_p99 * 1e3:8.2f} ms   "
            f"throughput {qps:7.1f} QPS", ""]

        # --------------------------------------------------------------
        # One-shot CLI process for the same query (the old workflow)
        # --------------------------------------------------------------
        cli_times = []
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src")
        for _ in range(cli_runs):
            started = time.perf_counter()
            completed = subprocess.run(
                [sys.executable, "-m", "repro", "search",
                 "--data", str(data_dir), "asthma", "-k", "10"],
                capture_output=True, env=environment, timeout=600)
            cli_times.append(time.perf_counter() - started)
            assert completed.returncode == 0, completed.stderr
        cli_p50 = statistics.median(cli_times)
        speedup = cli_p50 / warm_p50
        lines += [
            f"one-shot CLI (same query, {cli_runs} run(s)): "
            f"p50 {cli_p50:8.2f} s",
            f"  warm-server speedup: {speedup:8.0f}x "
            f"(acceptance bar: >= 10x)", ""]
        assert speedup >= 10.0

        # --------------------------------------------------------------
        # Open loop: burst far past capacity -> measured shed rate
        # --------------------------------------------------------------
        def blast(index: int) -> int:
            # Distinct q per request so single-flight cannot absorb it.
            return server.get(f"/search?q=burst{index}+asthma&k=5")[0]

        with ThreadPoolExecutor(max_workers=burst) as pool:
            burst_statuses = list(pool.map(blast, range(burst)))
        shed = burst_statuses.count(429)
        served = burst_statuses.count(200)
        assert shed + served == len(burst_statuses)  # nothing else
        shed_rate = shed / len(burst_statuses)
        lines += [
            f"open loop: burst of {burst} concurrent distinct queries "
            f"into capacity 12 (4 workers + 8 queued)",
            f"  served {served}   shed(429) {shed}   "
            f"shed rate {shed_rate:6.1%}", ""]

        # --------------------------------------------------------------
        # Coalescing: one hot query, many concurrent clients
        # --------------------------------------------------------------
        before = server.metrics()["counters"]
        hot = 16 if quick_mode else 32

        def hot_query(_index: int) -> int:
            return server.get("/search?q=hot+asthma+panel&k=10")[0]

        with ThreadPoolExecutor(max_workers=hot) as pool:
            hot_statuses = list(pool.map(hot_query, range(hot)))
        after = server.metrics()["counters"]
        coalesced = (after.get("server.coalesced", 0)
                     - before.get("server.coalesced", 0))
        hit_rate = coalesced / hot
        lines += [
            f"coalescing: {hot} concurrent identical queries",
            f"  evaluations {hot - coalesced}   "
            f"coalesced {coalesced}   hit rate {hit_rate:6.1%} "
            f"(acceptance bar: >= 50%)", ""]
        assert set(hot_statuses) == {200}
        assert hit_rate >= 0.5
    finally:
        server.stop()

    # ------------------------------------------------------------------
    # Chaos mode: fault-inject shard 1 mid-load
    # ------------------------------------------------------------------
    shards = 2
    stores = [MemoryStore() for _ in range(shards)]
    builder = FederatedEngine(bench_corpus, None, strategy=XRANK,
                              shards=shards)
    builder.build_index(vocabulary={query.split()[0]
                                    for query in QUERIES}, stores=stores)

    class ChaosStore(IndexStore):
        """Full-delegation store whose reads fail while ``failing``."""

        def __init__(self, inner):
            self._inner = inner
            self.failing = False

        def _guard(self):
            if self.failing:
                raise TransientStorageError("chaos: shard store down")

        def get_postings(self, strategy, keyword):
            self._guard()
            return self._inner.get_postings(strategy, keyword)

        def keywords(self, strategy):
            self._guard()
            return self._inner.keywords(strategy)

        def posting_count(self, strategy, keyword):
            self._guard()
            return self._inner.posting_count(strategy, keyword)

        def get_document(self, doc_id):
            self._guard()
            return self._inner.get_document(doc_id)

        def document_ids(self):
            self._guard()
            return self._inner.document_ids()

        def get_metadata(self, key, default=None):
            self._guard()
            return self._inner.get_metadata(key, default)

        def metadata_keys(self):
            self._guard()
            return self._inner.metadata_keys()

        def put_postings(self, strategy, keyword, postings):
            self._inner.put_postings(strategy, keyword, postings)

        def put_document(self, doc_id, xml_text):
            self._inner.put_document(doc_id, xml_text)

        def delete_document(self, doc_id):
            self._inner.delete_document(doc_id)

        def put_metadata(self, key, value):
            self._inner.put_metadata(key, value)

        def close(self):
            self._inner.close()

    fed = FederatedEngine(
        bench_corpus, None, strategy=XRANK, shards=shards,
        config=XOntoRankConfig(dil_cache_capacity=0))
    toggle = ChaosStore(stores[1])
    fed.attach_read_stores([stores[0], toggle])
    chaos_service = SearchService(stats=fed.stats,
                                  breaker_threshold=3,
                                  breaker_cooldown=0.5)
    chaos_service.add_corpus("default", fed)
    chaos_server = ServerThread(chaos_service, ServerConfig(
        port=0, max_concurrency=4, max_queue=16,
        default_timeout_ms=10_000)).start()
    try:
        healthy, _, _ = closed_loop(chaos_server, workers, rounds)
        toggle.failing = True  # mid-load: shard 1 drops dead

        degraded = 0
        five_hundreds = 0
        chaos_latencies: list[float] = []
        lock = threading.Lock()

        def chaos_worker(worker_id: int) -> None:
            nonlocal degraded, five_hundreds
            connection = HTTPConnection("127.0.0.1",
                                        chaos_server.port, timeout=30)
            try:
                for round_id in range(rounds):
                    query = QUERIES[(worker_id + round_id)
                                    % len(QUERIES)].split()[0]
                    started = time.perf_counter()
                    status, headers, _ = chaos_server.get(
                        f"/search?q={query}&k=10", connection)
                    elapsed = time.perf_counter() - started
                    with lock:
                        chaos_latencies.append(elapsed)
                        if status >= 500:
                            five_hundreds += 1
                        if headers.get("x-degraded-shards"):
                            degraded += 1
            finally:
                connection.close()

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(chaos_worker, range(workers)))

        toggle.failing = False
        time.sleep(0.6)  # one breaker cooldown
        status, headers, _ = chaos_server.get("/search?q=asthma&k=10")
        recovered = (status == 200
                     and not headers.get("x-degraded-shards"))
        counters = chaos_server.metrics()["counters"]
        lines += [
            f"chaos mode: shard 1/{shards} failing 100% under "
            f"{workers}x{rounds} load (federated, read-through, "
            f"cache disabled)",
            f"  degraded responses {degraded}   "
            f"non-deadline 5xx {five_hundreds}   "
            f"p50 during chaos "
            f"{percentile(chaos_latencies, 0.5) * 1e3:.2f} ms",
            f"  breaker trips "
            f"{counters.get('server.breaker.trips', 0)}   "
            f"resets {counters.get('server.breaker.resets', 0)}   "
            f"full fidelity after cooldown: "
            f"{'yes' if recovered else 'NO'}", ""]
        assert five_hundreds == 0
        assert degraded >= 1
        assert recovered
        assert len(healthy) == workers * rounds
    finally:
        chaos_server.stop()

    record_result("serving", "\n".join(lines) + "\n")
