"""Figure 11 -- average query execution time vs number of keywords
(Section VII-B).

Runs top-10 queries of 2-5 keywords (sampled deterministically from the
experiment vocabulary) against every strategy and reports the average
execution time per keyword count -- the series plotted in Figure 11.

Qualitative targets from the paper's prose:
* execution time grows with the number of keywords;
* "the time for the Relationships algorithm is higher due to the larger
  number of nodes in the XML document that are ontologically related to
  the query keywords".
"""

import random
import time

from repro.core.config import ALL_STRATEGIES, RELATIONSHIPS
from repro.core.index.vocabulary import corpus_vocabulary
from repro.core.obs import Tracer, render_profile
from repro.core.query.engine import XOntoRankEngine
from repro.core.query.federated import FederatedEngine

from conftest import record_result

KEYWORD_COUNTS = (2, 3, 4, 5)
QUERIES_PER_POINT = 8
TOP_K = 10
SAMPLE_SEED = 29
SHARD_COUNTS = (1, 2, 4)


def build_query_set(corpus):
    """Nested query families: each sample's k-keyword query extends its
    (k-1)-keyword query, so per-sample work grows monotonically with
    the keyword count and the curves are comparable."""
    words = sorted(word for word in corpus_vocabulary(corpus)
                   if len(word) > 3 and not word.isdigit())
    rng = random.Random(SAMPLE_SEED)
    families = [rng.sample(words, max(KEYWORD_COUNTS))
                for _ in range(QUERIES_PER_POINT)]
    return {count: [" ".join(family[:count]) for family in families]
            for count in KEYWORD_COUNTS}


def warm_caches(engines, queries):
    """Pre-build all DILs so the measurement isolates the query phase,
    as the paper's setup does (indexes are built in pre-processing)."""
    for engine in engines.values():
        for query_list in queries.values():
            for query in query_list:
                engine.search(query, k=TOP_K)


def measure(engines, queries, repetitions: int = 3):
    series = {name: {} for name in engines}
    for count, query_list in queries.items():
        for name, engine in engines.items():
            started = time.perf_counter()
            for _ in range(repetitions):
                for query in query_list:
                    engine.search(query, k=TOP_K)
            elapsed = time.perf_counter() - started
            series[name][count] = (elapsed / (repetitions
                                              * len(query_list)) * 1000.0)
    return series


def render_series(series):
    header = f"{'#keywords':>10}" + "".join(f"{name:>16}"
                                            for name in ALL_STRATEGIES)
    lines = [f"FIGURE 11 -- average query execution time (ms, top-{TOP_K})",
             header]
    for count in KEYWORD_COUNTS:
        cells = "".join(f"{series[name][count]:>16.3f}"
                        for name in ALL_STRATEGIES)
        lines.append(f"{count:>10}" + cells)
    return "\n".join(lines) + "\n"


def test_fig11_query_time(benchmark, bench_engines, bench_corpus):
    queries = build_query_set(bench_corpus)
    warm_caches(bench_engines, queries)
    series = benchmark.pedantic(measure, args=(bench_engines, queries),
                                rounds=3, iterations=1)
    record_result("fig11_query_time", render_series(series))

    # Paper claim: more keywords cost more. With nested query families
    # the endpoint comparison is meaningful per strategy.
    for name in ALL_STRATEGIES:
        assert series[name][KEYWORD_COUNTS[-1]] > \
            series[name][KEYWORD_COUNTS[0]]
    # Paper claim: Relationships is the slowest strategy overall.
    totals = {name: sum(series[name].values()) for name in series}
    assert totals["relationships"] >= totals["xrank"]


def test_fig11_sharded_query_time(bench_corpus, bench_ontology):
    """Figure 11's workload through the federated engine, by shard
    count (1/2/4; Relationships, the costliest strategy).

    The federated engine's contract is that sharding changes the
    execution plan, never the answer: every shard count must return the
    byte-identical ranking of the single engine. The per-shard-count
    timings land next to the Figure 11 series so the fan-out overhead
    is visible alongside the numbers it perturbs.
    """
    queries = build_query_set(bench_corpus)
    reference = XOntoRankEngine(bench_corpus, bench_ontology,
                                strategy=RELATIONSHIPS)
    engines = {
        f"{shards} shard{'s' if shards > 1 else ''}": FederatedEngine(
            bench_corpus, bench_ontology, strategy=RELATIONSHIPS,
            shards=shards, shard_workers=min(shards, 2))
        for shards in SHARD_COUNTS}
    warm_caches({"single": reference, **engines}, queries)

    expected = {query: [(r.dewey, r.score) for r in
                        reference.search(query, k=TOP_K)]
                for query_list in queries.values()
                for query in query_list}
    for engine in engines.values():
        for query, ranking in expected.items():
            assert [(r.dewey, r.score) for r in
                    engine.search(query, k=TOP_K)] == ranking

    series = measure(engines, queries, repetitions=2)
    names = list(engines)
    header = f"{'#keywords':>10}" + "".join(f"{name:>16}"
                                            for name in names)
    lines = [f"FIGURE 11 (sharded) -- relationships query time "
             f"(ms, top-{TOP_K})", header]
    for count in KEYWORD_COUNTS:
        cells = "".join(f"{series[name][count]:>16.3f}"
                        for name in names)
        lines.append(f"{count:>10}" + cells)
    record_result("fig11_sharded_query_time", "\n".join(lines) + "\n")


def test_fig11_phase_breakdown(bench_corpus, bench_ontology):
    """Where does Figure 11's query time go, phase by phase?

    Runs the same query workload through a traced Relationships engine
    (the costliest strategy) and records the per-phase profile, so the
    Figure 11 totals can be decomposed into parse / OntoScore / DIL
    merge / storage -- the breakdown docs/OBSERVABILITY.md describes.
    """
    tracer = Tracer(capacity=65536)
    engine = XOntoRankEngine(bench_corpus, bench_ontology,
                             strategy=RELATIONSHIPS, tracer=tracer)
    queries = build_query_set(bench_corpus)
    warm_caches({RELATIONSHIPS: engine}, queries)
    engine.stats.reset()
    tracer.clear()
    for query_list in queries.values():
        for query in query_list:
            engine.search(query, k=TOP_K)
    profile = render_profile(engine.stats, tracer)
    record_result("fig11_phase_breakdown", profile + "\n")

    # The profile must attribute time to the query phases the paper's
    # Figure 11 aggregates: parsing, DIL merging and the search total.
    timers = engine.stats.timers()
    n_queries = sum(len(qs) for qs in queries.values())
    assert timers["query.search"].count == n_queries
    assert timers["query.parse"].count == n_queries
    assert timers["query.dil_merge"].count == n_queries
    # Phases nest inside the search span, so no phase can exceed it.
    assert timers["query.dil_merge"].total <= timers["query.search"].total
    for phase in ("parse", "ontoscore", "dil_merge", "storage"):
        assert phase in profile
