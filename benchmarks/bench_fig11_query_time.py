"""Figure 11 -- average query execution time vs number of keywords
(Section VII-B).

Runs top-10 queries of 2-5 keywords (sampled deterministically from the
experiment vocabulary) against every strategy and reports the average
execution time per keyword count -- the series plotted in Figure 11.

Qualitative targets from the paper's prose:
* execution time grows with the number of keywords;
* "the time for the Relationships algorithm is higher due to the larger
  number of nodes in the XML document that are ontologically related to
  the query keywords".
"""

import random
import time

from repro.core.config import ALL_STRATEGIES, RELATIONSHIPS
from repro.core.index.vocabulary import corpus_vocabulary
from repro.core.obs import Tracer, render_profile
from repro.core.query.engine import XOntoRankEngine
from repro.core.query.federated import FederatedEngine
from repro.core.query.results import rank_results
from repro.ir.tokenizer import KeywordQuery

from conftest import record_result

KEYWORD_COUNTS = (2, 3, 4, 5)
QUERIES_PER_POINT = 8
TOP_K = 10
SAMPLE_SEED = 29
SHARD_COUNTS = (1, 2, 4)


def build_query_set(corpus, families: int = QUERIES_PER_POINT):
    """Nested query families: each sample's k-keyword query extends its
    (k-1)-keyword query, so per-sample work grows monotonically with
    the keyword count and the curves are comparable."""
    words = sorted(word for word in corpus_vocabulary(corpus)
                   if len(word) > 3 and not word.isdigit())
    rng = random.Random(SAMPLE_SEED)
    samples = [rng.sample(words, max(KEYWORD_COUNTS))
               for _ in range(families)]
    return {count: [" ".join(family[:count]) for family in samples]
            for count in KEYWORD_COUNTS}


def warm_caches(engines, queries):
    """Pre-build all DILs so the measurement isolates the query phase,
    as the paper's setup does (indexes are built in pre-processing)."""
    for engine in engines.values():
        for query_list in queries.values():
            for query in query_list:
                engine.search(query, k=TOP_K)


def paper_mode(engine, query):
    """Full Eq. 1 enumeration then ranking -- the algorithm Figure 11
    times in the paper. The engine's default has become the bounded
    top-k mode, which can *shrink* with extra keywords (more documents
    prunable), so the paper's growth claim is only meaningful against
    the full mode; the bounded mode's savings are measured separately
    by ``test_fig11_topk_pruning``."""
    return engine.pipeline.run(query, k=None).results


def measure(engines, queries, repetitions: int = 3, runner=None):
    run = runner or (lambda engine, query: engine.search(query,
                                                         k=TOP_K))
    series = {name: {} for name in engines}
    for count, query_list in queries.items():
        for name, engine in engines.items():
            started = time.perf_counter()
            for _ in range(repetitions):
                for query in query_list:
                    run(engine, query)
            elapsed = time.perf_counter() - started
            series[name][count] = (elapsed / (repetitions
                                              * len(query_list)) * 1000.0)
    return series


def render_series(series):
    header = f"{'#keywords':>10}" + "".join(f"{name:>16}"
                                            for name in ALL_STRATEGIES)
    lines = [f"FIGURE 11 -- average query execution time (ms, top-{TOP_K})",
             header]
    for count in KEYWORD_COUNTS:
        cells = "".join(f"{series[name][count]:>16.3f}"
                        for name in ALL_STRATEGIES)
        lines.append(f"{count:>10}" + cells)
    return "\n".join(lines) + "\n"


def test_fig11_query_time(benchmark, bench_engines, bench_corpus,
                          quick_mode):
    queries = build_query_set(bench_corpus,
                              families=3 if quick_mode
                              else QUERIES_PER_POINT)
    warm_caches(bench_engines, queries)
    series = benchmark.pedantic(measure, args=(bench_engines, queries),
                                kwargs={"runner": paper_mode},
                                rounds=1 if quick_mode else 3,
                                iterations=1)
    record_result("fig11_query_time", render_series(series))

    # Paper claim: more keywords cost more. With nested query families
    # the endpoint comparison is meaningful per strategy.
    for name in ALL_STRATEGIES:
        assert series[name][KEYWORD_COUNTS[-1]] > \
            series[name][KEYWORD_COUNTS[0]]
    # Paper claim: Relationships is the slowest strategy overall.
    totals = {name: sum(series[name].values()) for name in series}
    assert totals["relationships"] >= totals["xrank"]


def test_fig11_sharded_query_time(bench_corpus, bench_ontology,
                                  quick_mode):
    """Figure 11's workload through the federated engine, by shard
    count (1/2/4; Relationships, the costliest strategy).

    The federated engine's contract is that sharding changes the
    execution plan, never the answer: every shard count must return the
    byte-identical ranking of the single engine. The per-shard-count
    timings land next to the Figure 11 series so the fan-out overhead
    is visible alongside the numbers it perturbs.
    """
    queries = build_query_set(bench_corpus,
                              families=3 if quick_mode
                              else QUERIES_PER_POINT)
    reference = XOntoRankEngine(bench_corpus, bench_ontology,
                                strategy=RELATIONSHIPS)
    shard_counts = SHARD_COUNTS[:2] if quick_mode else SHARD_COUNTS
    engines = {
        f"{shards} shard{'s' if shards > 1 else ''}": FederatedEngine(
            bench_corpus, bench_ontology, strategy=RELATIONSHIPS,
            shards=shards, shard_workers=min(shards, 2))
        for shards in shard_counts}
    warm_caches({"single": reference, **engines}, queries)

    expected = {query: [(r.dewey, r.score) for r in
                        reference.search(query, k=TOP_K)]
                for query_list in queries.values()
                for query in query_list}
    for engine in engines.values():
        for query, ranking in expected.items():
            assert [(r.dewey, r.score) for r in
                    engine.search(query, k=TOP_K)] == ranking

    series = measure(engines, queries,
                     repetitions=1 if quick_mode else 2)
    names = list(engines)
    header = f"{'#keywords':>10}" + "".join(f"{name:>16}"
                                            for name in names)
    lines = [f"FIGURE 11 (sharded) -- relationships query time "
             f"(ms, top-{TOP_K})", header]
    for count in KEYWORD_COUNTS:
        cells = "".join(f"{series[name][count]:>16.3f}"
                        for name in names)
        lines.append(f"{count:>10}" + cells)
    record_result("fig11_sharded_query_time", "\n".join(lines) + "\n")


def test_fig11_phase_breakdown(bench_corpus, bench_ontology,
                               quick_mode):
    """Where does Figure 11's query time go, phase by phase?

    Runs the same query workload through a traced Relationships engine
    (the costliest strategy) and records the per-phase profile, so the
    Figure 11 totals can be decomposed into parse / OntoScore / DIL
    merge / storage -- the breakdown docs/OBSERVABILITY.md describes.
    """
    tracer = Tracer(capacity=65536)
    engine = XOntoRankEngine(bench_corpus, bench_ontology,
                             strategy=RELATIONSHIPS, tracer=tracer)
    queries = build_query_set(bench_corpus,
                              families=3 if quick_mode
                              else QUERIES_PER_POINT)
    warm_caches({RELATIONSHIPS: engine}, queries)
    engine.stats.reset()
    tracer.clear()
    for query_list in queries.values():
        for query in query_list:
            engine.search(query, k=TOP_K)
    profile = render_profile(engine.stats, tracer)
    record_result("fig11_phase_breakdown", profile + "\n")

    # The profile must attribute time to the query phases the paper's
    # Figure 11 aggregates: parsing, DIL merging and the search total.
    timers = engine.stats.timers()
    n_queries = sum(len(qs) for qs in queries.values())
    assert timers["query.search"].count == n_queries
    assert timers["query.parse"].count == n_queries
    assert timers["query.dil_merge"].count == n_queries
    # Phases nest inside the search span, so no phase can exceed it.
    assert timers["query.dil_merge"].total <= timers["query.search"].total
    for phase in ("parse", "ontoscore", "dil_merge", "storage"):
        assert phase in profile


def test_fig11_topk_pruning(bench_corpus, bench_ontology, quick_mode):
    """The top-k column of Figure 11: how many postings does bounded
    (document-skipping) evaluation save over full evaluation?

    Runs the Figure 11 workload through both execution modes of the
    same Relationships processor and records, per keyword count, the
    merge-consumed postings of each plus the documents skipped. The
    results must be byte-identical (the bounded mode is an
    optimization, not an approximation) and the bounded mode must read
    strictly fewer postings overall.
    """
    engine = XOntoRankEngine(bench_corpus, bench_ontology,
                             strategy=RELATIONSHIPS)
    queries = build_query_set(bench_corpus,
                              families=3 if quick_mode
                              else QUERIES_PER_POINT)
    processor = engine.processor
    rows = []
    for count, query_list in queries.items():
        full_reads = bounded_reads = skipped = 0
        for query in query_list:
            parsed = KeywordQuery.parse(query)
            dils = [engine.dil_for(keyword) for keyword in parsed]
            full = processor.collect(dils)
            full_reads += processor.last_statistics.postings_read
            bounded = processor.collect_topk(dils, TOP_K)
            bounded_reads += processor.last_statistics.postings_read
            skipped += processor.last_statistics.docs_skipped
            assert bounded == rank_results(full, TOP_K), query
        assert bounded_reads <= full_reads
        rows.append((count, full_reads, bounded_reads, skipped))

    header = (f"{'#keywords':>10}{'full reads':>14}{'top-k reads':>14}"
              f"{'saved %':>10}{'docs skipped':>14}")
    lines = [f"FIGURE 11 (top-k) -- postings read, full vs bounded "
             f"(relationships, k={TOP_K})", header]
    for count, full_reads, bounded_reads, skipped in rows:
        saved = (100.0 * (full_reads - bounded_reads) / full_reads
                 if full_reads else 0.0)
        lines.append(f"{count:>10}{full_reads:>14}{bounded_reads:>14}"
                     f"{saved:>10.1f}{skipped:>14}")
    record_result("fig11_topk_pruning", "\n".join(lines) + "\n")

    # The acceptance bar: pruning must save postings on this workload.
    assert sum(row[2] for row in rows) < sum(row[1] for row in rows)
    assert sum(row[3] for row in rows) > 0


ONTOLOGY_DECADES = (1_000, 10_000, 100_000)
DECADE_VOCAB_SIZE = 24
DECADE_QUERY = "asthma heart disorder"


def test_fig11_ontology_decades(benchmark, tmp_path, quick_mode):
    """Figure 11's x-axis the paper could not move: the ontology size.

    At each synthetic-SNOMED decade, measures time-to-first-answer --
    the pre-processing build (a fixed small vocabulary) plus one top-10
    Relationships query -- cold (expansions computed from the graph,
    written through to a persisted OntoScoreCache) against warm (a
    fresh engine reading that cache). The ranked answers must be
    byte-identical; only the pre-processing cost may move, since the
    query phase runs on the already-built DILs either way.
    """
    from repro.cda import build_cda_corpus
    from repro.emr import generate_cardiac_emr
    from repro.ontology import TerminologyService
    from repro.ontology.snomed import build_synthetic_snomed
    from repro.storage import SQLiteStore

    decades = ONTOLOGY_DECADES[:2] if quick_mode else ONTOLOGY_DECADES

    def time_to_first_answer(corpus, ontology, vocabulary, cache_path):
        engine = XOntoRankEngine(corpus, ontology,
                                 strategy=RELATIONSHIPS)
        cache_store = SQLiteStore(cache_path)
        engine.attach_ontology_cache(cache_store)
        started = time.perf_counter()
        engine.build_index(vocabulary=vocabulary)
        build_s = time.perf_counter() - started
        started = time.perf_counter()
        results = engine.search(DECADE_QUERY, k=TOP_K)
        query_s = time.perf_counter() - started
        cache_store.close()
        return build_s, query_s, results

    def sweep():
        rows = []
        for target in decades:
            ontology = build_synthetic_snomed(target_concepts=target)
            database = generate_cardiac_emr(n_patients=4, seed=7,
                                            ontology=ontology)
            corpus, _ = build_cda_corpus(
                database, TerminologyService([ontology]))
            words = sorted(word for word in corpus_vocabulary(corpus)
                           if len(word) > 3 and not word.isdigit())
            vocabulary = set(words[:DECADE_VOCAB_SIZE])
            vocabulary.update(DECADE_QUERY.split())
            cache_path = str(tmp_path / f"cache_{target}.db")
            cold = time_to_first_answer(corpus, ontology, vocabulary,
                                        cache_path)
            warm = time_to_first_answer(corpus, ontology, vocabulary,
                                        cache_path)
            rows.append((target, len(ontology), cold, warm))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"FIGURE 11 (ontology decades) -- relationships, "
        f"{DECADE_VOCAB_SIZE}-word build + top-{TOP_K} "
        f"{DECADE_QUERY!r}, cold vs warm OntoScoreCache",
        f"{'target':>10}{'concepts':>10}{'cold build (s)':>16}"
        f"{'warm build (s)':>16}{'speedup':>9}{'query (ms)':>12}",
    ]
    for target, concepts, cold, warm in rows:
        cold_build, cold_query, cold_results = cold
        warm_build, warm_query, warm_results = warm
        # Identity contract: the cache must not change a single answer.
        assert [(r.doc_id, r.dewey, r.score) for r in cold_results] \
            == [(r.doc_id, r.dewey, r.score) for r in warm_results]
        speedup = (cold_build / warm_build if warm_build
                   else float("inf"))
        lines.append(
            f"{target:>10}{concepts:>10}{cold_build:>16.3f}"
            f"{warm_build:>16.3f}{speedup:>9.2f}"
            f"{(cold_query + warm_query) / 2 * 1000.0:>12.2f}")
    record_result("fig11_ontology_decades", "\n".join(lines) + "\n")

    for target, _concepts, cold, warm in rows:
        assert warm[0] < cold[0], (
            f"warm build slower than cold at the {target} decade")
