"""Observability overhead -- does instrumentation stay out of the way?

The query-path spans and timers (docs/OBSERVABILITY.md) are meant to be
cheap enough to leave compiled in: with tracing *disabled* every
instrumentation site hits the shared no-op span, and with tracing
*enabled* the per-span cost is two clock reads plus a list append.

This benchmark pins both claims on a Figure-11-style workload:

* an engine with a live :class:`~repro.core.obs.Tracer` returns
  byte-identical results to an untraced engine (observation never
  changes ranking);
* the enabled/disabled wall-time ratio stays under 1.05 (the <5%%
  overhead budget), measured min-over-rounds so scheduler noise on a
  shared runner cannot fail the build spuriously.
"""

import time

from repro.core.config import RELATIONSHIPS
from repro.core.obs import Tracer
from repro.core.query.engine import XOntoRankEngine

from bench_fig11_query_time import TOP_K, build_query_set, warm_caches
from conftest import record_result

ROUNDS = 7
REPETITIONS = 3
OVERHEAD_BUDGET = 1.05


def run_workload(engine, queries):
    for query_list in queries.values():
        for query in query_list:
            engine.search(query, k=TOP_K)


def best_of(engine, queries):
    """Min wall time over ROUNDS: the least-noise estimate of cost."""
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        for _ in range(REPETITIONS):
            run_workload(engine, queries)
        best = min(best, time.perf_counter() - started)
    return best


def test_obs_overhead(bench_corpus, bench_ontology):
    queries = build_query_set(bench_corpus)
    plain = XOntoRankEngine(bench_corpus, bench_ontology,
                            strategy=RELATIONSHIPS)
    traced = XOntoRankEngine(bench_corpus, bench_ontology,
                             strategy=RELATIONSHIPS,
                             tracer=Tracer(capacity=65536))
    warm_caches({"plain": plain, "traced": traced}, queries)

    # Observation must never change what the user sees: identical
    # result lists, scores included, traced vs untraced.
    for query_list in queries.values():
        for query in query_list:
            assert plain.search(query, k=TOP_K) == \
                traced.search(query, k=TOP_K)

    plain_s = best_of(plain, queries)
    traced_s = best_of(traced, queries)
    ratio = traced_s / plain_s if plain_s else float("inf")

    record_result("obs_overhead", (
        f"OBSERVABILITY OVERHEAD -- fig11 workload, relationships, "
        f"best of {ROUNDS} rounds x {REPETITIONS} reps\n"
        f"{'variant':>10}{'seconds':>12}\n"
        f"{'disabled':>10}{plain_s:>12.4f}\n"
        f"{'enabled':>10}{traced_s:>12.4f}\n"
        f"{'ratio':>10}{ratio:>12.3f}\n"))

    assert ratio <= OVERHEAD_BUDGET, (
        f"tracing overhead {ratio:.3f}x exceeds "
        f"{OVERHEAD_BUDGET:.2f}x budget")
