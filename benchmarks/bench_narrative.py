"""Narrative front-end relevance -- clinical prose vs curated keywords.

The paper's workload (Section VII-A) assumes expert-curated keyword
queries. The narrative front-end relaxes that: each of the twenty
curated queries gets a free-text paraphrase (stopword glue and/or
synonym phrasing), mapped to a keyword query by the
``NarrativeQueryMapper`` before the unchanged engine runs it.

Per query pair we report precision@5 against the relevance oracle for
both phrasings, plus the top-k Kendall tau distance between the two
ranked lists. The acceptance bar: mean narrative relevance must be at
least the curated baseline -- free-text phrasing must not cost quality.
"""

from repro.core.config import RELATIONSHIPS
from repro.core.query.engine import XOntoRankEngine
from repro.evaluation import (SYNONYM_PHRASING, kendall_tau_topk,
                              narrative_queries, precision_at_k)
from repro.ir.tokenizer import KeywordQuery, tokenize

from conftest import record_result

TOP_K = 10
JUDGED_K = 5
QUICK_PAIRS = 6


def evaluate_pairs(engine, narrative_engine, oracle, pairs):
    rows = []
    for curated, variant in pairs:
        curated_results = engine.search(curated.text, k=TOP_K)
        outcome = narrative_engine.search_outcome(variant.text, k=TOP_K)

        # Judge the union of both lists against the *curated* query:
        # the paraphrase carries the same information need, so the
        # oracle's notion of relevance is shared.
        intent = KeywordQuery.parse(curated.text)
        fragments = {}
        for result in (*curated_results, *outcome.results):
            key = result.dewey.encode()
            if key not in fragments:
                fragments[key] = engine.fragment(result)
        relevant = {key for key, fragment in fragments.items()
                    if oracle.is_relevant(intent, fragment)}

        rows.append({
            "query_id": curated.query_id,
            "style": variant.style,
            "curated": precision_at_k(curated_results, relevant,
                                      JUDGED_K),
            "narrative": precision_at_k(outcome.results, relevant,
                                        JUDGED_K),
            "tau": kendall_tau_topk(
                [r.dewey.encode() for r in curated_results],
                [r.dewey.encode() for r in outcome.results]),
            "mapped": str(outcome.narrative.query),
            "mapping": outcome.narrative,
        })
    return rows


def render_table(rows):
    header = (f"{'Query':>6}{'Style':>10}{'Curated@5':>12}"
              f"{'Narrative@5':>13}{'Tau':>8}  Mapped query")
    lines = ["Narrative front-end relevance "
             f"(k={TOP_K}, judged@{JUDGED_K}, {len(rows)} query pairs)",
             header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row['query_id']:>6}{row['style']:>10}"
                     f"{row['curated']:>12.2f}{row['narrative']:>13.2f}"
                     f"{row['tau']:>8.3f}  {row['mapped']}")
    lines.append("-" * len(header))
    curated_mean = sum(r["curated"] for r in rows) / len(rows)
    narrative_mean = sum(r["narrative"] for r in rows) / len(rows)
    tau_mean = sum(r["tau"] for r in rows) / len(rows)
    lines.append(f"{'MEAN':>6}{'':>10}{curated_mean:>12.2f}"
                 f"{narrative_mean:>13.2f}{tau_mean:>8.3f}")
    return "\n".join(lines) + "\n", curated_mean, narrative_mean, tau_mean


def test_narrative_relevance(benchmark, bench_corpus, bench_ontology,
                             bench_engines, bench_oracle, quick_mode):
    narrative_engine = XOntoRankEngine(bench_corpus, bench_ontology,
                                       strategy=RELATIONSHIPS)
    narrative_engine.enable_narrative()
    pairs = narrative_queries()
    if quick_mode:
        pairs = pairs[:QUICK_PAIRS]

    rows = benchmark.pedantic(
        evaluate_pairs,
        args=(bench_engines["relationships"], narrative_engine,
              bench_oracle, pairs),
        rounds=1, iterations=1)
    text, curated_mean, narrative_mean, tau_mean = render_table(rows)
    if not quick_mode:
        record_result("narrative", text)
    else:
        print(f"\n{text}")

    # Acceptance bar: prose phrasing must not cost relevance.
    assert narrative_mean >= curated_mean
    # The mapped queries land close to the curated rankings overall.
    assert tau_mean <= 0.10
    # Synonym phrasings must be normalized away: no raw synonym token
    # (paracetamol, adrenaline, svt, ...) survives into the engine
    # query -- the mapper emits the concept's preferred term.
    for row in rows:
        if row["style"] != SYNONYM_PHRASING:
            continue
        variant_only = set()
        mapped_tokens = set(tokenize(row["mapped"]))
        for mapping in row["mapping"].mappings:
            if mapping.method == "synonym":
                variant_only.update(
                    set(tokenize(mapping.phrase))
                    - set(tokenize(mapping.term)))
        assert not (variant_only & mapped_tokens)
