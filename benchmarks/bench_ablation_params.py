"""Ablation -- decay / threshold / t sweeps (beyond the paper).

Section VII-B notes that "the size of the XOnto-DIL entries can be
reduced by appropriately adjusting the threshold and/or decay
parameters"; this benchmark quantifies that sensitivity: per-keyword
posting counts of the Relationships index as each parameter moves
through its range while the others stay at the published defaults
(decay 0.5, threshold 0.1, t 0.5).
"""

from repro import RELATIONSHIPS, XOntoRankConfig, XOntoRankEngine

from conftest import record_result

KEYWORDS = ("asthma", "arrest", "effusion", "amiodarone", "bronchial",
            "fever", "valve", "coarctation")

DECAYS = (0.3, 0.5, 0.8)
THRESHOLDS = (0.05, 0.1, 0.3)
T_VALUES = (0.25, 0.5, 1.0)


def postings_for(corpus, ontology, config):
    engine = XOntoRankEngine(corpus, ontology, strategy=RELATIONSHIPS,
                             config=config)
    index = engine.builder.build(KEYWORDS)
    return index.average_stats()["postings"]


def sweep(corpus, ontology):
    rows = []
    for threshold in THRESHOLDS:
        config = XOntoRankConfig(threshold=threshold)
        rows.append(("threshold", threshold,
                     postings_for(corpus, ontology, config)))
    for t in T_VALUES:
        config = XOntoRankConfig(t=t)
        rows.append(("t", t, postings_for(corpus, ontology, config)))
    for decay in DECAYS:
        config = XOntoRankConfig(decay=decay)
        rows.append(("decay", decay,
                     postings_for(corpus, ontology, config)))
    return rows


def render(rows):
    lines = ["ABLATION -- avg postings per keyword (Relationships) vs "
             "parameters",
             f"{'parameter':<12}{'value':>8}{'avg postings':>16}"]
    for name, value, postings in rows:
        lines.append(f"{name:<12}{value:>8.2f}{postings:>16.1f}")
    return "\n".join(lines) + "\n"


def test_ablation_parameters(benchmark, bench_corpus, bench_ontology):
    rows = benchmark.pedantic(sweep, args=(bench_corpus, bench_ontology),
                              rounds=1, iterations=1)
    record_result("ablation_params", render(rows))

    by_parameter = {}
    for name, value, postings in rows:
        by_parameter.setdefault(name, []).append((value, postings))
    # Raising the threshold prunes the index.
    thresholds = by_parameter["threshold"]
    assert thresholds[0][1] >= thresholds[-1][1]
    # Raising t (weaker dotted-link decay) grows it.
    t_values = by_parameter["t"]
    assert t_values[-1][1] >= t_values[0][1]
