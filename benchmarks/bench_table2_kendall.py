"""Table II -- normalized top-k Kendall tau between the four ranked
lists (Section VII-A).

Each of the twenty workload queries yields a top-10 list per strategy;
pairwise distances use the Fagin K^(p) measure (p = 0.5) and are
averaged across queries.

Qualitative targets from the paper's prose:
* "the large distance between the result of Graph and the Relationships
  algorithm";
* "the distance between Taxonomy and Relationships lists is small"
  (Relationships extends the Taxonomy expansion).
"""

from repro.core.config import ALL_STRATEGIES
from repro.evaluation import (average_matrices, distance_matrix,
                              table2_queries)

from conftest import record_result

TOP_K = 10
PENALTY = 0.5


def compute_average_matrix(engines):
    matrices = []
    for workload_query in table2_queries():
        lists = {name: [result.dewey.encode()
                        for result in engine.search(workload_query.text,
                                                    k=TOP_K)]
                 for name, engine in engines.items()}
        matrices.append(distance_matrix(lists, p=PENALTY))
    return average_matrices(matrices)


def render_matrix(matrix):
    header = f"{'':>15}" + "".join(f"{name:>15}"
                                   for name in ALL_STRATEGIES)
    lines = [f"TABLE II -- normalized Kendall tau "
             f"(k={TOP_K}, p={PENALTY}, {len(table2_queries())} queries)",
             header]
    for row_name in ALL_STRATEGIES:
        cells = "".join(f"{matrix[(row_name, column)]:>15.3f}"
                        for column in ALL_STRATEGIES)
        lines.append(f"{row_name:>15}" + cells)
    return "\n".join(lines) + "\n"


def test_table2_kendall_matrix(benchmark, bench_engines):
    matrix = benchmark.pedantic(compute_average_matrix,
                                args=(bench_engines,), rounds=1,
                                iterations=1)
    record_result("table2_kendall", render_matrix(matrix))

    # Diagonal is zero; matrix is symmetric.
    for name in ALL_STRATEGIES:
        assert matrix[(name, name)] == 0.0
        for other in ALL_STRATEGIES:
            assert abs(matrix[(name, other)]
                       - matrix[(other, name)]) < 1e-12

    # Paper claims: the ontology-aware strategies cluster together
    # ("Relationships ... extends the Taxonomy expansion"), away from
    # the XRANK baseline. Our corpus's bridge queries are anatomical
    # (role-edge) rather than taxonomic, which brings Graph and
    # Relationships closer than the paper's exact ordering -- the
    # robust shared claim is that both Taxonomy<->Relationships and
    # Graph<->Relationships are distinctly smaller than any distance
    # to XRANK (see EXPERIMENTS.md for the per-cell discussion).
    tax_rel = matrix[("taxonomy", "relationships")]
    graph_rel = matrix[("graph", "relationships")]
    xrank_rel = matrix[("xrank", "relationships")]
    assert tax_rel < xrank_rel
    assert graph_rel < xrank_rel
    assert tax_rel < matrix[("xrank", "graph")]
