"""Table I -- number of results marked relevant per query (Section VII-A).

For each two-keyword expert query, the union of the four algorithms'
top-5 results is judged by the relevance oracle (the stand-in for the
paper's medical expert, marking up to five results); the table reports,
per algorithm, how many of its own top-5 were marked.

Qualitative targets from the paper's prose:
* Relationships and Graph are "generally superior to the baseline
  XRANK";
* Taxonomy "can be slightly worse than XRANK" on individual queries;
* the ["supraventricular arrhythmia", acetaminophen] row is all zeros.
"""

from repro.core.config import ALL_STRATEGIES
from repro.evaluation import run_survey, table1_queries

from conftest import record_result


def render_table(rows):
    header = (f"{'Query':<52}" +
              "".join(f"{name:>15}" for name in ALL_STRATEGIES))
    lines = ["TABLE I -- results marked relevant (<=5 per query)", header,
             "-" * len(header)]
    totals = dict.fromkeys(ALL_STRATEGIES, 0)
    for row in rows:
        cells = "".join(f"{row.counts[name]:>15}"
                        for name in ALL_STRATEGIES)
        lines.append(f"{row.query_id + ' ' + row.query_text:<52}" + cells)
        for name in ALL_STRATEGIES:
            totals[name] += row.counts[name]
    averages = "".join(f"{totals[name] / len(rows):>15.2f}"
                       for name in ALL_STRATEGIES)
    lines.append("-" * len(header))
    lines.append(f"{'AVERAGE':<52}" + averages)
    return "\n".join(lines) + "\n", totals


def run_full_survey(engines, oracle):
    return [run_survey(engines, oracle, query.text, query.query_id)
            for query in table1_queries()]


def test_table1_relevance_survey(benchmark, bench_engines, bench_oracle):
    rows = benchmark.pedantic(run_full_survey,
                              args=(bench_engines, bench_oracle),
                              rounds=1, iterations=1)
    text, totals = render_table(rows)
    record_result("table1_relevance", text)

    queries = len(rows)
    # Paper claim 1: ontology-aware Relationships/Graph beat XRANK
    # (Graph's margin is within a tie on some corpora; see
    # EXPERIMENTS.md).
    assert totals["relationships"] > totals["xrank"]
    assert totals["graph"] >= totals["xrank"]
    # The central phenomenon: on queries whose keywords never co-occur,
    # XRANK finds nothing while the ontology-aware strategies find
    # relevant results.
    bridged = [row for row in rows
               if row.counts["xrank"] == 0
               and "acetaminophen" not in row.query_text]
    assert bridged
    for row in bridged:
        assert row.counts["relationships"] > 0
        assert row.counts["graph"] > 0
    # Paper claim 2: Taxonomy loses to XRANK on at least one query
    # (far-ancestor / missing role-edge matches).
    assert any(row.counts["taxonomy"] < row.counts["xrank"]
               for row in rows)
    # Paper claim 3: the acetaminophen context trap zeroes every
    # ontology-aware algorithm.
    trap = next(row for row in rows if "acetaminophen" in row.query_text)
    assert all(count == 0 for count in trap.counts.values())
    assert queries == 10
