"""Table III -- average per-keyword XOnto-DIL size (Section VII-B).

For each approach, builds the XOnto-DILs of a fixed keyword sample (a
deterministic slice of the experiment vocabulary: document words plus
ontology words within 2 relationships of referenced concepts) and
reports the three published columns: average creation time (ms), average
posting count, and average list size (KB).

Qualitative targets from the paper's prose:
* XRANK's lists are the smallest and fastest to build;
* Graph and Relationships produce the most postings;
* Taxonomy produces far fewer postings than Relationships;
* Taxonomy's creation time exceeds Graph's (its undecayed is-a
  direction expands much further than Graph's 3-hop radius).
"""

import os
import random
import time

from repro.cda import build_cda_corpus
from repro.core.config import ALL_STRATEGIES, RELATIONSHIPS
from repro.core.index.parallel import ParallelIndexBuilder
from repro.core.index.vocabulary import experiment_vocabulary
from repro.core.obs import Tracer, render_profile
from repro.core.query.engine import XOntoRankEngine
from repro.core.stats import (APPEND_KEYWORDS_BUILT,
                              APPEND_KEYWORDS_SKIPPED)
from repro.emr import generate_cardiac_emr
from repro.storage import MemoryStore, load_catalog
from repro.xmldoc.model import Corpus

from conftest import EMR_SEED, record_result

SAMPLE_SIZE = 120
SAMPLE_SEED = 13
PARALLEL_WORKERS = 4


def keyword_sample(corpus, ontology):
    vocabulary = sorted(experiment_vocabulary(corpus, ontology, radius=2))
    rng = random.Random(SAMPLE_SEED)
    if len(vocabulary) <= SAMPLE_SIZE:
        return vocabulary
    return sorted(rng.sample(vocabulary, SAMPLE_SIZE))


def build_all(engines, keywords):
    return {name: engine.builder.build(keywords, strategy_name=name)
            for name, engine in engines.items()}


def render_table(stats):
    header = (f"{'Algorithm':<16}{'Avg creation (ms)':>20}"
              f"{'Avg postings':>16}{'Avg size (KB)':>16}")
    lines = [f"TABLE III -- average per-keyword XOnto-DIL size "
             f"({SAMPLE_SIZE}-keyword sample)", header, "-" * len(header)]
    for name in ALL_STRATEGIES:
        row = stats[name]
        lines.append(f"{name:<16}{row['creation_time_ms']:>20.3f}"
                     f"{row['postings']:>16.1f}{row['size_kb']:>16.3f}")
    return "\n".join(lines) + "\n"


def test_table3_index_creation(benchmark, bench_engines, bench_corpus,
                               bench_ontology):
    keywords = keyword_sample(bench_corpus, bench_ontology)
    indexes = benchmark.pedantic(build_all,
                                 args=(bench_engines, keywords),
                                 rounds=1, iterations=1)
    stats = {name: index.average_stats()
             for name, index in indexes.items()}
    record_result("table3_index", render_table(stats))

    # Paper claim: XRANK smallest and fastest.
    for name in ("graph", "taxonomy", "relationships"):
        assert stats[name]["postings"] > stats["xrank"]["postings"]
        assert stats[name]["creation_time_ms"] > \
            stats["xrank"]["creation_time_ms"]
    # Paper claim: Relationships emits far more postings than Taxonomy.
    assert stats["relationships"]["postings"] > \
        stats["taxonomy"]["postings"]
    # Paper claim: Graph is among the largest indexes.
    assert stats["graph"]["postings"] > stats["taxonomy"]["postings"]
    # Size column tracks the posting column.
    for name in ALL_STRATEGIES:
        assert (stats[name]["size_kb"] > 0) == \
            (stats[name]["postings"] > 0)


def test_table3_parallel_build(benchmark, bench_engines, bench_corpus,
                               bench_ontology):
    """Serial vs parallel build of the costliest strategy's index,
    swept over growing keyword tiers up to the full experiment
    vocabulary.

    The determinism contract (identical DILs) is asserted at every
    tier; the wall-clock speedup only on the largest tier and only
    where it is physically possible -- a process pool on a multi-core
    host (>= 4 cores; with fewer, pool startup eats the theoretical
    gain). On one core the comparison is still recorded so the
    overhead stays visible.
    """
    vocabulary = sorted(experiment_vocabulary(bench_corpus,
                                              bench_ontology, radius=2))
    tiers = [tier for tier in (120, 480, len(vocabulary))
             if tier <= len(vocabulary)]
    engine = bench_engines[RELATIONSHIPS]
    parallel_builder = ParallelIndexBuilder(
        engine.builder, workers=PARALLEL_WORKERS, mode="process")

    def compare():
        results = []
        for tier in tiers:
            keywords = vocabulary[:tier]
            started = time.perf_counter()
            serial = engine.builder.build(keywords,
                                          strategy_name=RELATIONSHIPS)
            serial_s = time.perf_counter() - started
            started = time.perf_counter()
            parallel = parallel_builder.build(
                keywords, strategy_name=RELATIONSHIPS)
            parallel_s = time.perf_counter() - started
            results.append((tier, serial, serial_s, parallel,
                            parallel_s))
        return results

    results = benchmark.pedantic(compare, rounds=1, iterations=1)

    cores = os.cpu_count() or 1
    lines = [
        f"PARALLEL BUILD -- relationships, {PARALLEL_WORKERS} workers, "
        f"{cores} cores",
        f"{'keywords':>10}{'serial (s)':>12}{'parallel (s)':>14}"
        f"{'speedup':>10}",
    ]
    for tier, serial, serial_s, parallel, parallel_s in results:
        # Determinism contract: byte-identical posting lists per tier.
        assert serial.keywords() == parallel.keywords()
        for key in serial.keywords():
            assert serial.lists[key].encoded() == \
                parallel.lists[key].encoded()
        speedup = serial_s / parallel_s if parallel_s else float("inf")
        lines.append(f"{tier:>10}{serial_s:>12.3f}{parallel_s:>14.3f}"
                     f"{speedup:>10.2f}")
    record_result("table3_parallel_build", "\n".join(lines) + "\n")
    if cores >= 4:
        _, _, serial_s, _, parallel_s = results[-1]
        assert serial_s / parallel_s >= 1.5, (
            f"largest-tier parallel speedup {serial_s / parallel_s:.2f}x "
            f"below 1.5x on {cores} cores")


def test_table3_incremental_append(benchmark, bench_ontology,
                                   bench_terminology, quick_mode):
    """The incremental column Table III never had: the cost of adding
    one document to an existing index, against the full rebuild the
    paper's batch pipeline would require.

    The LSM segment lifecycle appends the new document as one immutable
    segment, building posting lists only for keywords the new content
    can reach (the exactness skip filter proves the rest untouched), so
    the append cost tracks the *new* content while the rebuild cost
    tracks the corpus.
    """
    patients = 6 if quick_mode else 16
    database = generate_cardiac_emr(n_patients=patients + 1,
                                    seed=EMR_SEED,
                                    ontology=bench_ontology)
    corpus, _ = build_cda_corpus(database, bench_terminology)
    documents = list(corpus)
    base, extra = documents[:-1], documents[-1]

    def grow():
        engine = XOntoRankEngine(Corpus(base), bench_ontology,
                                 strategy=RELATIONSHIPS)
        store = MemoryStore()
        started = time.perf_counter()
        engine.build_index(store=store)
        base_build_s = time.perf_counter() - started
        started = time.perf_counter()
        engine.add_documents([extra], store)
        append_s = time.perf_counter() - started

        rebuilt = XOntoRankEngine(Corpus(documents), bench_ontology,
                                  strategy=RELATIONSHIPS)
        started = time.perf_counter()
        rebuilt.build_index(store=MemoryStore())
        rebuild_s = time.perf_counter() - started
        return engine, store, base_build_s, append_s, rebuild_s

    engine, store, base_build_s, append_s, rebuild_s = \
        benchmark.pedantic(grow, rounds=1, iterations=1)

    built = engine.stats.value(APPEND_KEYWORDS_BUILT)
    skipped = engine.stats.value(APPEND_KEYWORDS_SKIPPED)
    speedup = rebuild_s / append_s if append_s else float("inf")
    lines = [
        f"TABLE III (incremental) -- append 1 doc vs rebuild "
        f"({patients}+1 patients, relationships)",
        f"{'base build (s)':>16}{'append (s)':>12}{'rebuild (s)':>13}"
        f"{'speedup':>9}{'kw built':>10}{'kw skipped':>12}",
        f"{base_build_s:>16.3f}{append_s:>12.3f}{rebuild_s:>13.3f}"
        f"{speedup:>9.2f}{built:>10}{skipped:>12}",
    ]
    record_result("table3_incremental_append", "\n".join(lines) + "\n")

    # The organization exists to make this true: one appended document
    # never costs a rebuild. The skip filter must have proven a real
    # share of the keyword universe untouched, and the base segment
    # survives by construction.
    catalog = load_catalog(store)
    assert len(catalog.segments) == 2
    assert catalog.segments[-1].doc_ids == (extra.doc_id,)
    assert skipped > 0
    assert append_s < rebuild_s


def test_table3_build_phase_breakdown(bench_corpus, bench_ontology):
    """Per-phase profile of a parallel Relationships build.

    Decomposes Table III's creation-time column: worker-side shard
    build wall time (``parallel_build.shard_build``) versus the
    parent's merge cost (``index.merge_shard`` spans), recorded the
    same way ``build-index --profile`` reports it.
    """
    tracer = Tracer(capacity=65536)
    engine = XOntoRankEngine(bench_corpus, bench_ontology,
                             strategy=RELATIONSHIPS, tracer=tracer)
    keywords = keyword_sample(bench_corpus, bench_ontology)
    parallel_builder = ParallelIndexBuilder(
        engine.builder, workers=PARALLEL_WORKERS, mode="process",
        stats=engine.stats, tracer=tracer)
    index = parallel_builder.build(keywords,
                                   strategy_name=RELATIONSHIPS)
    assert index.keywords()
    profile = render_profile(engine.stats, tracer)
    record_result("table3_build_phase_breakdown", profile + "\n")

    timers = engine.stats.timers()
    shards = engine.stats.snapshot()["parallel_build.shards_merged"]
    assert shards > 0
    # Every shard contributes a worker-side build timing and a
    # parent-side merge span.
    assert timers["parallel_build.shard_build"].count == shards
    assert timers["index.merge_shard"].count == shards
    assert timers["index.parallel_build"].count == 1
    # Worker build time dominates the merge (merging is a decode+dict
    # insert; building runs OntoScore expansion per keyword).
    assert timers["parallel_build.shard_build"].total > \
        timers["index.merge_shard"].total


ONTOLOGY_DECADES = (1_000, 10_000, 100_000)
DECADE_KEYWORDS = ("asthma", "heart", "valve", "disorder", "structure",
                   "finding", "procedure", "entire")


def test_table3_ontology_decades(benchmark, tmp_path, quick_mode):
    """The column Table III holds fixed: the ontology's size.

    Sweeps synthetic-SNOMED decades and times the OntoScore expansion
    stage of index creation -- cold (computed from the graph, written
    through to a persisted cache) against warm (a fresh computer
    reading the same cache). The expansions are pure in
    ``(fingerprint, strategy, params, keyword)``, so warm must be both
    byte-identical and, at real scale, dramatically cheaper: the
    acceptance line is >= 5x at the 10^5 decade.
    """
    from repro.core.config import DEFAULT_CONFIG
    from repro.core.ontoscore import OntoScoreCache, expansion_params
    from repro.core.ontoscore.factory import make_ontoscore
    from repro.ir.tokenizer import Keyword
    from repro.ontology.snomed import build_synthetic_snomed
    from repro.storage import SQLiteStore

    decades = ONTOLOGY_DECADES[:2] if quick_mode else ONTOLOGY_DECADES
    keywords = [Keyword((word,)) for word in
                (DECADE_KEYWORDS[:4] if quick_mode else DECADE_KEYWORDS)]
    params = expansion_params(DEFAULT_CONFIG)

    def sweep():
        rows = []
        for target in decades:
            ontology = build_synthetic_snomed(target_concepts=target)
            store = SQLiteStore(str(tmp_path / f"cache_{target}.db"))
            cold = make_ontoscore(RELATIONSHIPS, ontology,
                                  DEFAULT_CONFIG)
            cold.attach_persistent_cache(OntoScoreCache(
                store, ontology.fingerprint(), RELATIONSHIPS, params))
            started = time.perf_counter()
            cold_maps = [cold.compute(keyword) for keyword in keywords]
            cold_s = time.perf_counter() - started

            warm = make_ontoscore(RELATIONSHIPS, ontology,
                                  DEFAULT_CONFIG)
            warm.attach_persistent_cache(OntoScoreCache(
                store, ontology.fingerprint(), RELATIONSHIPS, params))
            started = time.perf_counter()
            warm_maps = [warm.compute(keyword) for keyword in keywords]
            warm_s = time.perf_counter() - started
            store.close()

            # Identity contract: the cache may only change the cost.
            assert warm_maps == cold_maps
            concepts = sum(len(scores) for scores in cold_maps)
            rows.append((target, len(ontology), cold_s, warm_s,
                         concepts))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"TABLE III (ontology decades) -- relationships expansion, "
        f"{len(keywords)} keywords, cold graph vs warm OntoScoreCache",
        f"{'target':>10}{'concepts':>10}{'cold (s)':>10}{'warm (s)':>10}"
        f"{'speedup':>9}{'expanded':>10}",
    ]
    for target, concepts, cold_s, warm_s, expanded in rows:
        speedup = cold_s / warm_s if warm_s else float("inf")
        lines.append(f"{target:>10}{concepts:>10}{cold_s:>10.3f}"
                     f"{warm_s:>10.3f}{speedup:>9.2f}{expanded:>10}")
    record_result("table3_ontology_decades", "\n".join(lines) + "\n")

    for target, _concepts, cold_s, warm_s, _expanded in rows:
        assert warm_s < cold_s, (
            f"warm slower than cold at the {target} decade")
    if not quick_mode:
        _target, _concepts, cold_s, warm_s, _expanded = rows[-1]
        assert cold_s / warm_s >= 5.0, (
            f"warm-vs-cold speedup {cold_s / warm_s:.2f}x below 5x "
            f"at the 10^5 decade")
