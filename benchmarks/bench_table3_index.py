"""Table III -- average per-keyword XOnto-DIL size (Section VII-B).

For each approach, builds the XOnto-DILs of a fixed keyword sample (a
deterministic slice of the experiment vocabulary: document words plus
ontology words within 2 relationships of referenced concepts) and
reports the three published columns: average creation time (ms), average
posting count, and average list size (KB).

Qualitative targets from the paper's prose:
* XRANK's lists are the smallest and fastest to build;
* Graph and Relationships produce the most postings;
* Taxonomy produces far fewer postings than Relationships;
* Taxonomy's creation time exceeds Graph's (its undecayed is-a
  direction expands much further than Graph's 3-hop radius).
"""

import random

from repro.core.config import ALL_STRATEGIES
from repro.core.index.vocabulary import experiment_vocabulary

from conftest import record_result

SAMPLE_SIZE = 120
SAMPLE_SEED = 13


def keyword_sample(corpus, ontology):
    vocabulary = sorted(experiment_vocabulary(corpus, ontology, radius=2))
    rng = random.Random(SAMPLE_SEED)
    if len(vocabulary) <= SAMPLE_SIZE:
        return vocabulary
    return sorted(rng.sample(vocabulary, SAMPLE_SIZE))


def build_all(engines, keywords):
    return {name: engine.builder.build(keywords, strategy_name=name)
            for name, engine in engines.items()}


def render_table(stats):
    header = (f"{'Algorithm':<16}{'Avg creation (ms)':>20}"
              f"{'Avg postings':>16}{'Avg size (KB)':>16}")
    lines = [f"TABLE III -- average per-keyword XOnto-DIL size "
             f"({SAMPLE_SIZE}-keyword sample)", header, "-" * len(header)]
    for name in ALL_STRATEGIES:
        row = stats[name]
        lines.append(f"{name:<16}{row['creation_time_ms']:>20.3f}"
                     f"{row['postings']:>16.1f}{row['size_kb']:>16.3f}")
    return "\n".join(lines) + "\n"


def test_table3_index_creation(benchmark, bench_engines, bench_corpus,
                               bench_ontology):
    keywords = keyword_sample(bench_corpus, bench_ontology)
    indexes = benchmark.pedantic(build_all,
                                 args=(bench_engines, keywords),
                                 rounds=1, iterations=1)
    stats = {name: index.average_stats()
             for name, index in indexes.items()}
    record_result("table3_index", render_table(stats))

    # Paper claim: XRANK smallest and fastest.
    for name in ("graph", "taxonomy", "relationships"):
        assert stats[name]["postings"] > stats["xrank"]["postings"]
        assert stats[name]["creation_time_ms"] > \
            stats["xrank"]["creation_time_ms"]
    # Paper claim: Relationships emits far more postings than Taxonomy.
    assert stats["relationships"]["postings"] > \
        stats["taxonomy"]["postings"]
    # Paper claim: Graph is among the largest indexes.
    assert stats["graph"]["postings"] > stats["taxonomy"]["postings"]
    # Size column tracks the posting column.
    for name in ALL_STRATEGIES:
        assert (stats[name]["size_kb"] > 0) == \
            (stats[name]["postings"] > 0)
