"""Ablation -- index storage backends (memory vs SQLite vs mmap).

The paper persisted indexes in SQL Server; our substitute offers an
in-memory store, SQLite, and the compact mmap backend
(docs/STORAGE.md). This benchmark measures write+read-back throughput
for a realistic slice of the Relationships index, then the two columns
the compact codec exists for:

* **postings/sec** -- how fast each on-disk representation turns into
  query-servable posting data (SQLite rows fully decoded vs XPB1
  blocks served lazily through the block fast path);
* **resident bytes/posting** -- what a cached posting list costs to
  *hold* (eager ``Posting`` objects vs one compact block).

The acceptance gate asserts the compact representation wins at least
one of them decisively (>= 2x postings/sec or >= 30% memory), and the
rendered table lands in ``benchmarks/results/ablation_storage.txt``.
"""

import os
import time
import tracemalloc

from repro.core.index.dil import DeweyInvertedList
from repro.ir.tokenizer import Keyword
from repro.storage.memory_store import MemoryStore
from repro.storage.mmap_store import MmapStore, atomic_mmap_build
from repro.storage.sqlite_store import SQLiteStore

from conftest import record_result

KEYWORDS = ("asthma", "arrest", "effusion", "amiodarone", "fever",
            "valve", "temperature", "pulse")


def build_payload(engines):
    engine = engines["relationships"]
    index = engine.builder.build(KEYWORDS)
    return {key: dil.encoded() for key, dil in index.lists.items()}


def roundtrip(store, payload):
    for keyword, postings in payload.items():
        store.put_postings("relationships", keyword, postings)
    read_back = 0
    for keyword in payload:
        read_back += len(store.get_postings("relationships", keyword))
    return read_back


def test_storage_memory(benchmark, bench_engines):
    payload = build_payload(bench_engines)
    expected = sum(len(postings) for postings in payload.values())
    count = benchmark(roundtrip, MemoryStore(), payload)
    assert count == expected


def test_storage_sqlite_memory(benchmark, bench_engines):
    payload = build_payload(bench_engines)
    expected = sum(len(postings) for postings in payload.values())
    with SQLiteStore() as store:
        count = benchmark(roundtrip, store, payload)
    assert count == expected


def test_storage_sqlite_file(benchmark, bench_engines, tmp_path):
    payload = build_payload(bench_engines)
    expected = sum(len(postings) for postings in payload.values())
    path = str(tmp_path / "bench.db")
    with SQLiteStore(path) as store:
        count = benchmark(roundtrip, store, payload)
    assert count == expected
    assert os.path.exists(path)


# ----------------------------------------------------------------------
# Compact codec columns: postings/sec and resident bytes/posting
# ----------------------------------------------------------------------

def _timed_reads(read_one, keywords, repetitions):
    """(postings served, seconds) over ``repetitions`` full sweeps."""
    total = 0
    started = time.perf_counter()
    for _ in range(repetitions):
        for keyword in keywords:
            total += read_one(keyword)
    return total, time.perf_counter() - started


def _resident_bytes(build_all):
    """Heap bytes retained by the structures ``build_all`` returns."""
    tracemalloc.start()
    tracemalloc.reset_peak()
    before, _ = tracemalloc.get_traced_memory()
    held = build_all()
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert held  # keep the structures alive across the measurement
    return after - before


def test_compact_codec_columns(bench_engines, tmp_path, quick_mode):
    payload = build_payload(bench_engines)
    keywords = sorted(payload)
    n_postings = sum(len(postings) for postings in payload.values())
    repetitions = 5 if quick_mode else 40

    sqlite_path = str(tmp_path / "columns.db")
    with SQLiteStore(sqlite_path) as sqlite:
        for keyword, postings in payload.items():
            sqlite.put_postings("relationships", keyword, postings)
        mmap_path = str(tmp_path / "columns.mm")
        with atomic_mmap_build(mmap_path) as writer:
            for keyword, postings in payload.items():
                writer.put_postings("relationships", keyword, postings)

        # postings/sec: persisted bytes -> query-servable DIL. The
        # sqlite side decodes every row eagerly (its only mode); the
        # mmap side serves the block fast path the query engine uses
        # (directory parse now, posting decode deferred and usually
        # skipped by top-k pruning).
        sqlite_read, sqlite_seconds = _timed_reads(
            lambda kw: len(sqlite.get_postings("relationships", kw)),
            keywords, repetitions)
        mm = MmapStore(mmap_path)
        try:
            mmap_read, mmap_seconds = _timed_reads(
                lambda kw: len(DeweyInvertedList.from_block(
                    Keyword.from_text(kw),
                    mm.get_posting_block("relationships", kw))),
                keywords, repetitions)
            # Full-decode comparison too, so the table shows the
            # codec's own speed without the laziness advantage.
            mmap_eager_read, mmap_eager_seconds = _timed_reads(
                lambda kw: len(mm.get_postings("relationships", kw)),
                keywords, repetitions)
        finally:
            mm.close()
    assert sqlite_read == mmap_read == mmap_eager_read \
        == n_postings * repetitions

    sqlite_rate = sqlite_read / sqlite_seconds
    mmap_rate = mmap_read / mmap_seconds
    mmap_eager_rate = mmap_eager_read / mmap_eager_seconds

    # resident bytes/posting: eager Posting objects vs compact blocks.
    mm = MmapStore(mmap_path)
    try:
        eager_bytes = _resident_bytes(lambda: [
            DeweyInvertedList.from_encoded(
                Keyword.from_text(kw), payload[kw]).sorted_postings()
            for kw in keywords])
        # A compact list's resident cost is the block bytes themselves
        # (the mapping pages), exactly what size_bytes reports.
        compact_bytes = sum(
            mm.get_posting_block("relationships", kw).size_bytes()
            for kw in keywords)
    finally:
        mm.close()

    speedup = mmap_rate / sqlite_rate
    reduction = 1.0 - compact_bytes / eager_bytes

    lines = [
        "ABLATION -- storage backends "
        f"({len(keywords)} keywords, {n_postings} postings, "
        f"{repetitions} read sweeps)",
        "",
        "roundtrip throughput: see pytest-benchmark table "
        "(memory vs sqlite vs sqlite-file)",
        "",
        f"{'representation':<34}{'postings/sec':>14}"
        f"{'bytes/posting':>15}",
        f"{'sqlite rows, eager decode':<34}{sqlite_rate:>14,.0f}"
        f"{eager_bytes / n_postings:>15.1f}",
        f"{'mmap XPB1 blocks, lazy (query path)':<34}{mmap_rate:>14,.0f}"
        f"{compact_bytes / n_postings:>15.1f}",
        f"{'mmap XPB1 blocks, full decode':<34}"
        f"{mmap_eager_rate:>14,.0f}{compact_bytes / n_postings:>15.1f}",
        "",
        f"lazy-block speedup over sqlite: {speedup:.1f}x",
        f"resident-memory reduction (compact vs eager Posting "
        f"objects): {reduction:.1%}",
    ]
    record_result("ablation_storage", "\n".join(lines) + "\n")

    # The acceptance gate: the compact representation must win
    # decisively on at least one axis.
    assert speedup >= 2.0 or reduction >= 0.30, (
        f"compact codec shows neither >=2x postings/sec "
        f"({speedup:.2f}x) nor >=30% memory reduction "
        f"({reduction:.1%})")
