"""Ablation -- index storage backends (memory vs SQLite).

The paper persisted indexes in SQL Server; our substitute offers an
in-memory store and SQLite. This benchmark measures write+read-back
throughput for a realistic slice of the Relationships index, informing
the deployment trade-off documented in the README.
"""

import os

from repro.storage.memory_store import MemoryStore
from repro.storage.sqlite_store import SQLiteStore

from conftest import record_result

KEYWORDS = ("asthma", "arrest", "effusion", "amiodarone", "fever",
            "valve", "temperature", "pulse")


def build_payload(engines):
    engine = engines["relationships"]
    index = engine.builder.build(KEYWORDS)
    return {key: dil.encoded() for key, dil in index.lists.items()}


def roundtrip(store, payload):
    for keyword, postings in payload.items():
        store.put_postings("relationships", keyword, postings)
    read_back = 0
    for keyword in payload:
        read_back += len(store.get_postings("relationships", keyword))
    return read_back


def test_storage_memory(benchmark, bench_engines):
    payload = build_payload(bench_engines)
    expected = sum(len(postings) for postings in payload.values())
    count = benchmark(roundtrip, MemoryStore(), payload)
    assert count == expected


def test_storage_sqlite_memory(benchmark, bench_engines):
    payload = build_payload(bench_engines)
    expected = sum(len(postings) for postings in payload.values())
    with SQLiteStore() as store:
        count = benchmark(roundtrip, store, payload)
    assert count == expected


def test_storage_sqlite_file(benchmark, bench_engines, tmp_path):
    payload = build_payload(bench_engines)
    expected = sum(len(postings) for postings in payload.values())
    path = str(tmp_path / "bench.db")
    with SQLiteStore(path) as store:
        count = benchmark(roundtrip, store, payload)
    assert count == expected
    assert os.path.exists(path)
    record_result("ablation_storage",
                  "ABLATION -- storage backends: see pytest-benchmark "
                  "table (memory vs sqlite vs sqlite-file roundtrip)\n")
