"""Ablation -- tree semantics vs graph search over reference edges.

Section III's forward pointer made measurable: every CDA document in
the corpus links SubstanceAdministration narratives to their coded
entries (``content ID`` / ``reference``), so the element graph is
strictly richer than the containment tree. This ablation compares, on
the workload, the answers and cost of the tree engine (Eq. 1 over
XOnto-DILs) against the graph engine seeded by the same NodeScorer.
"""

import time

from repro import RELATIONSHIPS, XOntoRankEngine
from repro.core.query.graph_search import GraphSearchEngine
from repro.evaluation import table1_queries

from conftest import record_result

TOP_K = 5


def compare(corpus, ontology):
    tree = XOntoRankEngine(corpus, ontology, strategy=RELATIONSHIPS)
    graph = GraphSearchEngine(corpus, tree.builder.node_scorer)
    rows = []
    tree_seconds = 0.0
    graph_seconds = 0.0
    for workload_query in table1_queries():
        started = time.perf_counter()
        tree_results = tree.search(workload_query.text, k=TOP_K)
        tree_seconds += time.perf_counter() - started
        started = time.perf_counter()
        graph_results = graph.search(workload_query.text, k=TOP_K)
        graph_seconds += time.perf_counter() - started
        escaping = sum(1 for result in graph_results
                       if result.escapes_subtree)
        rows.append((workload_query.text, len(tree_results),
                     len(graph_results), escaping))
    return rows, graph.link_edge_count, tree_seconds, graph_seconds


def render(rows, link_edges, tree_seconds, graph_seconds):
    lines = [f"ABLATION -- tree vs graph search "
             f"({link_edges} reference edges in the corpus)",
             f"{'query':<52}{'tree':>6}{'graph':>7}{'escaping':>10}"]
    for text, tree_count, graph_count, escaping in rows:
        lines.append(f"{text:<52}{tree_count:>6}{graph_count:>7}"
                     f"{escaping:>10}")
    lines.append(f"\ntotal query time: tree {tree_seconds * 1000:.1f} ms, "
                 f"graph {graph_seconds * 1000:.1f} ms")
    return "\n".join(lines) + "\n"


def test_ablation_graph_search(benchmark, bench_corpus, bench_ontology):
    rows, link_edges, tree_seconds, graph_seconds = benchmark.pedantic(
        compare, args=(bench_corpus, bench_ontology), rounds=1,
        iterations=1)
    record_result("ablation_graph_search",
                  render(rows, link_edges, tree_seconds, graph_seconds))
    # The corpus genuinely contains reference edges.
    assert link_edges > 0
    # Graph search covers every query tree search answers.
    for text, tree_count, graph_count, _ in rows:
        if tree_count > 0:
            assert graph_count > 0, text
    # At least some answers exploit the richer graph (evidence outside
    # the root's subtree), which tree semantics cannot express.
    assert sum(escaping for *_, escaping in rows) > 0
