"""Shared experiment setup for the benchmark harness.

Every table/figure benchmark runs against the same experimental corpus:
the synthetic SNOMED at default scale and a 60-patient pediatric
cardiology clinic (seed 7), matching the configuration recorded in
EXPERIMENTS.md. Parameters follow Section VII: decay 0.5, threshold 0.1,
t 0.5.

Measured tables are also appended to ``benchmarks/results/`` so the
numbers quoted in EXPERIMENTS.md can be regenerated verbatim.
"""

from __future__ import annotations

import os

import pytest

from repro import build_engines
from repro.cda import build_cda_corpus
from repro.emr import generate_cardiac_emr
from repro.evaluation import RelevanceOracle
from repro.ontology import TerminologyService, build_synthetic_snomed

N_PATIENTS = 60
EMR_SEED = 7
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="smoke mode: shrink workloads/repetitions so the bench "
             "suite exercises every code path in CI time")


@pytest.fixture(scope="session")
def quick_mode(request):
    """True under ``--quick``: benchmarks should cut repetitions and
    sample sizes but still run (and assert) end to end."""
    return request.config.getoption("--quick")


@pytest.fixture(scope="session")
def bench_ontology():
    return build_synthetic_snomed()


@pytest.fixture(scope="session")
def bench_terminology(bench_ontology):
    return TerminologyService([bench_ontology])


@pytest.fixture(scope="session")
def bench_corpus(bench_ontology, bench_terminology):
    database = generate_cardiac_emr(n_patients=N_PATIENTS, seed=EMR_SEED,
                                    ontology=bench_ontology)
    corpus, _ = build_cda_corpus(database, bench_terminology)
    return corpus


@pytest.fixture(scope="session")
def bench_engines(bench_corpus, bench_ontology):
    return build_engines(bench_corpus, bench_ontology)


@pytest.fixture(scope="session")
def bench_oracle(bench_ontology, bench_terminology):
    return RelevanceOracle(bench_ontology, bench_terminology)


def record_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"\n{text}")
