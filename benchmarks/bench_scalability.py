"""Scalability sweep (beyond the paper): corpus size vs cost.

The paper's future work calls out "scaling to larger ontologies and
datasets"; this benchmark sweeps the corpus size and reports index-
build time for a fixed keyword set (serial and on the parallel worker
pool) plus average query latency, so the growth trend (expected:
roughly linear in corpus size for both) is visible and regressions are
catchable. The parallel build must produce the identical index at
every tier -- the differential suite's contract, re-checked here at
benchmark scale -- and on multi-core hosts the largest tier must show
at least a 1.5x build speedup.
"""

import os
import time

from repro import RELATIONSHIPS, XOntoRankEngine
from repro.cda import build_cda_corpus
from repro.core.index.parallel import ParallelIndexBuilder
from repro.emr import generate_cardiac_emr

from conftest import record_result

SIZES = (10, 20, 40)
KEYWORDS = ("asthma", "arrest", "amiodarone", "effusion", "fever")
QUERIES = ("asthma theophylline", '"cardiac arrest" amiodarone',
           "fever acetaminophen")
PARALLEL_WORKERS = 4
#: Vocabulary slice for the serial-vs-parallel comparison: big enough
#: to amortize pool startup, the same slice at every tier.
VOCAB_SLICE = 200


def sweep(ontology, terminology):
    rows = []
    for size in SIZES:
        database = generate_cardiac_emr(n_patients=size, seed=7,
                                        ontology=ontology)
        corpus, _ = build_cda_corpus(database, terminology)
        engine = XOntoRankEngine(corpus, ontology,
                                 strategy=RELATIONSHIPS)
        started = time.perf_counter()
        index = engine.builder.build(KEYWORDS)
        build_seconds = time.perf_counter() - started
        # Serial vs parallel over a vocabulary slice large enough to
        # amortize pool startup (the 5-keyword build above is kept for
        # continuity with recorded results).
        from repro.core.index.vocabulary import corpus_vocabulary
        vocabulary = sorted(corpus_vocabulary(corpus))[:VOCAB_SLICE]
        started = time.perf_counter()
        serial_index = engine.builder.build(vocabulary)
        serial_seconds = time.perf_counter() - started
        parallel_builder = ParallelIndexBuilder(
            engine.builder, workers=PARALLEL_WORKERS, mode="process")
        started = time.perf_counter()
        parallel_index = parallel_builder.build(vocabulary)
        parallel_seconds = time.perf_counter() - started
        # The measured cost model: ``auto`` probes the first chunk and
        # projects fork overhead against the remaining serial cost, so
        # its choice (recorded per tier) should track whichever fixed
        # mode wins at this corpus size.
        auto_builder = ParallelIndexBuilder(
            engine.builder, workers=PARALLEL_WORKERS, mode="auto")
        started = time.perf_counter()
        auto_index = auto_builder.build(vocabulary)
        auto_seconds = time.perf_counter() - started
        snapshot = auto_builder.registry.snapshot()
        auto_mode = next(
            (name.rsplit(".", 1)[1] for name, count in snapshot.items()
             if name.startswith("parallel_build.mode.") and count),
            "?")
        # Determinism contract at every tier, for both pool flavors.
        assert serial_index.keywords() == parallel_index.keywords()
        assert serial_index.keywords() == auto_index.keywords()
        for key in serial_index.keywords():
            assert serial_index.lists[key].encoded() == \
                parallel_index.lists[key].encoded()
            assert serial_index.lists[key].encoded() == \
                auto_index.lists[key].encoded()
        for query in QUERIES:  # warm DIL cache for the query phase
            engine.search(query, k=10)
        started = time.perf_counter()
        repetitions = 5
        for _ in range(repetitions):
            for query in QUERIES:
                engine.search(query, k=10)
        query_ms = ((time.perf_counter() - started)
                    / (repetitions * len(QUERIES)) * 1000.0)
        rows.append((size, corpus.total_nodes(), build_seconds * 1000.0,
                     serial_seconds * 1000.0, parallel_seconds * 1000.0,
                     auto_seconds * 1000.0, auto_mode,
                     index.total_postings(), query_ms))
    return rows


def render(rows):
    lines = ["SCALABILITY -- corpus size vs cost (Relationships, "
             f"{PARALLEL_WORKERS} workers, {os.cpu_count() or 1} cores, "
             f"{VOCAB_SLICE}-word parallel slice)",
             f"{'patients':>9}{'elements':>10}{'build (ms)':>12}"
             f"{'serial (ms)':>13}{'par (ms)':>10}{'auto (ms)':>11}"
             f"{'auto mode':>11}{'speedup':>9}"
             f"{'postings':>10}{'query (ms)':>12}"]
    for (size, elements, build_ms, serial_ms, par_ms, auto_ms,
         auto_mode, postings, query_ms) in rows:
        speedup = serial_ms / par_ms if par_ms else float("inf")
        lines.append(f"{size:>9}{elements:>10}{build_ms:>12.1f}"
                     f"{serial_ms:>13.1f}{par_ms:>10.1f}"
                     f"{auto_ms:>11.1f}{auto_mode:>11}{speedup:>9.2f}"
                     f"{postings:>10}{query_ms:>12.2f}")
    return "\n".join(lines) + "\n"


def test_scalability_sweep(benchmark, bench_ontology, bench_terminology):
    rows = benchmark.pedantic(sweep,
                              args=(bench_ontology, bench_terminology),
                              rounds=1, iterations=1)
    record_result("scalability", render(rows))
    # Postings grow with the corpus.
    postings = [row[7] for row in rows]
    assert postings == sorted(postings)
    # Element counts grow with patients.
    elements = [row[1] for row in rows]
    assert elements == sorted(elements)
    # The measured cost model always resolves to a real pool flavor.
    assert all(row[6] in ("thread", "process", "serial")
               for row in rows)
    # On multi-core hosts the largest tier must benefit from the pool
    # (>= 4 cores: with fewer, pool startup eats the theoretical 2x).
    if (os.cpu_count() or 1) >= 4:
        serial_ms, par_ms = rows[-1][3], rows[-1][4]
        assert serial_ms / par_ms >= 1.5, (
            f"largest-tier parallel speedup {serial_ms / par_ms:.2f}x "
            f"below 1.5x")
