"""Scalability sweep (beyond the paper): corpus size vs cost.

The paper's future work calls out "scaling to larger ontologies and
datasets"; this benchmark sweeps the corpus size and reports index-
build time for a fixed keyword set plus average query latency, so the
growth trend (expected: roughly linear in corpus size for both) is
visible and regressions are catchable.
"""

import time

from repro import RELATIONSHIPS, XOntoRankEngine
from repro.cda import build_cda_corpus
from repro.emr import generate_cardiac_emr

from conftest import record_result

SIZES = (10, 20, 40)
KEYWORDS = ("asthma", "arrest", "amiodarone", "effusion", "fever")
QUERIES = ("asthma theophylline", '"cardiac arrest" amiodarone',
           "fever acetaminophen")


def sweep(ontology, terminology):
    rows = []
    for size in SIZES:
        database = generate_cardiac_emr(n_patients=size, seed=7,
                                        ontology=ontology)
        corpus, _ = build_cda_corpus(database, terminology)
        engine = XOntoRankEngine(corpus, ontology,
                                 strategy=RELATIONSHIPS)
        started = time.perf_counter()
        index = engine.builder.build(KEYWORDS)
        build_seconds = time.perf_counter() - started
        for query in QUERIES:  # warm DIL cache for the query phase
            engine.search(query, k=10)
        started = time.perf_counter()
        repetitions = 5
        for _ in range(repetitions):
            for query in QUERIES:
                engine.search(query, k=10)
        query_ms = ((time.perf_counter() - started)
                    / (repetitions * len(QUERIES)) * 1000.0)
        rows.append((size, corpus.total_nodes(), build_seconds * 1000.0,
                     index.total_postings(), query_ms))
    return rows


def render(rows):
    lines = ["SCALABILITY -- corpus size vs cost (Relationships)",
             f"{'patients':>9}{'elements':>10}{'build (ms)':>12}"
             f"{'postings':>10}{'query (ms)':>12}"]
    for size, elements, build_ms, postings, query_ms in rows:
        lines.append(f"{size:>9}{elements:>10}{build_ms:>12.1f}"
                     f"{postings:>10}{query_ms:>12.2f}")
    return "\n".join(lines) + "\n"


def test_scalability_sweep(benchmark, bench_ontology, bench_terminology):
    rows = benchmark.pedantic(sweep,
                              args=(bench_ontology, bench_terminology),
                              rounds=1, iterations=1)
    record_result("scalability", render(rows))
    # Postings grow with the corpus.
    postings = [row[3] for row in rows]
    assert postings == sorted(postings)
    # Element counts grow with patients.
    elements = [row[1] for row in rows]
    assert elements == sorted(elements)
