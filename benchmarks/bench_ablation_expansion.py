"""Ablation -- exact best-first expansion vs the paper's literal BFS.

Algorithm 1 + Observation 1 expand in level order and never re-expand a
node, which can under-approximate OntoScores when edge factors are
non-uniform (Taxonomy/Relationships). Our default is the exact max-heap
formulation (DESIGN.md); this benchmark measures both the cost delta and
how often the literal variant actually diverges on the experimental
ontology.
"""

from repro.core.ontoscore import (RelationshipsOntoScore,
                                  relationships_seed_scorer)
from repro.ir.tokenizer import Keyword

from conftest import record_result

KEYWORDS = ("asthma", "arrest", "effusion", "amiodarone", "bronchial",
            "fever", "valve", "coarctation", "pain", "cyanosis")


def compute_all(computer):
    return {text: computer.compute(Keyword.from_text(text))
            for text in KEYWORDS}


def compare(ontology):
    seeds = relationships_seed_scorer(ontology)
    exact = RelationshipsOntoScore(ontology, seeds, exact=True)
    literal = RelationshipsOntoScore(ontology, seeds, exact=False)
    exact_scores = compute_all(exact)
    literal_scores = compute_all(literal)
    divergent_entries = 0
    total_entries = 0
    missing_entries = 0
    for text in KEYWORDS:
        left = exact_scores[text]
        right = literal_scores[text]
        total_entries += len(left)
        missing_entries += len(set(left) - set(right))
        for concept, score in left.items():
            other = right.get(concept)
            if other is not None and abs(other - score) > 1e-12:
                divergent_entries += 1
    return total_entries, divergent_entries, missing_entries


def test_ablation_expansion_order(benchmark, bench_ontology):
    total, divergent, missing = benchmark.pedantic(
        compare, args=(bench_ontology,), rounds=1, iterations=1)
    text = ("ABLATION -- exact best-first vs literal level-order BFS\n"
            f"hash-map entries compared: {total}\n"
            f"entries with diverging scores: {divergent}\n"
            f"entries missing from the literal variant: {missing}\n")
    record_result("ablation_expansion", text)
    assert total > 0
    # The literal variant is an under-approximation: it may miss or
    # under-score entries but the exact variant dominates it, so the
    # missing direction is one-sided by construction (asserted in the
    # property suite); here we only require the comparison ran.
    assert divergent + missing >= 0
