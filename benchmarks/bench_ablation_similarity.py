"""Ablation -- OntoScore vs classic semantic-similarity measures.

The paper positions OntoScore against the similarity literature
(Section VIII): edge counting (Rada), normalized path length
(Leacock-Chodorow), subsumer depth (Wu-Palmer) and intrinsic-IC
measures (Resnik/Lin/Jiang-Conrath). This ablation measures how much
the rankings actually agree: for a set of anchor concepts, rank all
reachable concepts by Relationships-OntoScore (keyword = the anchor's
preferred term) and by each classic measure against the anchor, then
compare top-10 lists with the same Kendall K^(p) used in Table II.

Expected shape: the taxonomic measures agree with each other far more
than any of them agrees with OntoScore -- OntoScore's use of
non-taxonomic relationships (finding-site, associated-with) is exactly
what the classic measures cannot see.
"""

from repro.core.ontoscore import (RelationshipsOntoScore,
                                  relationships_seed_scorer)
from repro.evaluation.kendall import kendall_tau_topk
from repro.ir.tokenizer import Keyword
from repro.ontology import snomed
from repro.ontology.similarity import SimilarityMeasures

from conftest import record_result

ANCHORS = (snomed.ASTHMA, snomed.CARDIAC_ARREST,
           snomed.SUPRAVENTRICULAR_ARRHYTHMIA,
           snomed.PERICARDIAL_EFFUSION, snomed.COARCTATION_OF_AORTA)
TOP_K = 10
CLASSIC = ("rada", "wu_palmer", "lin")


def rankings_for_anchor(ontology, ontoscore, measures, anchor):
    keyword = Keyword.from_text(
        ontology.concept(anchor).preferred_term)
    scores = ontoscore.compute(keyword)
    candidates = sorted(code for code in scores
                        if code in ontology and code != anchor)
    rankings = {"ontoscore": sorted(
        candidates, key=lambda code: -scores[code])[:TOP_K]}
    for name in CLASSIC:
        measure = getattr(measures, name)
        rankings[name] = sorted(
            candidates, key=lambda code: -measure(anchor, code))[:TOP_K]
    return rankings


def agreement_table(ontology):
    seeds = relationships_seed_scorer(ontology)
    ontoscore = RelationshipsOntoScore(ontology, seeds)
    measures = SimilarityMeasures(ontology)
    names = ("ontoscore", *CLASSIC)
    totals = {(a, b): 0.0 for a in names for b in names}
    for anchor in ANCHORS:
        rankings = rankings_for_anchor(ontology, ontoscore, measures,
                                       anchor)
        for a in names:
            for b in names:
                totals[(a, b)] += kendall_tau_topk(rankings[a],
                                                   rankings[b], p=0.5)
    return {key: value / len(ANCHORS) for key, value in totals.items()}


def render(table):
    names = ("ontoscore", *CLASSIC)
    header = f"{'':>12}" + "".join(f"{name:>12}" for name in names)
    lines = ["ABLATION -- ranking distance: OntoScore vs classic "
             f"similarity (top-{TOP_K}, {len(ANCHORS)} anchors)", header]
    for a in names:
        lines.append(f"{a:>12}" + "".join(f"{table[(a, b)]:>12.3f}"
                                          for b in names))
    return "\n".join(lines) + "\n"


def test_ablation_similarity(benchmark, bench_ontology):
    table = benchmark.pedantic(agreement_table, args=(bench_ontology,),
                               rounds=1, iterations=1)
    record_result("ablation_similarity", render(table))

    classic_pairs = [(a, b) for a in CLASSIC for b in CLASSIC if a < b]
    classic_distance = sum(table[pair] for pair in classic_pairs) / \
        len(classic_pairs)
    onto_distance = sum(table[("ontoscore", name)]
                        for name in CLASSIC) / len(CLASSIC)
    # OntoScore diverges from the taxonomic consensus more than its
    # members diverge from each other.
    assert onto_distance > classic_distance
