"""Related-work comparison -- XOntoRank vs the rejected alternatives.

Section VIII argues three alternatives down; this benchmark measures
each argument on the experimental corpus:

* **SLCA / exact-match semantics** "will not return any results" when a
  keyword only matches through the ontology;
* **XSEarch interconnection** "would not work well in the particular
  case of CDA documents" (repeated component/section/entry tags);
* **query expansion** "leads to non-minimal results -- the same concept
  appears multiple times", measured as raw-to-merged redundancy.
"""

from repro import RELATIONSHIPS, XRANK, XOntoRankEngine
from repro.baselines import (ExpandedXRankSearch, QueryExpander,
                             SLCAEvaluator, XSEarchEvaluator)
from repro.evaluation import table2_queries

from conftest import record_result

#: Queries whose keywords require the ontology bridge on our corpus.
ONTOLOGY_QUERIES = ('"bronchial structure" theophylline',
                    '"heart structure" epinephrine')
TOP_K = 5


def run_comparison(corpus, ontology):
    xontorank = XOntoRankEngine(corpus, ontology,
                                strategy=RELATIONSHIPS)
    xrank_engine = XOntoRankEngine(corpus, None, strategy=XRANK)
    slca = SLCAEvaluator(corpus)
    xsearch = XSEarchEvaluator(corpus)
    expansion = ExpandedXRankSearch(
        xrank_engine, QueryExpander(ontology,
                                    max_expansions_per_keyword=4))

    rows = []
    redundancy_total = 0.0
    for workload_query in table2_queries():
        text = workload_query.text
        counts = {
            "xontorank": len(xontorank.search(text, k=TOP_K)),
            "slca": len(slca.search(text, k=TOP_K)),
            "xsearch": len(xsearch.search(text, k=TOP_K)),
            "expansion": len(expansion.search(text, k=TOP_K)),
        }
        redundancy_total += expansion.last_report.redundancy
        rows.append((text, counts))
    ontology_rows = []
    for text in ONTOLOGY_QUERIES:
        counts = {
            "xontorank": len(xontorank.search(text, k=TOP_K)),
            "slca": len(slca.search(text, k=TOP_K)),
            "xsearch": len(xsearch.search(text, k=TOP_K)),
            "expansion": len(expansion.search(text, k=TOP_K)),
        }
        ontology_rows.append((text, counts))
    mean_redundancy = redundancy_total / len(rows)
    return rows, ontology_rows, mean_redundancy


def render(rows, ontology_rows, redundancy):
    systems = ("xontorank", "slca", "xsearch", "expansion")
    header = f"{'query':<52}" + "".join(f"{name:>12}" for name in systems)
    lines = [f"RELATED WORK -- result counts at top-{TOP_K}", header,
             "-" * len(header)]
    for text, counts in rows + ontology_rows:
        lines.append(f"{text:<52}" + "".join(f"{counts[name]:>12}"
                                             for name in systems))
    lines.append(f"\nquery-expansion redundancy (raw results per merged "
                 f"result): {redundancy:.2f}")
    return "\n".join(lines) + "\n"


def test_related_work_comparison(benchmark, bench_corpus, bench_ontology):
    rows, ontology_rows, redundancy = benchmark.pedantic(
        run_comparison, args=(bench_corpus, bench_ontology), rounds=1,
        iterations=1)
    record_result("related_work", render(rows, ontology_rows, redundancy))

    # Claim 1: ontology-bridged queries defeat exact-match semantics.
    for text, counts in ontology_rows:
        assert counts["xontorank"] > 0, text
        assert counts["slca"] == 0, text
    # Claim 2: interconnection semantics returns no more than SLCA on
    # CDA (repeated tags prune connections), and misses ontology-only
    # matches entirely.
    for text, counts in ontology_rows:
        assert counts["xsearch"] == 0, text
    # Claim 3: expansion executes many variants and produces redundant
    # raw hits (non-minimality).
    assert redundancy > 1.0
