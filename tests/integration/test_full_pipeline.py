"""Integration tests: the full pipeline of Figure 8, end to end.

EMR database → CDA corpus with ontological references → index creation
(all four strategies) → DIL query phase → Database Access Module →
relevance judgment.
"""

import pytest

from repro import GRAPH, RELATIONSHIPS, TAXONOMY, XRANK
from repro.evaluation import (RelevanceOracle, distance_matrix, run_survey,
                              table1_queries)
from repro.storage.sqlite_store import SQLiteStore


class TestCorpusConstruction:
    def test_corpus_matches_database(self, cda_corpus, emr_database):
        assert len(cda_corpus) == emr_database.stats()["patients"]

    def test_every_document_is_annotated(self, cda_corpus):
        for document in cda_corpus:
            assert document.code_nodes()


class TestCrossStrategyInvariants:
    QUERIES = ("asthma theophylline", '"cardiac arrest" amiodarone',
               "fever acetaminophen", '"pericardial effusion" furosemide')

    def test_ontology_strategies_subsume_xrank_results(self, engines):
        """Every subtree XRANK finds is also covered under an
        ontology-aware strategy (NodeScores only grow; Eq. 1 may then
        pick a more specific descendant, so coverage -- not identity --
        is the invariant)."""
        for query in self.QUERIES:
            xrank_results = engines[XRANK].search(query, k=50)
            for strategy in (GRAPH, TAXONOMY, RELATIONSHIPS):
                other = engines[strategy].search(query, k=10_000)
                for base_result in xrank_results:
                    assert any(base_result.dewey.contains(result.dewey)
                               or result.dewey.contains(base_result.dewey)
                               for result in other), (query, strategy)

    def test_dil_equals_naive_everywhere(self, engines):
        for name, engine in engines.items():
            for query in self.QUERIES:
                dil = engine.search(query, k=20)
                naive = engine.search_naive(query, k=20)
                assert [(r.dewey, pytest.approx(r.score)) for r in dil] \
                    == [(r.dewey, r.score) for r in naive], (name, query)

    def test_results_have_extractable_fragments(self, engines):
        for engine in engines.values():
            for result in engine.search("asthma theophylline", k=5):
                fragment = engine.fragment(result)
                assert fragment.tag
                assert engine.fragment_text(result)


class TestSurveyIntegration:
    def test_acetaminophen_trap_row_is_zero(self, engines,
                                            synthetic_ontology,
                                            terminology):
        """The paper's flagship negative result (Table I, last row)."""
        oracle = RelevanceOracle(synthetic_ontology, terminology)
        row = run_survey(engines, oracle,
                         '"supraventricular arrhythmia" acetaminophen')
        assert all(count == 0 for count in row.counts.values())

    def test_workload_runs_clean(self, engines, synthetic_ontology,
                                 terminology):
        oracle = RelevanceOracle(synthetic_ontology, terminology)
        for workload_query in table1_queries():
            row = run_survey(engines, oracle, workload_query.text,
                             workload_query.query_id)
            assert set(row.counts) == {XRANK, GRAPH, TAXONOMY,
                                       RELATIONSHIPS}


class TestKendallIntegration:
    def test_taxonomy_closest_to_relationships(self, engines):
        """Table II's qualitative claim on the shared test corpus."""
        queries = ("asthma theophylline", '"cardiac arrest" amiodarone',
                   '"atrial fibrillation" digoxin',
                   "bronchitis albuterol", "fever acetaminophen")
        totals = {}
        for query in queries:
            lists = {name: [r.dewey.encode()
                            for r in engine.search(query, k=10)]
                     for name, engine in engines.items()}
            for key, value in distance_matrix(lists, p=0.5).items():
                totals[key] = totals.get(key, 0.0) + value
        assert totals[(TAXONOMY, RELATIONSHIPS)] <= \
            totals[(GRAPH, XRANK)]


class TestPersistenceIntegration:
    def test_full_corpus_roundtrip_through_sqlite(self, cda_corpus,
                                                  synthetic_ontology,
                                                  tmp_path):
        from repro import XOntoRankEngine
        path = str(tmp_path / "hospital.db")
        engine = XOntoRankEngine(cda_corpus, synthetic_ontology,
                                 strategy=RELATIONSHIPS)
        vocabulary = {"asthma", "theophylline", "amiodarone", "fever"}
        with SQLiteStore(path) as store:
            engine.build_index(vocabulary=vocabulary, store=store)
            stored_docs = list(store.document_ids())
        assert len(stored_docs) == len(cda_corpus)

        fresh = XOntoRankEngine(cda_corpus, synthetic_ontology,
                                strategy=RELATIONSHIPS)
        with SQLiteStore(path) as store:
            assert fresh.load_index(store) == len(vocabulary)
        left = engine.search("asthma theophylline", k=5)
        right = fresh.search("asthma theophylline", k=5)
        assert [(r.dewey, r.score) for r in left] == \
            [(r.dewey, r.score) for r in right]
