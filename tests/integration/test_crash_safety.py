"""Crash-safety integration: a SIGKILLed ``python -m repro index``
must never publish a store that loaders accept.

The atomic-build protocol gives a binary outcome: either the build
reached the final rename (store exists, manifest verifies end to end)
or it did not (no file at the published path; at most a ``.building``
temp file, which the next build discards). There is no third state.

The incremental protocol extends the same guarantee in place: a
segment append (or compaction) commits through one catalog write, so a
SIGKILL at any instant leaves the surviving store either entirely
without the in-flight segment (old catalog in force; any orphan rows
are invisible to readers and reported as verify-index *notes*, never
problems) or with it complete. Torn segments cannot be observed.
"""

import os
import shutil
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.storage import SQLiteStore, load_catalog, verify_manifest

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("crashdata"))
    assert main(["generate", "--out", directory, "--patients", "2",
                 "--seed", "11"]) == 0
    return directory


def spawn_index_build(data_dir: str, store: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR] + [p for p in env.get("PYTHONPATH", "").split(
            os.pathsep) if p])
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "index", "--data", data_dir,
         "--store", store],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


class TestSigkilledBuild:
    @pytest.mark.parametrize("kill_after", [0.1, 0.5, 1.5])
    def test_killed_build_never_publishes_bad_store(self, data_dir,
                                                    tmp_path,
                                                    kill_after):
        store = str(tmp_path / f"killed-{kill_after}.db")
        process = spawn_index_build(data_dir, store)
        time.sleep(kill_after)
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
        if os.path.exists(store):
            # The build won the race: the published store must be
            # complete and verify end to end.
            assert main(["verify-index", "--store", store]) == 0
        else:
            # The kill won: nothing was published, and search refuses
            # the path outright.
            code = main(["search", "--data", data_dir, "--store",
                         store, "asthma", "--strict"])
            assert code == 2

    def test_completed_build_verifies(self, data_dir, tmp_path):
        store = str(tmp_path / "complete.db")
        assert main(["index", "--data", data_dir, "--store",
                     store]) == 0
        assert os.path.exists(store)
        assert not os.path.exists(store + ".building")
        assert main(["verify-index", "--store", store]) == 0


# ----------------------------------------------------------------------
# Incremental appends and compaction under SIGKILL
# ----------------------------------------------------------------------
BASE_PATIENTS = ("patient-0000.xml", "patient-0001.xml")


@pytest.fixture(scope="module")
def grow_dirs(tmp_path_factory):
    """A 4-patient data directory plus a 2-patient prefix of it.

    The generator is prefix-stable for a fixed seed, so the base
    directory's documents are byte-identical to the full directory's
    first two -- exactly the situation ``index --append`` requires
    (the indexed documents re-read unchanged, plus new ones)."""
    full = str(tmp_path_factory.mktemp("growfull"))
    assert main(["generate", "--out", full, "--patients", "4",
                 "--seed", "11"]) == 0
    base = str(tmp_path_factory.mktemp("growbase"))
    shutil.copytree(full, base, dirs_exist_ok=True)
    for name in os.listdir(os.path.join(base, "corpus")):
        if name not in BASE_PATIENTS:
            os.unlink(os.path.join(base, "corpus", name))
    return base, full


def spawn_cli(arguments) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR] + [p for p in env.get("PYTHONPATH", "").split(
            os.pathsep) if p])
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *arguments],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def kill_after(process: subprocess.Popen, delay: float) -> None:
    time.sleep(delay)
    process.send_signal(signal.SIGKILL)
    process.wait(timeout=30)


def surviving_catalog(store_path: str):
    """Assert the surviving store is readable and internally
    consistent; return its catalog (None = plain, pre-append)."""
    assert main(["verify-index", "--store", store_path]) == 0
    with SQLiteStore(store_path, read_only=True) as store:
        report = verify_manifest(store)
        assert report.ok, report.describe()
        return load_catalog(store)


class TestSigkilledAppend:
    @pytest.fixture(scope="class")
    def built_store(self, grow_dirs, tmp_path_factory):
        base, _ = grow_dirs
        store = str(tmp_path_factory.mktemp("appendstores") / "base.db")
        assert main(["index", "--data", base, "--store", store]) == 0
        return store

    @pytest.mark.parametrize("delay", [0.1, 0.6, 2.0])
    def test_killed_append_is_all_or_nothing(self, grow_dirs,
                                             built_store, tmp_path,
                                             delay):
        _, full = grow_dirs
        store = str(tmp_path / f"append-{delay}.db")
        shutil.copyfile(built_store, store)
        process = spawn_cli(["index", "--data", full, "--store",
                             store, "--append"])
        kill_after(process, delay)
        catalog = surviving_catalog(store)
        if catalog is None:
            # Killed before the lifecycle's first commit: the store is
            # exactly the published base build.
            return
        live = catalog.live_set
        assert live in ({0, 1}, {0, 1, 2, 3})
        if live == {0, 1}:
            # Old catalog in force; the in-flight segment is invisible.
            assert len(catalog.segments) == 1
        else:
            # The append won the race: one complete new segment.
            assert len(catalog.segments) == 2
            assert set(catalog.segments[-1].doc_ids) == {2, 3}

    def test_completed_append_verifies_and_searches(self, grow_dirs,
                                                    built_store,
                                                    tmp_path):
        _, full = grow_dirs
        store = str(tmp_path / "append-complete.db")
        shutil.copyfile(built_store, store)
        assert main(["index", "--data", full, "--store", store,
                     "--append"]) == 0
        catalog = surviving_catalog(store)
        assert catalog is not None
        assert catalog.live_set == {0, 1, 2, 3}
        assert main(["search", "--data", full, "--store", store,
                     "cardiac", "--strict"]) == 0


class TestSigkilledCompaction:
    @pytest.fixture(scope="class")
    def segmented_store(self, grow_dirs, tmp_path_factory):
        """A store holding the base segment plus one appended one."""
        base, full = grow_dirs
        store = str(tmp_path_factory.mktemp("compactstores")
                    / "segmented.db")
        assert main(["index", "--data", base, "--store", store]) == 0
        assert main(["index", "--data", full, "--store", store,
                     "--append"]) == 0
        return store

    @pytest.mark.parametrize("delay", [0.1, 0.6, 2.0])
    def test_killed_compaction_never_tears(self, segmented_store,
                                           tmp_path, delay):
        store = str(tmp_path / f"compact-{delay}.db")
        shutil.copyfile(segmented_store, store)
        process = spawn_cli(["compact", "--store", store])
        kill_after(process, delay)
        catalog = surviving_catalog(store)
        assert catalog is not None
        # Compaction never changes the live set -- only the segment
        # organization. Either the old two-segment catalog survives or
        # the single merged segment committed; a kill during post-commit
        # garbage collection leaves only invisible orphans (notes).
        assert catalog.live_set == {0, 1, 2, 3}
        assert len(catalog.segments) in (1, 2)

    def test_completed_compaction_verifies(self, grow_dirs,
                                           segmented_store, tmp_path):
        _, full = grow_dirs
        store = str(tmp_path / "compact-complete.db")
        shutil.copyfile(segmented_store, store)
        assert main(["compact", "--store", store]) == 0
        catalog = surviving_catalog(store)
        assert len(catalog.segments) == 1
        assert catalog.live_set == {0, 1, 2, 3}
        assert catalog.tombstone_count == 0
        assert main(["search", "--data", full, "--store", store,
                     "cardiac", "--strict"]) == 0
