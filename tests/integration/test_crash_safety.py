"""Crash-safety integration: a SIGKILLed ``python -m repro index``
must never publish a store that loaders accept.

The atomic-build protocol gives a binary outcome: either the build
reached the final rename (store exists, manifest verifies end to end)
or it did not (no file at the published path; at most a ``.building``
temp file, which the next build discards). There is no third state.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("crashdata"))
    assert main(["generate", "--out", directory, "--patients", "2",
                 "--seed", "11"]) == 0
    return directory


def spawn_index_build(data_dir: str, store: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR] + [p for p in env.get("PYTHONPATH", "").split(
            os.pathsep) if p])
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "index", "--data", data_dir,
         "--store", store],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


class TestSigkilledBuild:
    @pytest.mark.parametrize("kill_after", [0.1, 0.5, 1.5])
    def test_killed_build_never_publishes_bad_store(self, data_dir,
                                                    tmp_path,
                                                    kill_after):
        store = str(tmp_path / f"killed-{kill_after}.db")
        process = spawn_index_build(data_dir, store)
        time.sleep(kill_after)
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
        if os.path.exists(store):
            # The build won the race: the published store must be
            # complete and verify end to end.
            assert main(["verify-index", "--store", store]) == 0
        else:
            # The kill won: nothing was published, and search refuses
            # the path outright.
            code = main(["search", "--data", data_dir, "--store",
                         store, "asthma", "--strict"])
            assert code == 2

    def test_completed_build_verifies(self, data_dir, tmp_path):
        store = str(tmp_path / "complete.db")
        assert main(["index", "--data", data_dir, "--store",
                     store]) == 0
        assert os.path.exists(store)
        assert not os.path.exists(store + ".building")
        assert main(["verify-index", "--store", store]) == 0
