"""Unit tests for tokenization and keyword-query parsing."""

import pytest

from repro.ir.tokenizer import (DEFAULT_STOPWORDS, Keyword, KeywordQuery,
                                contains_phrase, tokenize,
                                tokenize_without_stopwords)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Cardiac Arrest, 2mg!") == ["cardiac", "arrest",
                                                    "2mg"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("...!!!") == []

    def test_apostrophes_kept_inside_words(self):
        assert tokenize("patient's") == ["patient's"]

    def test_underscore_names_are_single_tokens(self):
        """DL-view syntactic names must not match ordinary keywords."""
        tokens = tokenize("Exists_finding_site_of_Bronchial_structure")
        assert tokens == ["exists_finding_site_of_bronchial_structure"]

    def test_stopword_removal(self):
        tokens = tokenize_without_stopwords("the disorder of the bronchus")
        assert tokens == ["disorder", "bronchus"]
        assert "the" in DEFAULT_STOPWORDS


class TestKeyword:
    def test_from_single_word(self):
        keyword = Keyword.from_text("Asthma")
        assert keyword.tokens == ("asthma",)
        assert not keyword.is_phrase

    def test_from_multiword_is_phrase(self):
        keyword = Keyword.from_text("cardiac arrest")
        assert keyword.tokens == ("cardiac", "arrest")
        assert keyword.is_phrase

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Keyword.from_text("!!!")
        with pytest.raises(ValueError):
            Keyword(())

    def test_text_and_str(self):
        keyword = Keyword.from_text("cardiac arrest")
        assert keyword.text == "cardiac arrest"
        assert str(keyword) == '"cardiac arrest"'
        assert str(Keyword.from_text("asthma")) == "asthma"

    def test_hashable(self):
        assert len({Keyword.from_text("a"), Keyword.from_text("a")}) == 1


class TestKeywordQuery:
    def test_parse_mixed(self):
        query = KeywordQuery.parse('"cardiac arrest" amiodarone')
        assert len(query) == 2
        first, second = query
        assert first.is_phrase and first.tokens == ("cardiac", "arrest")
        assert not second.is_phrase and second.tokens == ("amiodarone",)

    def test_parse_unquoted_words_are_separate(self):
        query = KeywordQuery.parse("asthma medications")
        assert len(query) == 2

    def test_parse_empty_rejected(self):
        with pytest.raises(ValueError):
            KeywordQuery.parse("   ")

    def test_parse_skips_empty_quotes(self):
        query = KeywordQuery.parse('"" asthma')
        assert len(query) == 1

    def test_of_constructor(self):
        query = KeywordQuery.of("cardiac arrest", "amiodarone")
        assert [k.is_phrase for k in query] == [True, False]

    def test_str_roundtrip(self):
        text = '"cardiac arrest" amiodarone'
        assert str(KeywordQuery.parse(text)) == text


class TestContainsPhrase:
    def test_positive(self):
        tokens = ["acute", "cardiac", "arrest", "noted"]
        assert contains_phrase(tokens, ("cardiac", "arrest"))

    def test_order_matters(self):
        assert not contains_phrase(["arrest", "cardiac"],
                                   ("cardiac", "arrest"))

    def test_adjacency_matters(self):
        assert not contains_phrase(["cardiac", "then", "arrest"],
                                   ("cardiac", "arrest"))

    def test_degenerate(self):
        assert not contains_phrase([], ("a",))
        assert not contains_phrase(["a"], ())
        assert contains_phrase(["a"], ("a",))
