"""Unit tests for the positional index, BM25 and TF-IDF."""

import pytest

from repro.ir.bm25 import BM25Scorer
from repro.ir.inverted_index import PositionalIndex
from repro.ir.tfidf import TfIdfScorer
from repro.ir.tokenizer import Keyword


@pytest.fixture
def index():
    idx = PositionalIndex()
    idx.add("d1", "cardiac arrest after cardiac surgery")
    idx.add("d2", "asthma with wheeze")
    idx.add("d3", "cardiac catheterization procedure done arrest")
    return idx


class TestPositionalIndex:
    def test_statistics(self, index):
        assert index.document_count == 3
        assert index.length("d1") == 5
        assert index.length("unknown") == 0
        assert index.average_length == pytest.approx((5 + 3 + 5) / 3)

    def test_duplicate_unit_rejected(self, index):
        with pytest.raises(ValueError):
            index.add("d1", "again")

    def test_token_postings(self, index):
        postings = index.token_postings("cardiac")
        assert postings == {"d1": [0, 3], "d3": [0]}

    def test_document_frequency(self, index):
        assert index.document_frequency("cardiac") == 2
        assert index.document_frequency("nope") == 0

    def test_term_frequency(self, index):
        assert index.term_frequency("d1", "cardiac") == 2
        assert index.term_frequency("d2", "cardiac") == 0

    def test_keyword_frequencies_single(self, index):
        keyword = Keyword.from_text("cardiac")
        assert index.keyword_frequencies(keyword) == {"d1": 2, "d3": 1}

    def test_phrase_requires_adjacency(self, index):
        phrase = Keyword.from_text("cardiac arrest")
        assert index.keyword_frequencies(phrase) == {"d1": 1}
        assert index.keyword_document_frequency(phrase) == 1

    def test_phrase_multiple_occurrences(self):
        idx = PositionalIndex()
        idx.add("d", "cardiac arrest then cardiac arrest again")
        phrase = Keyword.from_text("cardiac arrest")
        assert idx.keyword_frequencies(phrase) == {"d": 2}

    def test_phrase_cache_invalidated_on_add(self, index):
        phrase = Keyword.from_text("cardiac arrest")
        assert index.keyword_frequencies(phrase) == {"d1": 1}
        index.add("d4", "another cardiac arrest")
        assert index.keyword_frequencies(phrase) == {"d1": 1, "d4": 1}

    def test_vocabulary_and_units(self, index):
        assert "asthma" in index.vocabulary()
        assert set(index.units()) == {"d1", "d2", "d3"}
        assert "d1" in index


class TestBM25:
    def test_zero_for_missing_term(self, index):
        scorer = BM25Scorer(index)
        assert scorer.score("d1", Keyword.from_text("zebra")) == 0.0
        assert scorer.scores(Keyword.from_text("zebra")) == {}

    def test_idf_nonnegative_even_for_common_terms(self):
        idx = PositionalIndex()
        for unit in range(5):
            idx.add(unit, "common word")
        scorer = BM25Scorer(idx)
        assert scorer.idf(Keyword.from_text("common")) > 0.0

    def test_tf_saturation(self, index):
        scorer = BM25Scorer(index)
        single = scorer.score("d3", Keyword.from_text("cardiac"))
        double = scorer.score("d1", Keyword.from_text("cardiac"))
        assert double > single
        assert double < 2 * single  # saturating, not linear

    def test_rarer_term_scores_higher(self, index):
        scorer = BM25Scorer(index)
        rare = scorer.score("d2", Keyword.from_text("asthma"))
        common = scorer.score("d3", Keyword.from_text("cardiac"))
        assert rare > common

    def test_normalized_max_is_one(self, index):
        scorer = BM25Scorer(index)
        scores = scorer.normalized_scores(Keyword.from_text("cardiac"))
        assert max(scores.values()) == pytest.approx(1.0)
        assert all(0.0 < value <= 1.0 for value in scores.values())

    def test_parameter_validation(self, index):
        with pytest.raises(ValueError):
            BM25Scorer(index, k1=-1)
        with pytest.raises(ValueError):
            BM25Scorer(index, b=1.5)

    def test_empty_index(self):
        scorer = BM25Scorer(PositionalIndex())
        assert scorer.scores(Keyword.from_text("x")) == {}


class TestTfIdf:
    def test_same_interface_as_bm25(self, index):
        scorer = TfIdfScorer(index)
        scores = scorer.normalized_scores(Keyword.from_text("cardiac"))
        assert max(scores.values()) == pytest.approx(1.0)
        assert scorer.score("d2", Keyword.from_text("cardiac")) == 0.0

    def test_idf_monotone_in_rarity(self, index):
        scorer = TfIdfScorer(index)
        assert scorer.idf(Keyword.from_text("asthma")) > \
            scorer.idf(Keyword.from_text("cardiac"))

    def test_phrase_scoring(self, index):
        scorer = TfIdfScorer(index)
        scores = scorer.scores(Keyword.from_text("cardiac arrest"))
        assert set(scores) == {"d1"}
