"""Property test: the SLCA evaluator against a brute-force oracle.

The brute-force oracle enumerates every node, checks directly whether
its subtree contains all keywords, and keeps the most specific such
nodes -- the literal definition of smallest LCAs. The optimized
evaluator (anchor chains over Dewey IDs) must agree exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.slca import SLCAEvaluator
from repro.ir.tokenizer import KeywordQuery, tokenize
from repro.xmldoc.dewey import assign_dewey_ids
from repro.xmldoc.model import Corpus

from .strategies import words, xml_documents


def brute_force_slca(corpus, query):
    answers = []
    for document in corpus:
        ids = assign_dewey_ids(document)
        covering = []
        for node in document.iter():
            subtree_tokens = set(tokenize(node.subtree_text()))
            if all(set(keyword.tokens) <= subtree_tokens
                   and _phrase_ok(keyword, node)
                   for keyword in query):
                covering.append(ids[node])
        ordered = sorted(covering)
        for index, candidate in enumerate(ordered):
            has_descendant = any(candidate.is_ancestor_of(other)
                                 for other in ordered[index + 1:])
            if not has_descendant:
                answers.append(candidate)
    return set(answers)


def _phrase_ok(keyword, node):
    if not keyword.is_phrase:
        return True
    from repro.ir.tokenizer import contains_phrase
    return any(contains_phrase(
        tokenize(descendant.textual_description()), keyword.tokens)
        for descendant in node.iter())


@settings(max_examples=40, deadline=None)
@given(st.lists(xml_documents(), min_size=1, max_size=2),
       st.lists(words, min_size=1, max_size=2, unique=True))
def test_slca_matches_brute_force(documents, terms):
    for doc_id, document in enumerate(documents):
        document.doc_id = doc_id
    corpus = Corpus(documents)
    query = KeywordQuery.of(*terms)
    fast = {result.dewey for result in SLCAEvaluator(corpus).search(query)}
    slow = brute_force_slca(corpus, query)
    assert fast == slow
