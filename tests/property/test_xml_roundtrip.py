"""Property test: parse(serialize(tree)) preserves the tree."""

from hypothesis import given, settings

from repro.xmldoc.parser import XMLParser
from repro.xmldoc.serializer import serialize

from .strategies import xml_documents


def shape(node):
    return (node.tag, tuple(node.attributes.items()), node.text,
            tuple(shape(child) for child in node.children))


@settings(max_examples=60, deadline=None)
@given(xml_documents(concept_codes=("195967001", "32398004")))
def test_serialize_parse_roundtrip(document):
    text = serialize(document)
    reparsed = XMLParser().parse(text)
    assert shape(reparsed.root) == shape(document.root)
    # Code-node recognition also roundtrips (the CDA extractor fires on
    # the code/codeSystem attribute pair the strategy emits).
    original_refs = [node.reference for node in document.iter()
                     if node.reference is not None]
    reparsed_refs = [node.reference for node in reparsed.iter()
                     if node.reference is not None]
    assert reparsed_refs == original_refs


@settings(max_examples=60, deadline=None)
@given(xml_documents())
def test_double_roundtrip_is_stable(document):
    once = serialize(document)
    twice = serialize(XMLParser().parse(once))
    assert once == twice
