"""Property tests: ontology invariants, DL-view equivalence, flat-file
round-trips, over randomly generated ontologies."""

import pytest
from hypothesis import given, settings

from repro.core.ontoscore.relationships import (
    MaterializedRelationshipsOntoScore, RelationshipsOntoScore,
    relationships_seed_scorer)
from repro.ir.tokenizer import Keyword
from repro.ontology.description_logic import DLView
from repro.ontology.io import load_ontology, save_ontology

from .strategies import small_ontologies


@settings(max_examples=50, deadline=None)
@given(small_ontologies())
def test_generated_ontologies_validate(ontology):
    ontology.validate()


@settings(max_examples=50, deadline=None)
@given(small_ontologies())
def test_ancestors_descendants_are_inverse(ontology):
    for code in ontology.concept_codes():
        for ancestor in ontology.ancestors(code):
            assert code in ontology.descendants(ancestor)


@settings(max_examples=50, deadline=None)
@given(small_ontologies())
def test_neighbors_symmetric(ontology):
    for code in ontology.concept_codes():
        for neighbor in ontology.neighbors(code):
            assert code in ontology.neighbors(neighbor)


@settings(max_examples=50, deadline=None)
@given(small_ontologies())
def test_dl_view_edge_accounting(ontology):
    view = DLView(ontology)
    stats = view.stats()
    base = ontology.stats()
    assert stats["concept_nodes"] == base["concepts"]
    # One solid edge per is-a edge plus one per attribute triple.
    assert stats["is_a_edges"] == base["relationships"]
    assert stats["dotted_links"] == stats["existential_nodes"]


@settings(max_examples=25, deadline=None)
@given(small_ontologies())
def test_implicit_equals_materialized_on_random_ontologies(ontology):
    """Section VI-C's equality claim, checked structurally."""
    seeds = relationships_seed_scorer(ontology)
    implicit = RelationshipsOntoScore(ontology, seeds, t=0.5,
                                      threshold=0.05)
    materialized = MaterializedRelationshipsOntoScore(
        DLView(ontology), seeds, t=0.5, threshold=0.05)
    for text in ("asthma", "valve", "pain", "site"):
        keyword = Keyword.from_text(text)
        left = implicit.compute(keyword)
        right = materialized.compute(keyword)
        assert left.keys() == right.keys()
        for concept in left:
            assert left[concept] == pytest.approx(right[concept])


@settings(max_examples=25, deadline=None)
@given(small_ontologies())
def test_flat_file_roundtrip(tmp_path_factory, ontology):
    directory = tmp_path_factory.mktemp("onto")
    save_ontology(ontology, str(directory))
    loaded = load_ontology(str(directory))
    assert loaded.stats() == ontology.stats()
    assert sorted(loaded.concept_codes()) == \
        sorted(ontology.concept_codes())
    for code in ontology.concept_codes():
        assert loaded.concept(code) == ontology.concept(code)
        assert sorted(loaded.parents(code)) == \
            sorted(ontology.parents(code))
