"""Property tests: Dewey ID algebra."""

from hypothesis import given

from repro.xmldoc.dewey import DeweyID

from .strategies import dewey_ids


@given(dewey_ids)
def test_encode_parse_roundtrip(dewey):
    assert DeweyID.parse(dewey.encode()) == dewey


@given(dewey_ids, dewey_ids)
def test_ordering_matches_key_tuples(left, right):
    assert (left < right) == \
        ((left.doc_id, left.path) < (right.doc_id, right.path))


@given(dewey_ids, dewey_ids)
def test_ancestor_implies_order_and_strict_prefix(left, right):
    if left.is_ancestor_of(right):
        assert left < right
        assert left.depth < right.depth
        assert not right.is_ancestor_of(left)


@given(dewey_ids)
def test_children_are_descendants(dewey):
    child = dewey.child(3)
    assert dewey.is_ancestor_of(child)
    assert child.parent() == dewey
    assert dewey.distance_to_descendant(child) == 1


@given(dewey_ids, dewey_ids)
def test_common_ancestor_contains_both(left, right):
    ancestor = left.common_ancestor(right)
    if ancestor is None:
        assert left.doc_id != right.doc_id
    else:
        assert ancestor.contains(left)
        assert ancestor.contains(right)
        # Lowest: no deeper common container exists.
        if ancestor != left and ancestor != right:
            deeper_left = DeweyID(left.doc_id,
                                  left.path[:ancestor.depth + 1])
            assert not (deeper_left.contains(left)
                        and deeper_left.contains(right))


@given(dewey_ids, dewey_ids, dewey_ids)
def test_contains_is_transitive(first, second, third):
    if first.contains(second) and second.contains(third):
        assert first.contains(third)


@given(dewey_ids)
def test_hash_equal_objects(dewey):
    clone = DeweyID(dewey.doc_id, dewey.path)
    assert hash(clone) == hash(dewey)
    assert clone == dewey
