"""Differential tests: parallel index build ≡ serial index build.

The determinism contract of
:class:`~repro.core.index.parallel.ParallelIndexBuilder` is that a
parallel build is *indistinguishable* from ``IndexBuilder.build``:

* same DIL entries (keys, postings, scores, byte-for-byte encoded);
* same persisted store contents (compared through the backend-agnostic
  :func:`~repro.storage.interface.canonical_dump`);
* same top-k search results afterwards.

Checked here over hypothesis-generated corpora and ontologies for all
four strategies (thread pools, which exercise the chunking/merge logic
every run), and over the paper's Figure 1 document with a real
fork-based process pool (the production configuration). Seeded via
hypothesis' deterministic derandomization in CI; failures shrink to
minimal corpora.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, seed, settings, strategies as st

from repro.core.config import ALL_STRATEGIES, XRANK
from repro.core.index.parallel import ParallelIndexBuilder
from repro.core.query.engine import XOntoRankEngine
from repro.storage.interface import canonical_dump
from repro.storage.memory_store import MemoryStore
from repro.xmldoc.model import Corpus

from .strategies import small_ontologies, xml_documents

WORKERS = 4


@st.composite
def corpora_with_ontology(draw):
    ontology = draw(small_ontologies())
    codes = tuple(ontology.concept_codes())
    count = draw(st.integers(min_value=1, max_value=2))
    corpus = Corpus([draw(xml_documents(doc_id=doc_id,
                                        concept_codes=codes))
                     for doc_id in range(count)])
    return corpus, ontology


def _engine(corpus, ontology, strategy):
    return XOntoRankEngine(
        corpus, ontology if strategy != XRANK else None,
        strategy=strategy)


def _assert_same_index(serial, parallel):
    assert serial.strategy == parallel.strategy
    assert serial.keywords() == parallel.keywords()
    for key in serial.keywords():
        assert serial.lists[key].encoded() == \
            parallel.lists[key].encoded(), key
    # Build stats cover the same keywords with the same measurements
    # (timings excepted -- they are the one sanctioned difference).
    assert set(serial.stats) == set(parallel.stats)
    for key, stat in serial.stats.items():
        other = parallel.stats[key]
        assert stat.posting_count == other.posting_count
        assert stat.size_bytes == other.size_bytes
        assert stat.ontology_entries == other.ontology_entries


def _assert_same_search(serial_engine, parallel_engine, vocabulary):
    for word in sorted(vocabulary)[:5]:
        serial_results = serial_engine.search(word, k=10)
        parallel_results = parallel_engine.search(word, k=10)
        assert [(r.dewey, r.score) for r in serial_results] == \
            [(r.dewey, r.score) for r in parallel_results]


class TestRandomizedCorpora:
    @seed(20090331)
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(corpora_with_ontology())
    def test_all_strategies_build_identically(self, drawn):
        corpus, ontology = drawn
        for strategy in ALL_STRATEGIES:
            serial_engine = _engine(corpus, ontology, strategy)
            parallel_engine = _engine(corpus, ontology, strategy)
            serial_store, parallel_store = MemoryStore(), MemoryStore()
            serial = serial_engine.build_index(store=serial_store)
            parallel = parallel_engine.build_index(
                store=parallel_store, workers=WORKERS,
                parallel_mode="thread")
            _assert_same_index(serial, parallel)
            assert canonical_dump(serial_store, [strategy]) == \
                canonical_dump(parallel_store, [strategy])
            _assert_same_search(serial_engine, parallel_engine,
                                serial.keywords())

    @seed(20090331)
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(corpora_with_ontology(),
           st.integers(min_value=1, max_value=3))
    def test_chunking_is_invisible(self, drawn, chunk_size):
        """Any chunk size yields the identical index -- the merge is
        order-insensitive because flushing is forced into chunk order."""
        corpus, ontology = drawn
        engine = _engine(corpus, ontology, "relationships")
        from repro.core.index.vocabulary import corpus_vocabulary
        vocabulary = sorted(corpus_vocabulary(corpus))[:9]
        if not vocabulary:
            return
        reference = engine.builder.build(vocabulary,
                                         strategy_name="relationships")
        chunked = ParallelIndexBuilder(
            engine.builder, workers=WORKERS, mode="thread",
            chunk_size=chunk_size).build(
                vocabulary, strategy_name="relationships")
        _assert_same_index(reference, chunked)


class TestProcessPool:
    """The production configuration: a fork-based process pool."""

    @pytest.fixture(scope="class")
    def figure1(self):
        from repro.cda.sample import build_figure1_document
        from repro.ontology.snomed import build_core_ontology
        return Corpus([build_figure1_document()]), build_core_ontology()

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_process_pool_build_identical(self, figure1, strategy):
        corpus, ontology = figure1
        serial_engine = _engine(corpus, ontology, strategy)
        parallel_engine = _engine(corpus, ontology, strategy)
        serial_store, parallel_store = MemoryStore(), MemoryStore()
        serial = serial_engine.build_index(store=serial_store)
        parallel = parallel_engine.build_index(
            store=parallel_store, workers=2, parallel_mode="process")
        _assert_same_index(serial, parallel)
        assert canonical_dump(serial_store, [strategy]) == \
            canonical_dump(parallel_store, [strategy])
        _assert_same_search(serial_engine, parallel_engine,
                            serial.keywords())

    def test_provenance_metadata_differs_only_in_build_keys(self,
                                                            figure1):
        corpus, ontology = figure1
        serial_store, parallel_store = MemoryStore(), MemoryStore()
        _engine(corpus, ontology, "graph").build_index(
            store=serial_store)
        _engine(corpus, ontology, "graph").build_index(
            store=parallel_store, workers=2, parallel_mode="process")
        assert serial_store.get_metadata("build_workers") == "1"
        assert parallel_store.get_metadata("build_workers") == "2"
        assert parallel_store.get_metadata("build_mode") == "process"
        assert int(parallel_store.get_metadata("build_chunks")) >= 2
        # Provenance aside, the persisted contents are byte-identical.
        assert canonical_dump(serial_store, ["graph"]) == \
            canonical_dump(parallel_store, ["graph"])
        assert canonical_dump(
            serial_store, ["graph"], include_provenance=True) != \
            canonical_dump(
                parallel_store, ["graph"], include_provenance=True)


class TestStreaming:
    def test_keep_lists_false_streams_without_retaining(self):
        from repro.cda.sample import build_figure1_document
        from repro.ontology.snomed import build_core_ontology
        corpus = Corpus([build_figure1_document()])
        ontology = build_core_ontology()
        engine = _engine(corpus, ontology, "relationships")
        vocabulary = ("asthma", "medications", "temperature")
        store = MemoryStore()
        index = ParallelIndexBuilder(
            engine.builder, workers=2, mode="thread").build(
                vocabulary, strategy_name="relationships", store=store,
                keep_lists=False)
        assert index.lists == {}  # nothing retained in memory
        assert set(index.stats) == set(vocabulary)  # stats kept
        reference = engine.builder.build(
            vocabulary, strategy_name="relationships")
        for key in reference.keywords():  # store got the real lists
            assert store.get_postings("relationships", key) == \
                reference.lists[key].encoded()

    def test_keep_lists_false_requires_store(self):
        from repro.cda.sample import build_figure1_document
        from repro.ontology.snomed import build_core_ontology
        corpus = Corpus([build_figure1_document()])
        engine = _engine(corpus, build_core_ontology(), "relationships")
        builder = ParallelIndexBuilder(engine.builder, workers=2)
        with pytest.raises(ValueError):
            builder.build(("asthma",), keep_lists=False)


class TestValidation:
    def test_rejects_bad_parameters(self, figure1_corpus, core_ontology):
        engine = _engine(figure1_corpus, core_ontology, "graph")
        with pytest.raises(ValueError):
            ParallelIndexBuilder(engine.builder, workers=0)
        with pytest.raises(ValueError):
            ParallelIndexBuilder(engine.builder, mode="fiber")
        with pytest.raises(ValueError):
            ParallelIndexBuilder(engine.builder, chunk_size=0)

    def test_empty_vocabulary(self, figure1_corpus, core_ontology):
        engine = _engine(figure1_corpus, core_ontology, "graph")
        index = ParallelIndexBuilder(engine.builder, workers=2).build(())
        assert len(index) == 0
